"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation removes or swaps one ingredient of the proposed flow and
asserts the direction of its effect:

* stage-1 warm start (``InitialSEAMapping``) vs a round-robin start;
* the stage-2 search engine: annealed (default) vs the paper-faithful
  improving walk (Fig. 7);
* the step-3 power-tolerance band: 0 (strict min power) vs the default
  (trade power slack for fewer SEUs);
* the lambda(Vdd) susceptibility coefficient beta: 0 (voltage-blind)
  vs the Fig. 3(c)-calibrated value.
"""

import pytest

from repro.arch import MPSoC
from repro.faults import SERModel
from repro.mapping import Mapping, MappingEvaluator
from repro.optim import (
    DesignOptimizer,
    OptimizedMappingSearch,
    SEUObjective,
    initial_sea_mapping,
    sea_mapper,
)
from repro.optim.annealing import AnnealingConfig, SimulatedAnnealingMapper
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder

SCALING = (2, 2, 2, 2)


@pytest.fixture(scope="module")
def evaluator():
    return MappingEvaluator(
        mpeg2_decoder(), MPSoC.paper_reference(4), deadline_s=MPEG2_DEADLINE_S
    )


def _anneal_from(evaluator, initial, iterations=1200, seed=0):
    mapper = SimulatedAnnealingMapper(
        evaluator,
        SEUObjective(),
        AnnealingConfig(max_iterations=iterations, restarts=2),
        seed=seed,
        require_all_cores=True,
    )
    return mapper.run(initial, SCALING)


def test_bench_ablation_initial_mapping(benchmark, evaluator):
    """Warm start: the SEA initial never hurts the final design and the
    constructive point itself is already feasible-or-close."""
    graph, platform = evaluator.graph, evaluator.platform
    warm_initial = initial_sea_mapping(
        graph, platform, MPEG2_DEADLINE_S, scaling=SCALING
    )
    cold_initial = Mapping.round_robin(graph, 4)

    def _run_both():
        warm = _anneal_from(evaluator, warm_initial, seed=3)
        cold = _anneal_from(evaluator, cold_initial, seed=3)
        return warm, cold

    warm, cold = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    # Equal-budget comparison: the warm start must not end up worse by
    # more than small search noise.
    assert warm.expected_seus <= cold.expected_seus * 1.05


def test_bench_ablation_stage2_engine(benchmark, evaluator):
    """Engines: the annealed default matches or beats the faithful walk."""
    graph, platform = evaluator.graph, evaluator.platform
    initial = initial_sea_mapping(graph, platform, MPEG2_DEADLINE_S, scaling=SCALING)

    def _run_both():
        annealed = _anneal_from(evaluator, initial, seed=1)
        walk = OptimizedMappingSearch(
            evaluator, max_iterations=2400, seed=1
        ).run(initial, SCALING).best
        return annealed, walk

    annealed, walk = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    assert annealed.meets_deadline and walk.makespan_s <= MPEG2_DEADLINE_S + 1e-9
    assert annealed.expected_seus <= walk.expected_seus * 1.05


def test_bench_ablation_power_band(benchmark):
    """Step 3's tolerance band: widening it can only reduce the SEUs of
    the selected design, at bounded extra power."""

    def _run(tolerance):
        optimizer = DesignOptimizer(
            mpeg2_decoder(),
            MPSoC.paper_reference(4),
            deadline_s=MPEG2_DEADLINE_S,
            mapper=sea_mapper(search_iterations=800),
            power_tolerance=tolerance,
            stop_after_feasible=6,
            seed=0,
        )
        return optimizer.optimize().best

    def _run_both():
        return _run(0.0), _run(0.15)

    strict, banded = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    assert banded.expected_seus <= strict.expected_seus + 1e-9
    assert banded.power_mw <= strict.power_mw * 1.15 + 1e-9


def test_bench_ablation_ser_beta(benchmark, evaluator):
    """The Vdd-lambda coupling: with beta = 0 scaling is reliability-free
    (Gamma is scaling-invariant); with the calibrated beta, deep
    scaling costs ~2.5x at s=2 — the entire premise of the paper."""
    graph, platform = evaluator.graph, evaluator.platform
    mapping = Mapping.round_robin(graph, 4)
    blind = MappingEvaluator(
        graph, platform, ser_model=SERModel(beta=0.0), deadline_s=MPEG2_DEADLINE_S
    )

    def _ratios():
        aware_ratio = (
            evaluator.evaluate(mapping, (2, 2, 2, 2)).expected_seus
            / evaluator.evaluate(mapping, (1, 1, 1, 1)).expected_seus
        )
        blind_ratio = (
            blind.evaluate(mapping, (2, 2, 2, 2)).expected_seus
            / blind.evaluate(mapping, (1, 1, 1, 1)).expected_seus
        )
        return aware_ratio, blind_ratio

    aware_ratio, blind_ratio = benchmark.pedantic(_ratios, rounds=1, iterations=1)
    assert blind_ratio == pytest.approx(1.0, rel=1e-6)
    assert aware_ratio == pytest.approx(2.5, rel=0.02)
