"""Benchmark: regenerate Fig. 10 — Exp:3 vs Exp:4 across core counts.

Benchmark-scale trim: a 20-task random graph over 2-4 cores (the paper
uses 60 tasks over 2-6 cores; ``repro-seu experiment fig10 --profile
full`` runs that).  Asserts Exp:4 mostly wins on SEUs at modest power
premium.
"""

from repro.experiments import run_fig10
from repro.taskgraph import RandomGraphConfig, random_task_graph

CORE_COUNTS = (2, 3, 4)
NUM_TASKS = 20


def test_bench_fig10(benchmark, bench_profile):
    config = RandomGraphConfig(num_tasks=NUM_TASKS)
    graph = random_task_graph(config, seed=bench_profile.seed + NUM_TASKS)

    result = benchmark.pedantic(
        lambda: run_fig10(
            bench_profile,
            graph=graph,
            deadline_s=config.deadline_s,
            core_counts=CORE_COUNTS,
        ),
        rounds=1,
        iterations=1,
    )
    checks = result.shape_checks()
    assert checks["exp4_reduces_seus_mostly"], "Exp:4 should mostly win on SEUs"
    assert checks["power_premium_small"], "Exp:4's power premium should be modest"
    print()
    print(result.format_table())
