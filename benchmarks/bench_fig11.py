"""Benchmark: regenerate Fig. 11 — voltage scaling level study.

Benchmark-scale trim: a 24-task random graph on four cores with 2-,
3- and 4-level tables (the paper uses 60 tasks on six cores;
``repro-seu experiment fig11 --profile full`` runs that).  Asserts the
nesting claims: more levels never cost power, fewer levels trade
power for reliability.
"""

from repro.experiments import run_fig11
from repro.taskgraph import RandomGraphConfig, random_task_graph

NUM_TASKS = 24
NUM_CORES = 4


def test_bench_fig11(benchmark, bench_profile):
    config = RandomGraphConfig(num_tasks=NUM_TASKS)
    graph = random_task_graph(config, seed=bench_profile.seed + NUM_TASKS)

    result = benchmark.pedantic(
        lambda: run_fig11(
            bench_profile,
            graph=graph,
            deadline_s=config.deadline_s * 1.6,
            num_cores=NUM_CORES,
        ),
        rounds=1,
        iterations=1,
    )
    checks = result.shape_checks()
    assert checks["all_levels_feasible"]
    assert checks["four_levels_no_more_power"], "4 levels should not cost power"
    print()
    print(result.format_table())
