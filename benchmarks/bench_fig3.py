"""Benchmark: regenerate Fig. 3 — the mapping/reliability study.

120 mappings of the MPEG-2 decoder on four cores, evaluated at
scalings 1 and 2; asserts the paper's three observations.
"""

from repro.experiments import run_fig3


def test_bench_fig3(benchmark, bench_profile):
    result = benchmark.pedantic(
        lambda: run_fig3(bench_profile), rounds=1, iterations=1
    )
    checks = result.shape_checks()
    assert checks["observation1_tm_r_tradeoff"], "T_M/R trade-off missing"
    assert checks["observation2_gamma_concave_interior_min"], "Gamma not concave"
    assert checks["observation3_tm_doubles"], "T_M did not double at s=2"
    assert checks["observation3_gamma_grows"], "Gamma did not grow ~2.5x at s=2"
    print()
    print(result.format_table())
