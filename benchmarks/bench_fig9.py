"""Benchmark: regenerate Fig. 9 — baselines vs Exp:4 at fixed scaling.

Re-times the Table II designs at the common (2,2,3,2) scaling and
asserts the figure's bars: every baseline experiences at least as many
SEUs as the proposed design, with Exp:2 substantially worse.
"""

from repro.experiments import run_fig9, run_table2


def test_bench_fig9(benchmark, bench_profile):
    table2 = run_table2(bench_profile)

    result = benchmark.pedantic(
        lambda: run_fig9(bench_profile, table2=table2), rounds=1, iterations=1
    )
    checks = result.shape_checks()
    assert checks["all_baselines_more_seus"]
    assert checks["exp2_much_more_seus"], "Exp:2 should be >10% worse on SEUs"
    print()
    print(result.format_table())
