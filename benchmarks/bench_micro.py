"""Micro-benchmarks on the hot substrate paths.

These track the cost of the building blocks every experiment leans on:
list scheduling, full design-point evaluation, the scaling enumerator
(Fig. 5), the constructive mapper (Fig. 6) and one Monte-Carlo
injection pass.
"""

import pytest

from repro.arch import MPSoC
from repro.faults import FaultInjector
from repro.mapping import Mapping, MappingEvaluator
from repro.optim import initial_sea_mapping
from repro.optim.scaling_algorithm import all_scalings_list
from repro.sched import ListScheduler
from repro.sim import MPSoCSimulator
from repro.taskgraph import RandomGraphConfig, mpeg2_decoder, random_task_graph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


@pytest.fixture(scope="module")
def mpeg2():
    return mpeg2_decoder()


@pytest.fixture(scope="module")
def graph60():
    return random_task_graph(RandomGraphConfig(num_tasks=60), seed=60)


def test_bench_list_scheduler_mpeg2(benchmark, mpeg2):
    scheduler = ListScheduler(mpeg2, [2e8] * 4)
    mapping = Mapping.round_robin(mpeg2, 4)
    schedule = benchmark(scheduler.schedule, mapping)
    assert schedule.makespan_s() > 0


def test_bench_list_scheduler_60_tasks(benchmark, graph60):
    scheduler = ListScheduler(graph60, [2e8] * 6)
    mapping = Mapping.round_robin(graph60, 6)
    schedule = benchmark(scheduler.schedule, mapping)
    assert schedule.makespan_s() > 0


def test_bench_design_point_evaluation(benchmark, mpeg2):
    evaluator = MappingEvaluator(
        mpeg2,
        MPSoC.paper_reference(4),
        deadline_s=MPEG2_DEADLINE_S,
        cache_size=0,  # measure the uncached path
    )
    mapping = Mapping.round_robin(mpeg2, 4)
    point = benchmark(evaluator.evaluate, mapping, (2, 2, 3, 2))
    assert point.expected_seus > 0


def test_bench_scaling_enumeration(benchmark):
    combos = benchmark(all_scalings_list, 6, 4)
    assert len(combos) == 84


def test_bench_initial_sea_mapping(benchmark, graph60):
    platform = MPSoC.paper_reference(6)
    mapping = benchmark(
        initial_sea_mapping,
        graph60,
        platform,
        RandomGraphConfig(num_tasks=60).deadline_s,
    )
    assert mapping.num_tasks == 60


def test_bench_simulation_and_injection(benchmark, mpeg2):
    platform = MPSoC.paper_reference(4)
    mapping = Mapping.round_robin(mpeg2, 4)
    voltages = [platform.scaling_table.vdd_v(2)] * 4

    def _campaign():
        result = MPSoCSimulator(mpeg2, platform, scaling=(2, 2, 2, 2)).run(mapping)
        return FaultInjector(seed=0).inject(result, voltages)

    campaign = benchmark(_campaign)
    assert campaign.total_seus > 0
