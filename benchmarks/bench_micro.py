"""Micro-benchmarks on the hot substrate paths.

These track the cost of the building blocks every experiment leans on:
list scheduling, full design-point evaluation, the scaling enumerator
(Fig. 5), the constructive mapper (Fig. 6) and one Monte-Carlo
injection pass.
"""

import pytest

from repro.arch import MPSoC
from repro.arch.platform import platform_model
from repro.arch.technode import TechNode
from repro.exec import DagExecutor, RetryPolicy, SerialTransport
from repro.faults import FaultInjector, SERModel
from repro.mapping import IncrementalMappingState, Mapping, MappingEvaluator
from repro.mapping.enumeration import stratified_mappings
from repro.optim import (
    AnnealingConfig,
    DesignOptimizer,
    SEUObjective,
    SimulatedAnnealingMapper,
    initial_sea_mapping,
    sea_mapper,
)
from repro.experiments import ExperimentProfile, run_table3
from repro.optim.scaling_algorithm import all_scalings_list
from repro.sched import ListScheduler
from repro.sim import MPSoCSimulator
from repro.taskgraph import (
    RandomGraphConfig,
    mpeg2_decoder,
    random_task_graph,
    streaming_pipeline_graph,
    tgff_random_graph,
)
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


@pytest.fixture(scope="module")
def mpeg2():
    return mpeg2_decoder()


@pytest.fixture(scope="module")
def graph60():
    return random_task_graph(RandomGraphConfig(num_tasks=60), seed=60)


@pytest.fixture(scope="module")
def graph120():
    """The >=100-task profile the descriptor inner-loop rows run on."""
    return random_task_graph(RandomGraphConfig(num_tasks=120), seed=120)


def test_bench_list_scheduler_mpeg2(benchmark, mpeg2):
    scheduler = ListScheduler(mpeg2, [2e8] * 4)
    mapping = Mapping.round_robin(mpeg2, 4)
    schedule = benchmark(scheduler.schedule, mapping)
    assert schedule.makespan_s() > 0


def test_bench_list_scheduler_60_tasks(benchmark, graph60):
    scheduler = ListScheduler(graph60, [2e8] * 6)
    mapping = Mapping.round_robin(graph60, 6)
    schedule = benchmark(scheduler.schedule, mapping)
    assert schedule.makespan_s() > 0


def test_bench_design_point_evaluation(benchmark, mpeg2):
    evaluator = MappingEvaluator(
        mpeg2,
        MPSoC.paper_reference(4),
        deadline_s=MPEG2_DEADLINE_S,
        cache_size=0,  # measure the uncached path
    )
    mapping = Mapping.round_robin(mpeg2, 4)
    point = benchmark(evaluator.evaluate, mapping, (2, 2, 3, 2))
    assert point.expected_seus > 0


def test_bench_design_point_evaluation_cached(benchmark, mpeg2):
    """The LRU hit path: signature + OrderedDict bookkeeping only."""
    evaluator = MappingEvaluator(
        mpeg2,
        MPSoC.paper_reference(4),
        deadline_s=MPEG2_DEADLINE_S,
    )
    mapping = Mapping.round_robin(mpeg2, 4)
    evaluator.evaluate(mapping, (2, 2, 3, 2))  # warm the cache
    point = benchmark(evaluator.evaluate, mapping, (2, 2, 3, 2))
    assert point.expected_seus > 0
    assert evaluator.cache_hits > 0


def test_bench_incremental_move_estimate(benchmark, graph60):
    """Screening cost: one exact move preview on a 60-task graph."""
    platform = MPSoC.paper_reference(6)
    evaluator = MappingEvaluator(
        platform=platform,
        graph=graph60,
        deadline_s=RandomGraphConfig(num_tasks=60).deadline_s,
    )
    mapping = Mapping.round_robin(graph60, 6)
    state = IncrementalMappingState(evaluator, mapping, (2,) * 6)
    task = graph60.task_names()[7]
    estimate = benchmark(state.estimate_move, task, 3)
    assert estimate.register_bits_total > 0


def test_bench_neighbor_preview(benchmark, graph120):
    """The descriptor walk's O(degree) preview on the 120-task profile.

    ``estimate_move_index`` is the screening path the descriptor loop
    pays per candidate: no name lookup, no mapping diff, per-edge
    crossing deltas and mask-delta register bits.  Compare against
    ``test_bench_design_point_evaluation``-class numbers to read the
    screening economics (ARCHITECTURE "Screening policy").
    """
    platform = MPSoC.paper_reference(6)
    evaluator = MappingEvaluator(
        platform=platform,
        graph=graph120,
        deadline_s=RandomGraphConfig(num_tasks=120).deadline_s,
    )
    mapping = Mapping.round_robin(graph120, 6)
    state = IncrementalMappingState(evaluator, mapping, (2,) * 6)
    estimate = benchmark(state.estimate_move_index, 7, 3)
    assert estimate.register_bits_total > 0


def _inner_loop_mapper(graph120, iterations=600):
    evaluator = MappingEvaluator(
        graph120,
        MPSoC.paper_reference(6),
        deadline_s=RandomGraphConfig(num_tasks=120).deadline_s,
    )
    return SimulatedAnnealingMapper(
        evaluator,
        SEUObjective(),
        config=AnnealingConfig(max_iterations=iterations, restarts=1),
        seed=0,
        deadline_penalty=True,
        require_all_cores=True,
    )


def test_bench_sa_inner_loop_descriptor(benchmark, graph120):
    """The descriptor annealing inner loop on the >=100-task profile.

    One warm run makes the walk's whole trajectory cache-resident;
    measured rounds then repeat the identical deterministic walk with
    every evaluation an LRU hit, so the row isolates exactly what the
    descriptor rewrite changed — drawing, occupancy checks and cache
    probes — while the evaluation work (bit-identical on both paths
    by the determinism contract) stays out of the numerator and
    denominator alike.  The acceptance target is >= 2x over
    ``test_bench_sa_inner_loop_reference`` (measured, and asserted in
    the parity suite only for *results*, not timing).
    """
    mapper = _inner_loop_mapper(graph120)
    initial = Mapping.round_robin(graph120, 6)
    mapper.run(initial, (2,) * 6)  # warm: trajectory becomes cache-resident
    point = benchmark(mapper.run, initial, (2,) * 6)
    assert point.expected_seus > 0
    assert mapper.evaluator.cache_hits > 0


def test_bench_sa_inner_loop_reference(benchmark, graph120):
    """The retained Mapping-per-neighbour loop on the same trajectory.

    The denominator of the descriptor speedup: same seed, same
    accepted points, same cache-resident trajectory — but every
    neighbour pays the O(N) draw, Mapping copy, equality check,
    occupancy scan and signature walk the descriptor loop eliminated.
    """
    mapper = _inner_loop_mapper(graph120)
    initial = Mapping.round_robin(graph120, 6)
    mapper.run_reference(initial, (2,) * 6)  # warm, as above
    point = benchmark(mapper.run_reference, initial, (2,) * 6)
    assert point.expected_seus > 0
    assert mapper.evaluator.cache_hits > 0


def test_bench_design_optimizer_sweep(benchmark, mpeg2):
    """A full (trimmed) Fig. 4 sweep on the serial reference backend."""

    def _sweep():
        optimizer = DesignOptimizer(
            mpeg2,
            MPSoC.paper_reference(4),
            deadline_s=MPEG2_DEADLINE_S,
            mapper=sea_mapper(search_iterations=150),
            stop_after_feasible=3,
            seed=0,
        )
        return optimizer.optimize()

    outcome = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    assert outcome.best is not None


def test_bench_design_optimizer_sweep_auto_backend(benchmark, mpeg2):
    """The same sweep on the auto-selected execution backend.

    Identical selected design by the exec determinism contract; on a
    multi-core machine this row tracks the parallel speedup over the
    serial sweep above (on a single-core box auto degrades to serial).
    """

    def _sweep():
        optimizer = DesignOptimizer(
            mpeg2,
            MPSoC.paper_reference(4),
            deadline_s=MPEG2_DEADLINE_S,
            mapper=sea_mapper(search_iterations=150),
            stop_after_feasible=3,
            seed=0,
            backend="auto",
        )
        return optimizer.optimize()

    outcome = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    assert outcome.best is not None


def _restart_sweep(graph60, backend):
    evaluator = MappingEvaluator(
        graph60,
        MPSoC.paper_reference(6),
        deadline_s=RandomGraphConfig(num_tasks=60).deadline_s,
    )
    mapper = SimulatedAnnealingMapper(
        evaluator,
        SEUObjective(),
        config=AnnealingConfig(max_iterations=400, restarts=4),
        seed=0,
        deadline_penalty=True,
        require_all_cores=True,
        backend=backend,
    )
    return mapper.run(Mapping.round_robin(graph60, 6), (2,) * 6)


def test_bench_sa_restart_sweep_serial(benchmark, graph60):
    """Four independent annealing restarts on the serial reference path."""
    point = benchmark.pedantic(_restart_sweep, args=(graph60, None), rounds=3, iterations=1)
    assert point.expected_seus > 0


def test_bench_sa_restart_sweep_auto_backend(benchmark, graph60):
    """The same restarts dispatched through the auto-selected backend.

    Bit-identical selected design by the restart determinism contract;
    on a multi-core machine this row tracks the restart-level speedup
    over the serial sweep above (single-core boxes degrade to serial).
    """
    point = benchmark.pedantic(
        _restart_sweep, args=(graph60, "auto"), rounds=3, iterations=1
    )
    assert point.expected_seus > 0


@pytest.mark.parametrize("size", [8, 64, 256])
def test_bench_evaluate_batch_vectorized(benchmark, mpeg2, size):
    """Vectorized batch evaluation (one numpy pass per batch).

    Three batch sizes track how the per-batch fixed cost amortizes;
    the 64-row is the fig3-style workload and the speedup headline
    (compare against ``test_bench_evaluate_batch_loop`` below — the
    acceptance target is >= 3x at batch 64, measured not asserted).
    """
    evaluator = MappingEvaluator(
        mpeg2,
        MPSoC.paper_reference(4),
        deadline_s=MPEG2_DEADLINE_S,
        cache_size=0,  # measure the evaluation work, not cache hits
    )
    mappings = stratified_mappings(mpeg2, 4, size, seed=0)
    points = benchmark(evaluator.evaluate_batch, mappings, (2, 2, 3, 2))
    assert len(points) == len(mappings)
    assert all(point.expected_seus > 0 for point in points)


def test_bench_evaluate_batch_loop(benchmark, mpeg2):
    """The PR 2 per-mapping loop path on the same 64-mapping batch.

    Kept as ``evaluate_batch_reference``; this row is the denominator
    of the vectorized speedup and the parity suite's ground truth.
    """
    evaluator = MappingEvaluator(
        mpeg2,
        MPSoC.paper_reference(4),
        deadline_s=MPEG2_DEADLINE_S,
        cache_size=0,
    )
    mappings = stratified_mappings(mpeg2, 4, 64, seed=0)
    points = benchmark(evaluator.evaluate_batch_reference, mappings, (2, 2, 3, 2))
    assert len(points) == len(mappings)


def test_bench_scaling_enumeration(benchmark):
    combos = benchmark(all_scalings_list, 6, 4)
    assert len(combos) == 84


def test_bench_initial_sea_mapping(benchmark, graph60):
    platform = MPSoC.paper_reference(6)
    mapping = benchmark(
        initial_sea_mapping,
        graph60,
        platform,
        RandomGraphConfig(num_tasks=60).deadline_s,
    )
    assert mapping.num_tasks == 60


def _grid_fanout(plan):
    """One tiny table3 grid (2 cells, full sweep) under an execution plan.

    ``stop_after_feasible=None`` makes the total work identical on
    every plan, so the rows compare pure dispatch: the legacy cell
    fan-out parks two of the four workers (2 cells, nothing to steal),
    while the DAG plan feeds all four from the flattened restart /
    scaling leaves.  Reports are byte-identical across plans — only
    these timings differ.
    """
    profile = ExperimentProfile(
        name="bench-grid",
        search_iterations=80,
        sa_iterations=150,
        stop_after_feasible=None,
        seed=0,
        exec_max_workers=4,  # oversubscribed on small CI boxes, by design
    )
    if plan == "dag":
        profile = profile.with_exec_plan("dag:process")
    elif plan == "cells":
        # The deprecated per-cut pool, kept as the comparison baseline.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            profile = profile.with_backend(experiment_backend="process")
    config = RandomGraphConfig(num_tasks=10)
    graph = random_task_graph(config, seed=7)
    applications = [("bench", graph, config.deadline_s)]
    return run_table3(profile, core_counts=(2, 3), applications=applications)


def test_bench_grid_fanout_cells(benchmark):
    """The PR 2 cell-level fan-out: one process per whole cell."""
    result = benchmark.pedantic(_grid_fanout, args=("cells",), rounds=2, iterations=1)
    assert result.apps() == ["bench"]


def test_bench_grid_fanout_dag(benchmark):
    """The unified DAG executor on the same grid (gated row).

    The acceptance headline: on a multi-core runner this row must beat
    ``grid_fanout_cells`` because idle workers steal inner leaves; the
    regression gate tracks it against the committed baseline.
    """
    result = benchmark.pedantic(_grid_fanout, args=("dag",), rounds=2, iterations=1)
    assert result.apps() == ["bench"]


def _noop_leaf(value):
    return value


def _leaf_dispatch(policy):
    with DagExecutor(SerialTransport(), retry_policy=policy) as executor:
        return executor.map(_noop_leaf, list(range(256)))


def test_bench_dag_leaf_dispatch_no_retry(benchmark):
    """256 trivial leaves through the executor with retries disabled.

    The denominator of the retry-wrapper overhead: the pre-resilience
    dispatch loop (submit, wait, reassemble) with a one-attempt policy.
    """
    results = benchmark(_leaf_dispatch, RetryPolicy.no_retry())
    assert results == list(range(256))


def test_bench_dag_leaf_dispatch_retry_wrapper(benchmark):
    """The same batch under the default retry policy (gated row).

    No fault fires, so this measures the pure bookkeeping the
    fault-tolerance layer adds to the hot path — the failure-tracking
    array and the retryability plumbing.  The acceptance criterion is
    parity with ``dag_leaf_dispatch_no_retry``: the no-fault path must
    show no measurable regression.
    """
    results = benchmark(_leaf_dispatch, RetryPolicy())
    assert results == list(range(256))


def test_bench_hetero_list_scheduler_streaming(benchmark):
    """Heterogeneous scheduling: per-core cycle rows on big/little.

    The streaming split/merge skeleton is the shape mixed platforms
    exercise hardest — serial stages land on big cores, wide stages
    spread over littles — and every ready-pop reads a per-core cycle
    row instead of the shared homogeneous tuple.  Compare against
    ``test_bench_list_scheduler_60_tasks`` to read the cost of the
    per-type cycle indexing (the homogeneous rows must not move at
    all: they alias the seed tuple object).
    """
    graph = streaming_pipeline_graph(4, 6, seed=1)
    platform = platform_model("biglittle").instantiate(6)
    scheduler = ListScheduler.for_platform(graph, platform)
    mapping = Mapping.round_robin(graph, 6)
    schedule = benchmark(scheduler.schedule, mapping)
    assert schedule.makespan_s() > 0


def test_bench_hetero_evaluation_tgff_500(benchmark):
    """Full design-point evaluation of a 500-task TGFF DAG on big/little.

    The scale row for the heterogeneous path: per-(task, core-type)
    cycle tables, per-core capacitances and per-type DVS tables all in
    one uncached evaluation.
    """
    graph = tgff_random_graph(500, seed=3)
    platform = platform_model("biglittle").instantiate(8)
    evaluator = MappingEvaluator(graph, platform, cache_size=0)
    mapping = Mapping.round_robin(graph, 8)
    point = benchmark(evaluator.evaluate, mapping)
    assert point.expected_seus > 0


def test_bench_node_sweep_evaluation(benchmark, mpeg2):
    """One fixed design across the 45/22/8 nm node ladder.

    Tracks the whole node pipeline — table/spec/SER rescaling,
    platform instantiation and an uncached evaluation per node — the
    unit of work every cell of the hetero experiment grid pays.
    """
    mapping = Mapping.round_robin(mpeg2, 4)

    def _sweep():
        total = 0.0
        for spec in ("45nm", "22nm", "8nm"):
            node = TechNode.parse(spec)
            platform = platform_model("arm7").instantiate(4, tech_node=node)
            evaluator = MappingEvaluator(
                mpeg2,
                platform,
                ser_model=node.scale_ser(SERModel()),
                deadline_s=MPEG2_DEADLINE_S * 4,
                cache_size=0,
            )
            total += evaluator.evaluate(mapping, (1, 1, 1, 1)).power_mw
        return total

    total = benchmark(_sweep)
    assert total > 0


def test_bench_simulation_and_injection(benchmark, mpeg2):
    platform = MPSoC.paper_reference(4)
    mapping = Mapping.round_robin(mpeg2, 4)
    voltages = [platform.scaling_table.vdd_v(2)] * 4

    def _campaign():
        result = MPSoCSimulator(mpeg2, platform, scaling=(2, 2, 2, 2)).run(mapping)
        return FaultInjector(seed=0).inject(result, voltages)

    campaign = benchmark(_campaign)
    assert campaign.total_seus > 0
