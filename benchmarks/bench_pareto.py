"""Benchmark: power/SEU Pareto-front exploration (extension).

Regenerates the feasible front for the MPEG-2 decoder over the full
scaling enumeration and sanity-checks its geometry: non-dominated,
monotone (power up, SEUs down along the front), and containing the
step-3 selected design's trade-off region.
"""

from repro.arch import MPSoC
from repro.optim import explore_pareto, pareto_front, sea_mapper
from repro.optim.pareto import hypervolume_2d
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder


def test_bench_pareto_front(benchmark):
    graph = mpeg2_decoder()
    platform = MPSoC.paper_reference(4)

    front = benchmark.pedantic(
        lambda: explore_pareto(
            graph,
            platform,
            MPEG2_DEADLINE_S,
            mapper=sea_mapper(search_iterations=400),
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(front) >= 3
    powers = [point.power_mw for point in front]
    gammas = [point.expected_seus for point in front]
    assert powers == sorted(powers)
    assert gammas == sorted(gammas, reverse=True)  # strict trade-off
    assert pareto_front(front) == front  # already non-dominated

    reference = (max(powers) * 1.1, max(gammas) * 1.1)
    assert hypervolume_2d(front, reference) > 0
