"""Benchmarks for the SQLite sidecar index over a run-store root.

The rows answer the scaling question the index exists for: at ~1k+
cells across dozens of runs, what does a listing cost from the walk
(parse every ``manifest.json``) versus from the sidecar (one SQL
query), and what does keeping the sidecar fresh cost per cell append?

The store is synthesized directly — manifests and records written in
the exact on-disk formats — because the benchmark measures the store
readers, not the optimizer; running real experiments to 1k cells
would dominate setup for no extra fidelity.

Gated rows (``check_regression.py`` pattern ``store_index``):

* ``test_bench_store_index_listing`` — the hot path `repro-seu runs`
  and the service's ``GET /v1/runs`` answer from.  This must stay an
  index query: a regression here usually means a walk crept back in.
* ``test_bench_store_index_cell_update`` — the incremental upsert the
  RunStore pays on every cell append.
* ``test_bench_store_index_lookup`` — the O(1) run-id probe backing
  the duplicate-submission cache check.

``test_bench_store_listing_walk`` is the ungated denominator: the
directory walk the index replaces (and is rebuilt from).
"""

import json

import pytest

from repro.store import collect_entries, compact_records
from repro.store.index import StoreIndex, grid_entry
from repro.store.run_store import FORMAT_VERSION, MANIFEST_NAME, RECORDS_NAME

#: 40 runs x 30 cells = 1200 cells — the "service store after a month"
#: scale the acceptance criterion names (>= 1k cells).
NUM_RUNS = 40
CELLS_PER_RUN = 30


def _synthesize_store(root):
    """A store root holding NUM_RUNS bare grids in the on-disk formats."""
    for run in range(NUM_RUNS):
        directory = root / f"grid-{run:03d}"
        directory.mkdir(parents=True)
        keys = [f"cell-{run:03d}-{cell:02d}" for cell in range(CELLS_PER_RUN)]
        status = {key: "done" for key in keys}
        manifest = {
            "format": FORMAT_VERSION,
            "label": f"grid-{run:03d}",
            "fingerprint": f"{run:064x}",
            "profile": {"name": "bench", "seed": run},
            "cells": keys,
            "status": status,
            "completed": len(keys),
            "failed": 0,
            "total": len(keys),
            "run_status": "complete",
        }
        (directory / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        with (directory / RECORDS_NAME).open("w", encoding="utf-8") as handle:
            for key in keys:
                handle.write(
                    json.dumps({"key": key, "status": "ok", "payload": ""})
                    + "\n"
                )
            # One superseded line + one torn tail, so compaction and the
            # latest-wins loader have real work on every records file.
            handle.write(
                json.dumps({"key": keys[0], "status": "ok", "payload": ""})
                + "\n"
            )
            handle.write('{"key": "torn')
    return root


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    return _synthesize_store(tmp_path_factory.mktemp("bench_store"))


@pytest.fixture(scope="module")
def warm_index(store_root):
    """The sidecar, built once from the walk (what list_runs rebuilds)."""
    index = StoreIndex.ensure(store_root)
    index.replace_all(collect_entries(store_root))
    return index


def test_bench_store_listing_walk(benchmark, store_root):
    """The directory walk: every manifest parsed on every listing."""
    entries = benchmark(collect_entries, store_root)
    assert len(entries) == NUM_RUNS
    assert sum(entry.total for entry in entries) == NUM_RUNS * CELLS_PER_RUN


def test_bench_store_index_listing(benchmark, store_root, warm_index):
    """The same listing answered by the sidecar (no manifest I/O)."""
    entries = benchmark(warm_index.entries)
    assert len(entries) == NUM_RUNS
    assert sum(entry.total for entry in entries) == NUM_RUNS * CELLS_PER_RUN
    # Parity is the index contract: field-for-field equal to the walk.
    assert entries == collect_entries(store_root)


def test_bench_store_index_lookup(benchmark, store_root, warm_index):
    """One run-id probe — the duplicate-submission cache check shape."""
    entry = benchmark(warm_index.lookup_run, "grid-020")
    assert entry is not None and entry.state == "complete"


def test_bench_store_index_cell_update(benchmark, store_root, warm_index):
    """The incremental per-cell-append upsert the RunStore pays."""
    directory = store_root / "grid-000"
    manifest = json.loads(
        (directory / MANIFEST_NAME).read_text(encoding="utf-8")
    )

    def _touch():
        warm_index.update_grid_cell(
            directory, manifest, "cell-000-00", "done"
        )

    benchmark(_touch)
    assert warm_index.lookup_run("grid-000") is not None


def test_bench_store_index_rebuild(benchmark, store_root):
    """Walk + replace_all — the cost of deleting ``index.sqlite``."""

    def _rebuild():
        index = StoreIndex.ensure(store_root)
        entries = collect_entries(store_root)
        index.replace_all(entries)
        return entries

    entries = benchmark.pedantic(_rebuild, rounds=3, iterations=1)
    assert len(entries) == NUM_RUNS


def test_bench_store_compaction(benchmark, store_root, tmp_path):
    """One records.jsonl compaction pass (superseded + torn lines)."""
    source = store_root / "grid-001" / RECORDS_NAME
    target = tmp_path / RECORDS_NAME

    def _compact():
        target.write_bytes(source.read_bytes())
        return compact_records(target)

    result = benchmark.pedantic(_compact, rounds=5, iterations=1)
    assert result.kept == CELLS_PER_RUN
    assert result.dropped == 2  # the superseded duplicate + the torn tail


def test_bench_store_grid_entry(benchmark, store_root):
    """Manifest -> RunEntry conversion, the walk's per-run unit cost."""
    directory = store_root / "grid-000"
    manifest = json.loads(
        (directory / MANIFEST_NAME).read_text(encoding="utf-8")
    )
    entry = benchmark(grid_entry, directory, manifest)
    assert entry.total == CELLS_PER_RUN
