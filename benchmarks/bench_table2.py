"""Benchmark: regenerate Table II — Exp:1-4 on the MPEG-2 decoder.

Runs all four design optimizations (three SA baselines + the proposed
flow) over the voltage-scaling sweep and asserts the paper's ordering
claims.
"""

from repro.experiments import run_table2


def test_bench_table2(benchmark, bench_profile):
    result = benchmark.pedantic(
        lambda: run_table2(bench_profile), rounds=1, iterations=1
    )
    checks = result.shape_checks()
    assert checks["all_meet_deadline"]
    assert checks["exp1_min_register_usage"], "Exp:1 should minimize R"
    assert checks["exp2_max_register_usage"], "Exp:2 should maximize R"
    assert checks["exp4_fewer_seus_than_exp2"], "Exp:4 should beat Exp:2 on SEUs"
    print()
    print(result.format_table())
