"""Benchmark: regenerate Table III — architecture allocation sweep.

Benchmark-scale trim: MPEG-2 plus a 20-task random graph over 2-4
cores (the CLI's ``repro-seu experiment table3 --profile full`` runs
the paper's full six-application, 2-6 core sweep).  Asserts the
paper's two observations.
"""

from repro.experiments import run_table3
from repro.taskgraph import RandomGraphConfig, random_task_graph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder

CORE_COUNTS = (2, 3, 4)


def _applications(profile):
    config = RandomGraphConfig(num_tasks=20)
    return [
        ("MPEG-2", mpeg2_decoder(), MPEG2_DEADLINE_S),
        ("20 tasks", random_task_graph(config, seed=profile.seed + 20), config.deadline_s),
    ]


def test_bench_table3(benchmark, bench_profile):
    result = benchmark.pedantic(
        lambda: run_table3(
            bench_profile,
            core_counts=CORE_COUNTS,
            applications=_applications(bench_profile),
        ),
        rounds=1,
        iterations=1,
    )
    checks = result.shape_checks()
    assert checks["gamma_grows_with_cores"], "Gamma should grow with core count"
    assert checks["min_power_not_always_max_cores"]
    print()
    print(result.format_table())
