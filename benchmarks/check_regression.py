#!/usr/bin/env python
"""CI perf-regression gate over pytest-benchmark JSON output.

Compares the scheduling/evaluation rows of a fresh bench_micro run
(``BENCH_latest.json``) against the committed baseline
(``benchmarks/baseline.json``) and fails — exit code 1 — when any
gated row's median slowed down by more than the tolerance (default
25%).

Usage::

    python benchmarks/check_regression.py BENCH_latest.json
    python benchmarks/check_regression.py BENCH_latest.json \
        --baseline benchmarks/baseline.json --tolerance 0.25
    python benchmarks/check_regression.py BENCH_latest.json --update

Behaviour:

* **Missing baseline** — the gate passes (exit 0) and prints the
  bootstrap instruction; with ``--update`` it writes the latest run as
  the first baseline so it can be committed.
* **Gated rows** are the benchmarks whose name contains any of the
  ``--patterns`` substrings (default: the list-scheduler, design-point
  evaluation and batch-evaluation rows).  Other rows are reported for
  context but never fail the gate.
* **New rows** (in the latest run but not the baseline) are reported
  and pass; refresh the baseline to start gating them.  **Missing
  gated rows** (in the baseline but absent from the run) fail — a
  silently dropped benchmark must be an explicit baseline refresh,
  not an accident.
* Speedups beyond the tolerance are flagged as candidates for a
  baseline refresh so the gate keeps teeth after an optimization
  lands.

The medians are wall-clock on the runner executing the gate, so the
committed baseline must come from the same class of machine that
enforces it (CI refreshes: download the ``bench-micro-json`` artifact
from a green run and commit it as ``benchmarks/baseline.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Sequence

#: Benchmark-name substrings the gate enforces (scheduling/evaluation
#: hot paths plus the descriptor search inner loop).  Everything else
#: is informational.
DEFAULT_PATTERNS = (
    "list_scheduler",
    "design_point_evaluation",
    "evaluate_batch",
    "sa_inner_loop",
    "neighbor_preview",
    "grid_fanout_dag",
    "dag_leaf_dispatch",
    "hetero_list_scheduler",
    "hetero_evaluation",
    "node_sweep_evaluation",
    "store_index",
)

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "baseline.json")
DEFAULT_METRIC = "median"


def load_medians(path: str, metric: str = DEFAULT_METRIC) -> Dict[str, float]:
    """Benchmark name -> stat (seconds) from a pytest-benchmark JSON."""
    with open(path) as handle:
        payload = json.load(handle)
    medians: Dict[str, float] = {}
    for row in payload.get("benchmarks", []):
        medians[row["name"]] = float(row["stats"][metric])
    return medians


def write_baseline(latest_path: str, baseline_path: str) -> None:
    """Write ``latest_path`` as the committed baseline, slimmed.

    pytest-benchmark JSON carries every round's raw timing (easily
    100k+ lines); the gate only reads the aggregate stats, so the
    committed baseline keeps name + stats (minus the raw ``data``
    list) per benchmark plus the provenance header.
    """
    with open(latest_path) as handle:
        payload = json.load(handle)
    slim = {
        "machine_info": payload.get("machine_info"),
        "commit_info": payload.get("commit_info"),
        "datetime": payload.get("datetime"),
        "version": payload.get("version"),
        "benchmarks": [
            {
                "name": row["name"],
                "fullname": row.get("fullname"),
                "stats": {
                    key: value
                    for key, value in row["stats"].items()
                    if key != "data"
                },
            }
            for row in payload.get("benchmarks", [])
        ],
    }
    with open(baseline_path, "w") as handle:
        json.dump(slim, handle, indent=1, sort_keys=True)
        handle.write("\n")


def is_gated(name: str, patterns: Sequence[str]) -> bool:
    return any(pattern in name for pattern in patterns)


def format_row(name: str, base: float, latest: float, note: str) -> str:
    ratio = latest / base if base > 0 else float("inf")
    return (
        f"  {name:<55s} {base * 1e6:>10.1f} us {latest * 1e6:>10.1f} us "
        f"{ratio:>7.2f}x  {note}"
    )


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("latest", help="pytest-benchmark JSON of the fresh run")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="committed baseline JSON (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOLERANCE", "0.25")),
        help=(
            "allowed relative slowdown before failing, e.g. 0.25 = 25%% "
            "(default: 0.25, env override BENCH_GATE_TOLERANCE)"
        ),
    )
    parser.add_argument(
        "--metric",
        default=DEFAULT_METRIC,
        choices=["median", "mean", "min"],
        help="pytest-benchmark stat to compare (default: median)",
    )
    parser.add_argument(
        "--patterns",
        nargs="*",
        default=list(DEFAULT_PATTERNS),
        help="benchmark-name substrings the gate enforces",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the latest run over the baseline (bootstrap/refresh)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("tolerance must be non-negative")

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; gate passes (first run).")
        if args.update:
            write_baseline(args.latest, args.baseline)
            print(f"wrote first baseline: {args.baseline} <- {args.latest}")
        else:
            print(
                "bootstrap: commit this run as the first baseline with\n"
                f"  python {sys.argv[0]} {args.latest} --update"
            )
        return 0

    baseline = load_medians(args.baseline, args.metric)
    latest = load_medians(args.latest, args.metric)
    bound = 1.0 + args.tolerance

    regressions: List[str] = []
    improvements: List[str] = []
    lines: List[str] = []
    for name in sorted(set(baseline) | set(latest)):
        gated = is_gated(name, args.patterns)
        if name not in latest:
            if gated:
                regressions.append(name)
                lines.append(
                    f"  {name:<55s} MISSING from the latest run (gated row "
                    "dropped — refresh the baseline explicitly)"
                )
            continue
        if name not in baseline:
            lines.append(
                format_row(name, latest[name], latest[name], "new row (ungated)")
            )
            continue
        base, now = baseline[name], latest[name]
        ratio = now / base if base > 0 else float("inf")
        if not gated:
            lines.append(format_row(name, base, now, "info"))
        elif ratio > bound:
            regressions.append(name)
            lines.append(
                format_row(name, base, now, f"REGRESSION (> {bound:.2f}x)")
            )
        elif ratio < 1.0 / bound:
            improvements.append(name)
            lines.append(format_row(name, base, now, "improved (refresh?)"))
        else:
            lines.append(format_row(name, base, now, "ok"))

    header = (
        f"perf gate: {args.metric} vs {args.baseline}, tolerance "
        f"{args.tolerance:.0%}\n"
        f"  {'benchmark':<55s} {'baseline':>13s} {'latest':>13s} "
        f"{'ratio':>8s}"
    )
    print(header)
    for line in lines:
        print(line)

    if args.update:
        write_baseline(args.latest, args.baseline)
        print(f"baseline refreshed: {args.baseline} <- {args.latest}")
        return 0
    if regressions:
        print(
            f"FAIL: {len(regressions)} gated row(s) regressed beyond "
            f"{args.tolerance:.0%}: {', '.join(regressions)}"
        )
        return 1
    if improvements:
        print(
            f"note: {len(improvements)} gated row(s) improved beyond the "
            "tolerance — consider refreshing the baseline."
        )
    print("perf gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
