"""Shared fixtures for the benchmark harness.

Every paper artifact has one benchmark module; running

    pytest benchmarks/ --benchmark-only

regenerates each table/figure at benchmark scale (trimmed workloads
where the paper-scale sweep takes minutes — the CLI's ``--profile
full`` covers those) and asserts the paper's qualitative shape along
the way, so a green benchmark run doubles as a reproduction check.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentProfile


@pytest.fixture(scope="session")
def bench_profile() -> ExperimentProfile:
    """The validated fast profile (same budgets the tests assert with)."""
    return ExperimentProfile.fast()
