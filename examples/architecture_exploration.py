#!/usr/bin/env python
"""Architecture allocation study — how many cores should the MPSoC have?

Reproduces the Table III experiment on a configurable application:
sweeps the core count, runs the proposed soft error-aware optimization
for each allocation, and reports the power/reliability trend.  The
paper's two observations should be visible: the minimum-power core
count is application-dependent, and SEUs grow with the core count.

Run:  python examples/architecture_exploration.py --app mpeg2
      python examples/architecture_exploration.py --app random --tasks 40
"""

import argparse

from repro.experiments import ExperimentProfile
from repro.experiments.common import build_optimizer
from repro.taskgraph import RandomGraphConfig, random_task_graph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", choices=["mpeg2", "random"], default="mpeg2")
    parser.add_argument("--tasks", type=int, default=40, help="random graph size")
    parser.add_argument("--min-cores", type=int, default=2)
    parser.add_argument("--max-cores", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    if arguments.app == "mpeg2":
        graph, deadline = mpeg2_decoder(), MPEG2_DEADLINE_S
    else:
        config = RandomGraphConfig(num_tasks=arguments.tasks)
        graph = random_task_graph(config, seed=arguments.seed)
        deadline = config.deadline_s

    profile = ExperimentProfile.fast(seed=arguments.seed)
    print(f"application: {graph.name} ({graph.num_tasks} tasks), "
          f"deadline {deadline * 1e3:.0f} ms")
    print()
    print(f"{'cores':>5}  {'P, mW':>8}  {'Gamma':>12}  {'T_M, ms':>9}  scaling")

    best_power = None
    for cores in range(arguments.min_cores, arguments.max_cores + 1):
        optimizer = build_optimizer(graph, cores, deadline, profile, seed_offset=cores)
        outcome = optimizer.optimize()
        if outcome.best is None:
            print(f"{cores:>5}  {'infeasible':>8}")
            continue
        point = outcome.best
        if best_power is None or point.power_mw < best_power[0]:
            best_power = (point.power_mw, cores)
        print(
            f"{cores:>5}  {point.power_mw:>8.2f}  {point.expected_seus:>12.3e}  "
            f"{point.makespan_s * 1e3:>9.0f}  {','.join(map(str, point.scaling))}"
        )

    if best_power:
        print()
        print(f"minimum-power allocation: {best_power[1]} cores "
              f"({best_power[0]:.2f} mW)")


if __name__ == "__main__":
    main()
