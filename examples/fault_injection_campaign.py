#!/usr/bin/env python
"""Monte-Carlo SEU fault-injection campaign on the cycle-level simulator.

Simulates the MPEG-2 decoder on the four-core platform under a chosen
scaling vector, runs repeated Poisson SEU-injection campaigns over the
register-occupancy trace (the technique of the paper's Section II-B),
and compares the measured counts against the closed-form expectation
of Eq. (3) — the validation the paper performs between its analytic
model and its SystemC fault-injection results.

Run:  python examples/fault_injection_campaign.py --scaling 2,2,3,2
"""

import argparse

from repro.arch import MPSoC
from repro.faults import FaultInjector, SERModel
from repro.mapping import Mapping, MappingEvaluator
from repro.sim import MPSoCSimulator
from repro.taskgraph import mpeg2_decoder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scaling", type=str, default="1,1,1,1")
    parser.add_argument("--runs", type=int, default=100)
    parser.add_argument("--ser", type=float, default=1e-9,
                        help="nominal SER, SEU/bit/cycle at 1 V")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--residency", choices=["static", "accumulate"],
                        default="static")
    arguments = parser.parse_args()

    scaling = tuple(int(value) for value in arguments.scaling.split(","))
    graph = mpeg2_decoder()
    platform = MPSoC.paper_reference(len(scaling))
    mapping = Mapping.round_robin(graph, len(scaling))
    ser_model = SERModel().with_reference_rate(arguments.ser)

    simulator = MPSoCSimulator(
        graph, platform, scaling=scaling, residency=arguments.residency
    )
    simulation = simulator.run(mapping)
    voltages = [platform.scaling_table.vdd_v(coefficient) for coefficient in scaling]

    print(f"scaling   : {scaling} -> voltages "
          f"{[f'{v:.2f}V' for v in voltages]}")
    print(f"makespan  : {simulation.makespan_s * 1e3:.1f} ms")
    print(f"residency : {arguments.residency}")
    for core in range(len(scaling)):
        print(f"  core {core + 1}: {simulation.time_average_register_bits(core):.0f} "
              f"resident bits (Eq. 4 average)")
    print()

    injector = FaultInjector(ser_model=ser_model, seed=arguments.seed)
    campaign = injector.inject(
        simulation, voltages, runs=arguments.runs, collect_events=True
    )
    expected_per_run = campaign.expected_seus / arguments.runs
    print(f"expected SEUs per run (Eq. 3): {expected_per_run:.2f}")
    print(f"injected SEUs per run (mean) : {campaign.mean_seus_per_run:.2f}")
    relative = 100.0 * (campaign.mean_seus_per_run - expected_per_run) / expected_per_run
    print(f"deviation                    : {relative:+.2f}%")
    print()
    print("sample upsets:")
    for event in campaign.events[:8]:
        print(f"  t={event.time_s * 1e3:9.3f} ms  core {event.core + 1}  "
              f"{event.register_name}[{event.bit_index}]")

    # Cross-check against the analytic evaluator.
    evaluator = MappingEvaluator(graph, platform, ser_model=ser_model)
    point = evaluator.evaluate(mapping, scaling)
    print()
    print(f"analytic Gamma (evaluator)   : {point.expected_seus:.2f}")


if __name__ == "__main__":
    main()
