#!/usr/bin/env python
"""MPEG-2 decoder design optimization — the paper's headline scenario.

Optimizes the 11-task MPEG-2 decoder (Fig. 2) on a four-core ARM7
MPSoC under the tennis-bitstream real-time constraint (437 frames at
29.97 fps), comparing the proposed soft error-aware flow (Exp:4)
against the three soft error-unaware baselines of Table II.

Run:  python examples/mpeg2_optimization.py [--full]
"""

import argparse

from repro.experiments import ExperimentProfile, run_fig9, run_table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-scale search budgets (slow)"
    )
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    profile = (
        ExperimentProfile.full(seed=arguments.seed)
        if arguments.full
        else ExperimentProfile.fast(seed=arguments.seed)
    )

    print("=== Table II: four design optimizations of the MPEG-2 decoder ===")
    table2 = run_table2(profile)
    print(table2.format_table())
    print()
    print("shape checks (paper's qualitative claims):")
    for name, passed in table2.shape_checks().items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    print()

    print("=== Fig. 9: baselines relative to Exp:4 at scaling (2,2,3,2) ===")
    fig9 = run_fig9(profile, table2=table2)
    print(fig9.format_table())
    print()
    exp4 = table2.row("Exp:4").point
    print(
        f"The proposed design (Exp:4) maps {exp4.mapping.num_tasks} tasks, "
        f"consumes {exp4.power_mw:.2f} mW and is expected to experience "
        f"{exp4.expected_seus:.3e} SEUs over the decode "
        f"(SER 1e-9/bit/cycle) while meeting the deadline."
    )


if __name__ == "__main__":
    main()
