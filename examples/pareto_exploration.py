#!/usr/bin/env python
"""Power/reliability Pareto-front exploration (extension).

The paper's step 3 picks a single design (minimum power, SEU
tie-break).  This example exposes the whole feasible power/SEU
trade-off for the MPEG-2 decoder: one soft error-aware mapping
optimization per voltage-scaling combination, then the non-dominated
front, annotated with failure-oriented reliability metrics.

Run:  python examples/pareto_exploration.py [--cores 4]
"""

import argparse

from repro.arch import MPSoC
from repro.faults.reliability import failure_probability, mean_executions_to_failure
from repro.optim import explore_pareto, sea_mapper
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=800)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--avf", type=float, default=0.05,
                        help="architectural vulnerability factor")
    arguments = parser.parse_args()

    graph = mpeg2_decoder()
    platform = MPSoC.paper_reference(arguments.cores)
    front = explore_pareto(
        graph,
        platform,
        MPEG2_DEADLINE_S,
        mapper=sea_mapper(search_iterations=arguments.iterations),
        seed=arguments.seed,
    )

    print(f"feasible Pareto front ({len(front)} designs), "
          f"deadline {MPEG2_DEADLINE_S * 1e3:.0f} ms:")
    print()
    print(f"{'P, mW':>8}  {'Gamma':>12}  {'P(fail)':>8}  {'MTEF':>10}  scaling")
    for point in front:
        p_fail = failure_probability(point.expected_seus * 1e-6,
                                     avf=arguments.avf)
        mtef = mean_executions_to_failure(point.expected_seus * 1e-6,
                                          avf=arguments.avf)
        print(
            f"{point.power_mw:>8.2f}  {point.expected_seus:>12.3e}  "
            f"{p_fail:>8.4f}  {mtef:>10.1f}  "
            f"{','.join(map(str, point.scaling))}"
        )
    print()
    print("Each row is a design no other feasible design beats on both")
    print("power and expected SEUs.  (Failure metrics shown for a")
    print(f"per-SEU fatality rate of AVF x 1e-6 = {arguments.avf}e-6,")
    print("treating only a small fraction of register upsets as fatal.)")


if __name__ == "__main__":
    main()
