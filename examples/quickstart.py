#!/usr/bin/env python
"""Quickstart: the paper's Fig. 8 worked example, end to end.

Builds the six-task example graph, runs the two-stage soft error-aware
mapping at the paper's scalings (s = 1, 2, 2) under the 75 ms deadline,
prints the schedule, and validates the expected SEU count against a
Monte-Carlo fault-injection campaign.

Run:  python examples/quickstart.py
"""

from repro.arch import MPSoC
from repro.faults import FaultInjector
from repro.mapping import MappingEvaluator
from repro.optim import OptimizedMappingSearch, initial_sea_mapping
from repro.sim import MPSoCSimulator
from repro.taskgraph import fig8_example
from repro.taskgraph.examples import FIG8_DEADLINE_S, FIG8_SCALING


def main() -> None:
    graph = fig8_example()
    platform = MPSoC.paper_reference(num_cores=3)
    evaluator = MappingEvaluator(graph, platform, deadline_s=FIG8_DEADLINE_S)

    print(f"application : {graph.name} ({graph.num_tasks} tasks)")
    print(f"platform    : {platform.num_cores} ARM7 cores, scalings {FIG8_SCALING}")
    print(f"deadline    : {FIG8_DEADLINE_S * 1e3:.0f} ms")
    print()

    # Stage 1: constructive soft error-aware mapping (Fig. 6).
    initial = initial_sea_mapping(
        graph, platform, FIG8_DEADLINE_S, scaling=FIG8_SCALING
    )
    initial_point = evaluator.evaluate(initial, FIG8_SCALING)
    print("stage 1 (InitialSEAMapping):", initial_point.summary())

    # Stage 2: search-based optimized mapping (Fig. 7).
    search = OptimizedMappingSearch(evaluator, max_iterations=1000, seed=0)
    result = search.run(initial, FIG8_SCALING)
    best = result.best
    print("stage 2 (OptimizedMapping) :", best.summary())
    print()
    for core, tasks in enumerate(best.mapping.core_groups()):
        print(f"  core {core + 1} (s={FIG8_SCALING[core]}): {', '.join(tasks) or '-'}")
    print()
    print(best.schedule.gantt_text())
    print()

    # Validate the analytic Gamma (Eq. 3) with Monte-Carlo injection.
    simulator = MPSoCSimulator(graph, platform, scaling=FIG8_SCALING)
    simulation = simulator.run(best.mapping)
    voltages = [
        platform.scaling_table.vdd_v(coefficient) for coefficient in FIG8_SCALING
    ]
    campaign = FaultInjector(seed=0).inject(simulation, voltages, runs=200)
    print(f"expected SEUs (Eq. 3)        : {best.expected_seus:.1f}")
    print(f"injected SEUs (mean/200 runs): {campaign.mean_seus_per_run:.1f}")


if __name__ == "__main__":
    main()
