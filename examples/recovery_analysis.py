#!/usr/bin/env python
"""Recovery-slack analysis of optimized designs (extension).

The fault-tolerance literature the paper builds on (Izosimov et al.,
Pop et al.) masks SEUs by re-executing affected tasks.  This example
asks: after the proposed power/reliability optimization, how much
re-execution head-room does each feasible design keep under the
real-time constraint?

Run:  python examples/recovery_analysis.py
"""

from repro.arch import MPSoC
from repro.faults import analyze_recovery
from repro.optim import DesignOptimizer, sea_mapper
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder


def main() -> None:
    graph = mpeg2_decoder()
    optimizer = DesignOptimizer(
        graph,
        MPSoC.paper_reference(4),
        deadline_s=MPEG2_DEADLINE_S,
        mapper=sea_mapper(search_iterations=600),
        stop_after_feasible=None,
        seed=0,
    )
    outcome = optimizer.optimize()

    print(f"deadline: {MPEG2_DEADLINE_S * 1e3:.0f} ms — recovery head-room of "
          f"each feasible design:")
    print()
    print(f"{'scaling':>12}  {'P, mW':>7}  {'slack ms':>9}  {'worst-case':>10}  "
          f"{'tasks once':>10}")
    for point in sorted(outcome.feasible_points, key=lambda p: p.power_mw):
        analysis = analyze_recovery(point, MPEG2_DEADLINE_S)
        print(
            f"{','.join(map(str, point.scaling)):>12}  {point.power_mw:>7.2f}  "
            f"{analysis.slack_s * 1e3:>9.0f}  "
            f"{analysis.worst_case_reexecutions:>10}  "
            f"{len(analysis.tolerable_tasks):>10}"
        )

    best = outcome.best
    analysis = analyze_recovery(best, MPEG2_DEADLINE_S)
    print()
    print(f"selected design {best.scaling}: slack "
          f"{analysis.slack_s * 1e3:.0f} ms "
          f"({analysis.slack_fraction * 100:.0f}% of the deadline)")
    if analysis.tolerates_any_single_fault:
        print("-> any single task can be re-executed after an SEU hit and "
              "the decode still meets its deadline.")
    else:
        print("-> no single-fault re-execution head-room: this design "
              "relies on error masking, not recovery.")


if __name__ == "__main__":
    main()
