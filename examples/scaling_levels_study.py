#!/usr/bin/env python
"""Voltage scaling granularity study (the paper's Fig. 11).

How many DVS operating points should the clock-tree generator supply?
Runs the proposed optimization with 2-, 3- and 4-level scaling tables
on a six-core platform and a 60-task random graph, then prints the
power/SEU trade-off between the presets.

Run:  python examples/scaling_levels_study.py [--tasks 30 --cores 4]
"""

import argparse

from repro.experiments import ExperimentProfile, run_fig11
from repro.taskgraph import RandomGraphConfig, random_task_graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=30)
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--slack",
        type=float,
        default=1.6,
        help="deadline slack over the paper's 1000*N/2 ms rule",
    )
    arguments = parser.parse_args()

    config = RandomGraphConfig(num_tasks=arguments.tasks)
    graph = random_task_graph(config, seed=arguments.seed)
    profile = ExperimentProfile.fast(seed=arguments.seed)

    result = run_fig11(
        profile,
        graph=graph,
        deadline_s=config.deadline_s * arguments.slack,
        num_cores=arguments.cores,
    )
    print(f"application: {graph.name}, {arguments.cores} cores, "
          f"deadline {config.deadline_s * arguments.slack:.1f} s")
    print()
    print(result.format_table())
    print()
    for name, passed in result.shape_checks().items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    print()
    print(
        "Reading: with only 2 levels the optimizer cannot scale deep, so\n"
        "designs run hotter (more power) but at higher voltage (fewer\n"
        "SEUs); extra levels buy power at a reliability cost."
    )


if __name__ == "__main__":
    main()
