"""Drive the HTTP job service: submit, poll, fetch, observe the cache.

Start a server in one terminal::

    repro-seu serve --store-dir /tmp/repro-service --port 8321

then run this script (twice, to watch the second submission hit the
result cache)::

    python examples/service_client.py --experiment fig3 --profile smoke
    python examples/service_client.py --experiment fig3 --profile smoke

The ``--expect-fresh`` / ``--expect-cached`` flags turn the cache
observation into an assertion — the CI service leg uses them to prove
that a second tenant's identical submission is served from the store
without re-executing anything, and that the fetched report is
byte-identical to the direct CLI run.
"""

import argparse
import sys
import time

from repro.service import ServiceClient, ServiceClientError


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8321")
    parser.add_argument("--experiment", default="fig3")
    parser.add_argument("--profile", default="smoke", choices=["smoke", "fast", "full"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tenant", default="example")
    parser.add_argument(
        "--out", default=None, help="write the fetched report to this file, verbatim"
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, help="seconds to wait for completion"
    )
    parser.add_argument(
        "--wait-server",
        type=float,
        default=30.0,
        help="seconds to wait for the server to come up",
    )
    expectation = parser.add_mutually_exclusive_group()
    expectation.add_argument(
        "--expect-fresh",
        action="store_true",
        help="fail unless this submission actually executes",
    )
    expectation.add_argument(
        "--expect-cached",
        action="store_true",
        help="fail unless this submission is served from the result cache",
    )
    return parser.parse_args(argv)


def wait_for_server(client, timeout):
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.health()
            return
        except (ServiceClientError, OSError):
            if time.monotonic() > deadline:
                raise SystemExit(f"no server at {client.base_url}")
            time.sleep(0.2)


def main(argv=None):
    args = parse_args(argv)
    client = ServiceClient(args.url, timeout=max(args.timeout, 60.0))
    wait_for_server(client, args.wait_server)

    submission = client.submit_experiment(
        args.experiment, profile=args.profile, tenant=args.tenant, seed=args.seed
    )
    run_id = submission["run_id"]
    cached = submission["cached"]
    print(
        f"submitted {args.experiment} ({args.profile}, seed={args.seed}) "
        f"as {run_id} [{'cache hit' if cached else submission['state']}]"
    )
    if args.expect_fresh and cached:
        raise SystemExit("expected a fresh execution but got a cache hit")
    if args.expect_cached and not cached:
        raise SystemExit("expected a cache hit but the run executed")

    if not cached:
        while True:
            status = client.status(run_id)
            cells = status["cells"]
            print(
                f"  {status['state']}: {cells['completed']}/{cells['total']} "
                f"cells ({cells['failed']} failed)"
            )
            if status["state"] in ("complete", "failed", "cancelled"):
                break
            time.sleep(0.5)
        if status["state"] != "complete":
            raise SystemExit(
                f"run {run_id} ended {status['state']}: "
                f"{status.get('error', 'no detail')}"
            )

    report = client.report(run_id)
    if args.out:
        with open(args.out, "w", encoding="utf-8", newline="") as handle:
            handle.write(report)
        print(f"report written to {args.out} ({len(report)} bytes)")
    else:
        print()
        print(report, end="")
    tenants = client.status(run_id)["tenants"]
    print(f"tenants sharing this run: {', '.join(tenants)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
