"""Package metadata for the DATE 2010 soft error-aware MPSoC reproduction.

Metadata lives here (not pyproject.toml) because the sandbox this repo
grows in has no network and no ``wheel`` package: ``pip install -e .
--no-build-isolation`` falls back to the legacy ``setup.py develop``
path, which needs a self-contained setup script.

The ``test`` extra is the single source of truth for what CI installs
— every workflow job runs ``pip install -e ".[test]"`` instead of
hand-maintained ``pip install`` lines.
"""

from setuptools import find_packages, setup

setup(
    name="repro-seu",
    version="0.4.0",
    description=(
        "Soft error-aware energy minimization for embedded MPSoCs "
        "(DATE 2010 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "networkx",
        "numpy",
    ],
    extras_require={
        "test": [
            "hypothesis",
            "networkx",
            "numpy",
            "pytest",
            "pytest-benchmark",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-seu=repro.cli:main",
        ],
    },
)
