"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` falls back to the legacy
``setup.py develop`` path when PEP 517 editable builds are unavailable
(this sandbox has no network and no ``wheel``).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
