"""``repro.api`` — the sanctioned programmatic surface.

Every consumer of the experiment pipeline — the CLI, the HTTP job
service (:mod:`repro.service`) and library users — goes through this
facade instead of calling :mod:`repro.experiments.runner` internals:

- :func:`submit_run` — run (or dedup-serve) a validated
  :class:`RunSpec` against a service store, durably, with exact
  resume of partial grids.
- :func:`run_status` / :func:`list_runs` — structured status objects
  assembled from the run record and the streaming store manifests.
- :func:`fetch_report` — the rendered report, byte-identical to the
  same profile run through :func:`~repro.experiments.runner.run_experiment`
  directly (the CLI prints exactly these bytes).
- :func:`cancel_run` — cooperative cancellation (queued runs flip to
  ``cancelled``; in-flight runs finish their durable cells).
- :func:`execute_run` — the shared orchestration core: owns the
  DagExecutor scope for ``dag`` exec plans so no caller duplicates
  that logic.

Result-cache contract
---------------------
A run's identity (:meth:`RunSpec.run_id`) hashes exactly the
result-determining inputs: the experiment id or the canonical task-
graph serialization (content digest, not name), the platform / tech
node / profile budgets via
:meth:`~repro.experiments.common.ExperimentProfile.result_fingerprint`,
and the optimize-kind shape (cores, deadline).  Execution knobs
(``exec_plan``, worker caps) are excluded — by the house determinism
contract they change wall-clock only — so an identical submission
from any tenant lands on the same run directory and is served from
disk instead of re-run.  Tenants are labels on the shared run record,
never separate copies of the work.

On-disk layout (under a service store root)::

    <store_root>/runs/<run id>/
        run.json       # spec payload + state + tenant labels (atomic)
        report.txt     # the rendered report (exact CLI stdout bytes)
        <label>/       # the experiment's own streaming RunStore grid
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.common import (
    EXEC_PLANS,
    ExperimentProfile,
    format_table,
    run_cells,
)
from repro.experiments.runner import experiment_ids, run_experiment
from repro.store import fingerprint_payload, iter_manifests
from repro.store.index import (
    RUN_RECORD_NAME,
    RUNS_DIRNAME,
    RunEntry,
    StoreIndex,
    StoreIndexError,
    collect_entries,
    iter_service_run_dirs,
    resolve_run_directory,
    service_run_entry,
)

REPORT_NAME = "report.txt"
CANCEL_NAME = "cancel.flag"

#: Run lifecycle states recorded in ``run.json``.  ``"interrupted"`` is
#: additionally *derived* (never written): a record still marked
#: ``running`` whose owning process is gone is surfaced as interrupted
#: until a supervisor re-attaches it (see :func:`reattach_pending`).
RUN_STATES = ("queued", "running", "complete", "failed", "cancelled")
INTERRUPTED_STATE = "interrupted"

#: How stale (seconds) a foreign-host running record's on-disk progress
#: must be before it is presumed orphaned — pid liveness probes only
#: work for local owners.
ORPHAN_GRACE_S = 60.0

_PROFILE_NAMES = ("smoke", "fast", "full")


# ---------------------------------------------------------------------------
# Structured errors: one shape for the CLI, the HTTP service and library use.
# ---------------------------------------------------------------------------


class ApiError(Exception):
    """A structured facade error.

    Carries a stable machine-readable ``code``, the offending
    ``field`` (when the error is about one request field) and the
    HTTP status the service layer should map it to — so validation
    failures surface identically through every consumer.
    """

    code = "api-error"
    http_status = 400
    #: Whether retrying the same request can succeed without any change
    #: on the caller's side (capacity/transient errors: yes; validation
    #: and conflict errors: no).  Serialized in every error body so
    #: clients need no out-of-band status-code lore.
    retryable = False
    #: Seconds the caller should back off before retrying, when the
    #: server knows (mapped to a ``Retry-After`` header by the service).
    retry_after_s: Optional[float] = None

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.message = message
        self.field = field

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "code": self.code,
            "message": self.message,
            "retryable": bool(self.retryable),
        }
        if self.field is not None:
            document["field"] = self.field
        return document


class ValidationError(ApiError):
    """The submission payload is malformed or names unknown entities."""

    code = "invalid-request"
    http_status = 400


class UnknownRunError(ApiError):
    """No run with the requested id exists under the store root."""

    code = "unknown-run"
    http_status = 404


class RunConflictError(ApiError):
    """The request conflicts with the run's current state."""

    code = "run-conflict"
    http_status = 409


# ---------------------------------------------------------------------------
# The run specification: one validated, canonical description of a job.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """A validated, canonical description of one submitted run.

    Two kinds share the shape: ``"experiment"`` runs a paper artifact
    by id; ``"optimize"`` runs the Fig. 4 soft error-aware
    optimization on a client-supplied task graph (the
    :func:`~repro.taskgraph.serialize.graph_to_dict` serialization).
    Build instances through :meth:`from_payload`, which rejects
    unknown experiments / platforms / tech nodes / profiles with
    structured :class:`ValidationError`\\ s instead of deep-run
    failures.
    """

    kind: str = "experiment"
    experiment_id: Optional[str] = None
    graph: Optional[Mapping[str, Any]] = None
    num_cores: int = 4
    deadline_s: Optional[float] = None
    profile_name: str = "fast"
    seed: int = 0
    platform: Optional[str] = None
    tech_node: Optional[str] = None
    sa_restarts: Optional[int] = None
    exec_max_workers: Optional[int] = None
    exec_plan: Optional[str] = None

    _PAYLOAD_KEYS = (
        "experiment",
        "graph",
        "num_cores",
        "deadline_s",
        "profile",
        "seed",
        "platform",
        "tech_node",
        "restarts",
        "max_workers",
        "exec_plan",
    )

    @classmethod
    def coerce(cls, value: Union["RunSpec", str, Mapping[str, Any]]) -> "RunSpec":
        """A :class:`RunSpec` from a spec, an experiment id, or a payload."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.from_payload({"experiment": value})
        if isinstance(value, Mapping):
            return cls.from_payload(value)
        raise ValidationError(
            f"cannot build a run spec from {type(value).__name__}"
        )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Validate a submission payload into a spec (structured errors)."""
        if not isinstance(payload, Mapping):
            raise ValidationError("submission payload must be a JSON object")
        unknown = sorted(set(payload) - set(cls._PAYLOAD_KEYS) - {"tenant"})
        if unknown:
            raise ValidationError(
                f"unknown field(s) {', '.join(unknown)}; expected "
                f"{', '.join(cls._PAYLOAD_KEYS)}",
                field=unknown[0],
            )
        experiment = payload.get("experiment")
        graph = payload.get("graph")
        if (experiment is None) == (graph is None):
            raise ValidationError(
                "exactly one of 'experiment' (a paper artifact id) or "
                "'graph' (a serialized task graph to optimize) is required",
                field="experiment",
            )
        if experiment is not None:
            if experiment not in experiment_ids():
                raise ValidationError(
                    f"unknown experiment {experiment!r}; choose from "
                    f"{', '.join(experiment_ids())}",
                    field="experiment",
                )
            kind = "experiment"
        else:
            if not isinstance(graph, Mapping) or "tasks" not in graph:
                raise ValidationError(
                    "'graph' must be a graph_to_dict() serialization "
                    "(an object with a 'tasks' list)",
                    field="graph",
                )
            try:
                from repro.taskgraph.serialize import graph_from_dict

                graph_from_dict(dict(graph))
            except ValidationError:
                raise
            except Exception as exc:
                raise ValidationError(
                    f"invalid task graph: {exc}", field="graph"
                ) from None
            kind = "optimize"
        profile_name = payload.get("profile", "fast")
        if profile_name not in _PROFILE_NAMES:
            raise ValidationError(
                f"unknown profile {profile_name!r}; choose from "
                f"{', '.join(_PROFILE_NAMES)}",
                field="profile",
            )
        platform = payload.get("platform")
        if platform is not None:
            from repro.arch.platform import platform_names

            if platform not in platform_names():
                raise ValidationError(
                    f"unknown platform {platform!r}; choose from "
                    f"{', '.join(platform_names())}",
                    field="platform",
                )
        tech_node = payload.get("tech_node")
        if tech_node is not None:
            from repro.arch.technode import TechNode

            try:
                TechNode.parse(str(tech_node))
            except ValueError as exc:
                raise ValidationError(str(exc), field="tech_node") from None
        exec_plan = payload.get("exec_plan")
        if exec_plan is not None and exec_plan not in EXEC_PLANS:
            raise ValidationError(
                f"unknown exec_plan {exec_plan!r}; choose from "
                f"{', '.join(EXEC_PLANS)}",
                field="exec_plan",
            )
        seed = _validated_int(payload, "seed", 0, minimum=0)
        num_cores = _validated_int(payload, "num_cores", 4, minimum=1)
        restarts = payload.get("restarts")
        if restarts is not None:
            restarts = _validated_int(payload, "restarts", None, minimum=1)
        max_workers = payload.get("max_workers")
        if max_workers is not None:
            max_workers = _validated_int(payload, "max_workers", None, minimum=1)
        deadline_s = payload.get("deadline_s")
        if kind == "optimize":
            if deadline_s is None:
                raise ValidationError(
                    "'deadline_s' (the real-time constraint, in seconds) "
                    "is required for task-graph submissions",
                    field="deadline_s",
                )
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                raise ValidationError(
                    "'deadline_s' must be a number", field="deadline_s"
                ) from None
            if deadline_s <= 0:
                raise ValidationError(
                    "'deadline_s' must be positive", field="deadline_s"
                )
        elif deadline_s is not None:
            raise ValidationError(
                "'deadline_s' applies to task-graph submissions only",
                field="deadline_s",
            )
        return cls(
            kind=kind,
            experiment_id=experiment,
            graph=dict(graph) if graph is not None else None,
            num_cores=num_cores,
            deadline_s=deadline_s,
            profile_name=profile_name,
            seed=seed,
            platform=platform,
            tech_node=tech_node,
            sa_restarts=restarts,
            exec_max_workers=max_workers,
            exec_plan=exec_plan,
        )

    def to_payload(self) -> Dict[str, Any]:
        """The canonical payload (round-trips through :meth:`from_payload`)."""
        payload: Dict[str, Any] = {"profile": self.profile_name, "seed": self.seed}
        if self.kind == "experiment":
            payload["experiment"] = self.experiment_id
        else:
            payload["graph"] = dict(self.graph or {})
            payload["num_cores"] = self.num_cores
            payload["deadline_s"] = self.deadline_s
        for key, value in (
            ("platform", self.platform),
            ("tech_node", self.tech_node),
            ("restarts", self.sa_restarts),
            ("max_workers", self.exec_max_workers),
            ("exec_plan", self.exec_plan),
        ):
            if value is not None:
                payload[key] = value
        return payload

    @property
    def label(self) -> str:
        """The run's human prefix (experiment id, or the graph's name)."""
        if self.kind == "experiment":
            return str(self.experiment_id)
        name = str((self.graph or {}).get("name", "graph"))
        safe = "".join(ch if ch.isalnum() or ch in "-_" else "-" for ch in name)
        return f"optimize-{safe or 'graph'}"

    def build_profile(self) -> ExperimentProfile:
        """The :class:`ExperimentProfile` this spec describes (no store)."""
        if self.profile_name == "full":
            profile = ExperimentProfile.full(seed=self.seed)
        elif self.profile_name == "smoke":
            profile = ExperimentProfile.smoke(seed=self.seed)
        else:
            profile = ExperimentProfile.fast(seed=self.seed)
        if self.platform is not None or self.tech_node is not None:
            profile = profile.with_platform(
                platform=self.platform, tech_node=self.tech_node
            )
        if self.sa_restarts is not None:
            profile = replace(profile, sa_restarts=self.sa_restarts)
        if self.exec_max_workers is not None:
            profile = profile.with_max_workers(self.exec_max_workers)
        if self.exec_plan is not None:
            profile = profile.with_exec_plan(self.exec_plan)
        return profile

    def run_id(self) -> str:
        """The deterministic run identity: label + result digest.

        Hashes the profile's result fingerprint (platform, tech node,
        budgets, seed — execution knobs excluded) plus the canonical
        graph content for optimize runs, so identical submissions from
        any tenant collide on the same run directory and are served
        from the result cache.
        """
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "profile_fingerprint": self.build_profile().result_fingerprint(),
        }
        if self.kind == "experiment":
            payload["experiment"] = self.experiment_id
        else:
            payload["graph"] = fingerprint_payload(dict(self.graph or {}))
            payload["num_cores"] = self.num_cores
            payload["deadline_s"] = repr(self.deadline_s)
        return f"{self.label}-{fingerprint_payload(payload)[:12]}"


def _validated_int(
    payload: Mapping[str, Any], key: str, default: Any, minimum: int
) -> Any:
    value = payload.get(key, default)
    if value is default:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"'{key}' must be an integer", field=key)
    if value < minimum:
        raise ValidationError(f"'{key}' must be >= {minimum}", field=key)
    return value


# ---------------------------------------------------------------------------
# Status objects: what the CLI renders and the HTTP service returns.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunStatus:
    """One run's observable state, merged from record + store manifests."""

    run_id: str
    label: str
    state: str
    directory: str
    total: int = 0
    completed: int = 0
    failed: int = 0
    fingerprint: Optional[str] = None
    profile: Mapping[str, Any] = field(default_factory=dict)
    tenants: Tuple[str, ...] = ()
    executor: Optional[Mapping[str, Any]] = None
    error: Optional[str] = None
    cells: Tuple[str, ...] = ()
    cell_status: Mapping[str, str] = field(default_factory=dict)

    @property
    def pending(self) -> int:
        return max(0, self.total - self.completed - self.failed)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON view (CLI ``runs --json`` and ``GET /v1/runs/<id>``)."""
        document: Dict[str, Any] = {
            "run_id": self.run_id,
            "label": self.label,
            "state": self.state,
            "cells": {
                "total": self.total,
                "completed": self.completed,
                "failed": self.failed,
                "pending": self.pending,
            },
            "profile": dict(self.profile),
            "tenants": list(self.tenants),
        }
        if self.fingerprint is not None:
            document["fingerprint"] = self.fingerprint
        if self.executor is not None:
            document["executor"] = dict(self.executor)
        if self.error is not None:
            document["error"] = self.error
        if self.cell_status:
            document["cell_status"] = {
                key: self.cell_status.get(key, "?") for key in self.cells
            }
        return document


@dataclass(frozen=True)
class RunSubmission:
    """The result of one :func:`submit_run` call.

    ``cached`` is True when the run was served complete from the
    result cache; ``scheduled`` is True when *this* call transitioned
    the run to ``queued`` (the caller owns getting it executed —
    :func:`submit_run` with ``wait=True`` does so immediately, the
    service enqueues it).  A submission that joins a run another
    tenant already queued has both flags False.
    """

    run_id: str
    state: str
    cached: bool
    scheduled: bool = False
    report: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "state": self.state,
            "cached": self.cached,
        }


@dataclass(frozen=True)
class RunOutcome:
    """What :func:`execute_run` hands back to direct callers."""

    result: Any
    report: str
    executor_stats: Optional[Any] = None


# ---------------------------------------------------------------------------
# Run records (run.json): tiny, atomic, concurrent-reader safe.
# ---------------------------------------------------------------------------


def _run_directory(
    store_root: Union[str, Path], run_id: str, create: bool = False
) -> Path:
    """The run's directory, across the flat and sharded ``runs/`` layouts.

    An existing run is found wherever it lives; fresh runs land in the
    layout :func:`repro.store.index.sharding_enabled` selects for this
    store (``create`` additionally materializes the shard bucket).
    """
    if not run_id or "/" in run_id or run_id.startswith("."):
        raise UnknownRunError(f"malformed run id {run_id!r}")
    return resolve_run_directory(store_root, run_id, create=create)


def _read_run_record(run_dir: Path) -> Optional[Dict[str, Any]]:
    try:
        record = json.loads(
            (run_dir / RUN_RECORD_NAME).read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        return None
    return record if isinstance(record, dict) else None


def _index_touch_run(run_dir: Path) -> None:
    """Refresh one service run's row in the store-root sidecar index.

    Best-effort by the cache contract (see :mod:`repro.store.index`):
    a failure or a missing sidecar degrades to "the next listing
    rebuilds", never to a failed state transition.  No sidecar is ever
    *created* here — :meth:`StoreIndex.attach` refuses to create one
    inside a run directory, and a store whose root index does not
    exist yet simply stays walk-served.
    """
    try:
        index = StoreIndex.attach(run_dir)
        if index is None:
            return
        entry = service_run_entry(run_dir)
        if entry is not None:
            index.update_entry(entry)
    except Exception:
        pass


def _write_run_record(run_dir: Path, record: Mapping[str, Any]) -> None:
    # Atomic like the store manifest: a polling reader never sees a
    # torn document, only the previous or the next one.
    document = json.dumps(dict(record), indent=2, sort_keys=True)
    temporary = run_dir / (RUN_RECORD_NAME + ".tmp")
    temporary.write_text(document + "\n", encoding="utf-8")
    os.replace(temporary, run_dir / RUN_RECORD_NAME)
    _index_touch_run(run_dir)


def _owner_document() -> Dict[str, Any]:
    """Who holds a queued/running record: enough to probe liveness later."""
    return {
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "attached_at": time.time(),
    }


def _progress_mtime(run_dir: Path) -> Optional[float]:
    """Newest on-disk progress timestamp of a run (record + manifests)."""
    newest: Optional[float] = None
    candidates = [run_dir / RUN_RECORD_NAME]
    try:
        candidates.extend(run_dir.rglob("manifest.json"))
    except OSError:
        pass
    for path in candidates:
        try:
            mtime = path.stat().st_mtime
        except OSError:
            continue
        if newest is None or mtime > newest:
            newest = mtime
    return newest


def _record_orphaned(run_dir: Path, record: Mapping[str, Any]) -> bool:
    """Whether a queued/running record's owning process is gone.

    Local owners are probed directly (``os.kill(pid, 0)``); for a
    record owned by another host the only signal is on-disk progress,
    so it counts as orphaned once nothing has been written for
    :data:`ORPHAN_GRACE_S`.  Owner-less (legacy) records are never
    presumed orphaned — there is nothing to probe.
    """
    if str(record.get("state", "")) not in ("queued", "running"):
        return False
    owner = record.get("owner")
    if not isinstance(owner, Mapping):
        return False
    pid = owner.get("pid")
    host = owner.get("host")
    if host == socket.gethostname() and isinstance(pid, int):
        if pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            # EPERM and friends: the pid exists but is not ours to
            # signal — alive as far as we can tell.
            return False
        return False
    newest = _progress_mtime(run_dir)
    return newest is not None and (time.time() - newest) > ORPHAN_GRACE_S


def _set_state(run_dir: Path, state: str, error: Optional[str] = None) -> None:
    record = _read_run_record(run_dir)
    if record is None:
        raise UnknownRunError(f"no run record under {run_dir}")
    record["state"] = state
    record["error"] = error
    # Ownership follows the lifecycle: the executing process stamps
    # itself on running records (that is what orphan detection probes)
    # and terminal states drop the claim.
    if state in ("queued", "running"):
        record["owner"] = _owner_document()
    else:
        record.pop("owner", None)
    _write_run_record(run_dir, record)


def _cancel_requested(run_dir: Path) -> bool:
    return (run_dir / CANCEL_NAME).exists()


# ---------------------------------------------------------------------------
# Execution: the one place orchestration logic lives.
# ---------------------------------------------------------------------------


def execute_run(
    experiment_id: str,
    profile: Optional[ExperimentProfile] = None,
    source: Optional[str] = None,
) -> RunOutcome:
    """Run one experiment under the profile's execution plan.

    The shared orchestration core: under a ``dag`` exec plan this owns
    the :class:`~repro.exec.dag.DagExecutor` for the whole run (so
    even experiments that never open a grid ship their leaves through
    it) unless an ambient executor scope is already active — the
    service's job workers open one per job, nested grids reuse it.
    The CLI ``experiment`` subcommand and the service both call this;
    neither duplicates the scope logic.
    """
    profile = profile or ExperimentProfile.fast()
    if not profile.uses_dag_executor():
        result, report = run_experiment(experiment_id, profile)
        return RunOutcome(result, report, None)
    from repro.exec.dag import DagExecutor, current_executor, executor_scope

    ambient = current_executor()
    if ambient is not None:
        result, report = run_experiment(experiment_id, profile)
        return RunOutcome(result, report, ambient.stats)
    with DagExecutor.from_spec(
        profile.dag_transport(), max_workers=profile.exec_max_workers
    ) as executor:
        with executor_scope(executor, source or experiment_id):
            result, report = run_experiment(experiment_id, profile)
        stats = executor.stats
    return RunOutcome(result, report, stats)


@dataclass(frozen=True)
class OptimizeJob:
    """One task-graph optimization as a store-managed grid cell.

    Running client graphs through :func:`run_cells` (a one-cell grid
    labelled ``optimize``) buys the whole store contract for free:
    streaming persistence, fingerprint-gated exact resume, and the
    manifest the service polls for status.
    """

    graph: Any
    num_cores: int
    deadline_s: float
    profile: ExperimentProfile

    def run(self) -> Any:
        from repro.experiments.common import build_optimizer

        optimizer = build_optimizer(
            self.graph,
            self.num_cores,
            self.deadline_s,
            self.profile,
        )
        return optimizer.optimize()


def _render_optimize_report(
    spec: RunSpec, profile: ExperimentProfile, graph: Any, outcome: Any
) -> str:
    """The deterministic text report for an optimize-kind run."""
    lines = [
        f"Optimization — {graph.name} ({graph.num_tasks} tasks, "
        f"{spec.num_cores} cores)",
        f"profile: {profile.name} (seed={profile.seed})",
        f"deadline: {spec.deadline_s * 1e3:.1f} ms",
        "",
    ]
    if outcome.best is None:
        lines.append("no feasible design found")
    else:
        best = outcome.best
        lines.append(f"design: {best.summary()}")
        for core, tasks in enumerate(best.mapping.core_groups()):
            level = best.scaling[core]
            joined = ", ".join(tasks) if tasks else "-"
            lines.append(f"  core {core + 1} (s={level}): {joined}")
    lines.append("")
    lines.append(
        f"assessed {len(outcome.assessments)} scaling combinations, "
        f"{outcome.evaluations} design-point evaluations"
    )
    return "\n".join(lines)


def _execute_spec(
    spec: RunSpec, profile: ExperimentProfile, source: Optional[str] = None
) -> Tuple[Any, str]:
    """Run a spec under a (store-carrying) profile; return (result, report)."""
    if spec.kind == "experiment":
        outcome = execute_run(spec.experiment_id, profile, source=source)
        return outcome.result, outcome.report
    from repro.taskgraph.serialize import graph_from_dict

    graph = graph_from_dict(dict(spec.graph or {}))
    job = OptimizeJob(
        graph=graph,
        num_cores=spec.num_cores,
        deadline_s=float(spec.deadline_s or 0.0),
        profile=profile,
    )
    if profile.uses_dag_executor():
        from repro.exec.dag import DagExecutor, current_executor, executor_scope

        if current_executor() is None:
            with DagExecutor.from_spec(
                profile.dag_transport(), max_workers=profile.exec_max_workers
            ) as executor:
                with executor_scope(executor, source or spec.label):
                    (outcome,) = run_cells([job], profile, label="optimize")
        else:
            (outcome,) = run_cells([job], profile, label="optimize")
    else:
        (outcome,) = run_cells([job], profile, label="optimize")
    return outcome, _render_optimize_report(spec, profile, graph, outcome)


# ---------------------------------------------------------------------------
# The facade surface: submit / status / report / list / cancel.
# ---------------------------------------------------------------------------


def submit_run(
    spec: Union[RunSpec, str, Mapping[str, Any]],
    store_root: Union[str, Path],
    tenant: str = "default",
    wait: bool = True,
    exec_plan: Optional[str] = None,
) -> RunSubmission:
    """Submit a run against a service store; dedup-serve identical runs.

    With ``wait=True`` (the library default) a fresh submission
    executes synchronously and returns with the finished report; with
    ``wait=False`` it is only registered as ``queued`` — the caller
    (the job service) executes it later via :func:`run_submitted`.

    Identical resubmissions hit the result cache: a ``complete`` run
    is served from disk (``cached=True``, no cell re-executes, no
    evaluator traffic) and its record gains this ``tenant`` label; a
    run another submission already queued or started is joined, not
    duplicated.  ``failed``/``cancelled`` runs are re-queued, and the
    store's fingerprint-gated resume re-dispatches only their missing
    cells.  ``exec_plan`` overrides how a *fresh* execution runs (it
    is an execution knob, outside the run identity).
    """
    spec = RunSpec.coerce(spec)
    run_id = spec.run_id()
    run_dir = _run_directory(store_root, run_id, create=True)
    run_dir.mkdir(parents=True, exist_ok=True)
    existing = _read_run_record(run_dir)
    record = existing or {
        "format": 1,
        "run_id": run_id,
        "label": spec.label,
        "state": "queued",
        "spec": spec.to_payload(),
        "tenants": [],
        "error": None,
    }
    tenants = list(record.get("tenants", []))
    if tenant not in tenants:
        tenants.append(tenant)
    record["tenants"] = tenants
    state = str(record.get("state", "queued"))
    report_path = run_dir / REPORT_NAME
    if state == "complete" and report_path.exists():
        _write_run_record(run_dir, record)
        return RunSubmission(
            run_id=run_id,
            state="complete",
            cached=True,
            report=report_path.read_text(encoding="utf-8"),
        )
    if (
        existing is not None
        and state in ("queued", "running")
        and not _record_orphaned(run_dir, record)
    ):
        if not wait:
            # Another submission already owns execution: join it.
            _write_run_record(run_dir, record)
            return RunSubmission(run_id=run_id, state=state, cached=False)
        if state == "running":
            _write_run_record(run_dir, record)
            raise RunConflictError(
                f"run {run_id} is already in flight; poll run_status() "
                "or submit through the job service"
            )
    # Fresh, failed, cancelled, stale-complete (report lost), or
    # orphaned (owning process died): (re-)queue it under this owner.
    record["state"] = "queued"
    record["error"] = None
    record["owner"] = _owner_document()
    cancel_marker = run_dir / CANCEL_NAME
    if cancel_marker.exists():
        cancel_marker.unlink()
    _write_run_record(run_dir, record)
    if not wait:
        return RunSubmission(
            run_id=run_id, state="queued", cached=False, scheduled=True
        )
    return run_submitted(store_root, run_id, exec_plan=exec_plan)


def run_submitted(
    store_root: Union[str, Path],
    run_id: str,
    exec_plan: Optional[str] = None,
) -> RunSubmission:
    """Execute a previously queued run (the job-service worker path).

    Rebuilds the spec from the run record, streams the run's grids
    into the run directory (resuming any durable partial work), writes
    ``report.txt`` and flips the record to ``complete``.  A cancel
    marker set while the run was queued wins here: the run flips to
    ``cancelled`` without executing.  Failures mark the record
    ``failed`` and re-raise for the caller.
    """
    run_dir = _run_directory(store_root, run_id)
    record = _read_run_record(run_dir)
    if record is None:
        raise UnknownRunError(f"no run {run_id!r} under {store_root}")
    if _cancel_requested(run_dir):
        _set_state(run_dir, "cancelled")
        return RunSubmission(run_id=run_id, state="cancelled", cached=False)
    spec = RunSpec.from_payload(record.get("spec", {}))
    profile = spec.build_profile()
    if profile.exec_plan is None and exec_plan is not None:
        profile = profile.with_exec_plan(exec_plan)
    profile = profile.with_store(str(run_dir), resume=True)
    _set_state(run_dir, "running")
    try:
        _, report = _execute_spec(spec, profile, source=run_id)
    except Exception as exc:
        _set_state(run_dir, "failed", error=f"{type(exc).__name__}: {exc}")
        raise
    text = report + "\n"
    (run_dir / REPORT_NAME).write_text(text, encoding="utf-8")
    _set_state(run_dir, "complete")
    return RunSubmission(
        run_id=run_id, state="complete", cached=False, report=text
    )


def reattach_pending(store_root: Union[str, Path]) -> List[str]:
    """Adopt orphaned queued/running runs (supervisor re-attach on boot).

    Walks the store's service run records and claims every run whose
    previous owner died — ``running`` records with a dead owner, and
    ``queued`` records that are owner-less or dead-owned — by flipping
    them back to ``queued`` under this process.  Returns the adopted
    run ids (sorted, because the walk is).  The caller (the job
    manager) re-dispatches them through :func:`run_submitted`; the
    store's fingerprint-keyed resume then skips every cell the dead
    server already completed, so recovery recomputes nothing.
    """
    runs_dir = Path(store_root) / RUNS_DIRNAME
    adopted: List[str] = []
    for run_dir in iter_service_run_dirs(runs_dir):
        record = _read_run_record(run_dir)
        if record is None:
            continue
        state = str(record.get("state", ""))
        if state == "running":
            if not _record_orphaned(run_dir, record):
                continue
        elif state == "queued":
            has_owner = isinstance(record.get("owner"), Mapping)
            if has_owner and not _record_orphaned(run_dir, record):
                continue
        else:
            continue
        record["state"] = "queued"
        record["error"] = None
        record["owner"] = _owner_document()
        _write_run_record(run_dir, record)
        adopted.append(str(record.get("run_id", run_dir.name)))
    return adopted


def _status_from_manifests(
    run_id: str,
    label: str,
    state: str,
    directory: Path,
    manifests: Sequence[Tuple[Path, Mapping[str, Any]]],
    tenants: Sequence[str] = (),
    error: Optional[str] = None,
) -> RunStatus:
    total = completed = failed = 0
    fingerprint: Optional[str] = None
    profile: Mapping[str, Any] = {}
    executor: Optional[Mapping[str, Any]] = None
    cells: List[str] = []
    cell_status: Dict[str, str] = {}
    for _, manifest in manifests:
        total += int(manifest.get("total", 0))
        completed += int(manifest.get("completed", 0))
        failed += int(manifest.get("failed", 0))
        fingerprint = fingerprint or manifest.get("fingerprint")
        profile = profile or manifest.get("profile", {})
        executor = executor or manifest.get("executor")
        cells.extend(manifest.get("cells", []))
        cell_status.update(manifest.get("status", {}))
    return RunStatus(
        run_id=run_id,
        label=label,
        state=state,
        directory=str(directory),
        total=total,
        completed=completed,
        failed=failed,
        fingerprint=fingerprint,
        profile=dict(profile),
        tenants=tuple(tenants),
        executor=dict(executor) if executor else None,
        error=error,
        cells=tuple(cells),
        cell_status=cell_status,
    )


def _service_run_status(run_dir: Path, record: Mapping[str, Any]) -> RunStatus:
    state = str(record.get("state", "queued"))
    if state == "running" and _record_orphaned(run_dir, record):
        # The record says running but its owning process is gone: the
        # run will never progress until a supervisor re-attaches it.
        # Reporting ``running`` forever would be a lie.
        state = INTERRUPTED_STATE
    return _status_from_manifests(
        run_id=str(record.get("run_id", run_dir.name)),
        label=str(record.get("label", run_dir.name)),
        state=state,
        directory=run_dir,
        manifests=list(iter_manifests(run_dir)),
        tenants=[str(t) for t in record.get("tenants", [])],
        error=record.get("error"),
    )


def _orphan_adjust(status: RunStatus) -> RunStatus:
    """Re-derive ``interrupted`` for an index/walk-served status.

    The sidecar index caches on-disk state; whether the owning process
    is still alive is a live property it cannot know, so listings
    re-probe their ``running`` entries here (there are few of those).
    """
    if status.state != "running":
        return status
    run_dir = Path(status.directory)
    record = _read_run_record(run_dir)
    if record is None or not _record_orphaned(run_dir, record):
        return status
    return replace(status, state=INTERRUPTED_STATE)


def _status_from_entry(entry: RunEntry) -> RunStatus:
    """The :class:`RunStatus` of one index/walk entry.

    :func:`repro.store.index.collect_entries` and
    :meth:`~repro.store.index.StoreIndex.entries` produce the same
    entries field for field, so a listing served from the sidecar is
    byte-identical to the directory walk it caches — the CI
    ``e2e-store`` index leg diffs exactly this.
    """
    return RunStatus(
        run_id=entry.run_id,
        label=entry.label,
        state=entry.state,
        directory=str(entry.directory),
        total=entry.total,
        completed=entry.completed,
        failed=entry.failed,
        fingerprint=entry.fingerprint,
        profile=dict(entry.profile),
        tenants=tuple(entry.tenants),
        executor=dict(entry.executor) if entry.executor else None,
        error=entry.error,
        cells=tuple(entry.cells),
        cell_status=dict(entry.cell_status),
    )


def run_status(store_root: Union[str, Path], run_id: str) -> RunStatus:
    """The status of one run (service runs and bare grid stores alike).

    Progress comes straight from the streaming store manifests the
    executor rewrites as cells complete — polling a run mid-execution
    is the intended use, and the store readers tolerate a writer
    mid-append.  Bare grid stores are probed through the sidecar index
    first (an O(1) lookup instead of a walk); an index miss or failure
    falls back to the manifest walk, so the index never gates
    correctness.
    """
    root = Path(store_root)
    run_dir = _run_directory(root, run_id)
    record = _read_run_record(run_dir)
    if record is not None:
        return _service_run_status(run_dir, record)
    # Bare grid stores (the CLI's --store-dir layout): index probe
    # first, then match manifests by run label or directory name.
    entry = StoreIndex.at(root).lookup_run(run_id)
    if entry is not None and entry.kind == "grid":
        return _status_from_entry(entry)
    for directory, manifest in iter_manifests(root):
        if directory == root / RUNS_DIRNAME or root / RUNS_DIRNAME in directory.parents:
            continue
        if manifest.get("label") == run_id or directory.name == run_id:
            return _status_from_manifests(
                run_id=directory.name,
                label=str(manifest.get("label", directory.name)),
                state=str(manifest.get("run_status", "?")),
                directory=directory,
                manifests=[(directory, manifest)],
            )
    raise UnknownRunError(f"no run {run_id!r} under {root}")


#: Memoized listings keyed by (store root, tenant): the service polls
#: ``list_runs`` on every HTTP request, and between store writes the
#: answer cannot change.  Invalidation is the index's mtime (including
#: its WAL file — a WAL write does not touch the main database file),
#: so a memo entry lives exactly as long as the sidecar is untouched.
_LISTING_CACHE: Dict[Tuple[str, Optional[str]], Tuple[int, List[RunStatus]]] = {}


def list_runs(
    store_root: Union[str, Path],
    tenant: Optional[str] = None,
    use_index: bool = True,
) -> List[RunStatus]:
    """Every run under a store root, service records and bare grids both.

    Service-managed runs (under ``runs/``, flat or sharded) are listed
    from their run records; bare grid directories (what ``repro-seu
    experiment --store-dir`` writes) are synthesized from their
    manifests so one listing — and one ``runs --json`` shape — covers
    both layouts.  ``tenant`` filters to runs carrying that label.

    The listing is served from the SQLite sidecar index when one is
    fresh (no ``records.jsonl`` scan, no directory walk — the hot path
    at service scale), memoized per (root, tenant) against the index
    mtime.  A missing or unreadable sidecar falls back to the
    directory walk and rebuilds the index from the walked entries, so
    deleting ``index.sqlite`` costs one listing, never an answer;
    ``use_index=False`` forces the walk (and skips the rebuild) — the
    CI e2e leg byte-diffs the two paths.
    """
    root = Path(store_root)
    if use_index:
        index = StoreIndex.at(root)
        stamp = index.mtime_ns()
        key = (str(root), tenant)
        memo = _LISTING_CACHE.get(key)
        if memo is not None and stamp is not None and memo[0] == stamp:
            # Orphan-ness is a live-process property the cached listing
            # cannot carry: re-derive it on the way out, every time.
            return [_orphan_adjust(status) for status in memo[1]]
        try:
            statuses = [_status_from_entry(e) for e in index.entries(tenant)]
        except StoreIndexError:
            pass
        else:
            if stamp is not None:
                _LISTING_CACHE[key] = (stamp, statuses)
            return [_orphan_adjust(status) for status in statuses]
    entries = collect_entries(root)
    if use_index:
        try:
            StoreIndex.ensure(root).replace_all(entries)
        except Exception:
            pass  # cache rebuild is best-effort; the walk already answered
    if tenant is not None:
        entries = [entry for entry in entries if tenant in entry.tenants]
    return [_orphan_adjust(_status_from_entry(entry)) for entry in entries]


def rebuild_index(store_root: Union[str, Path]) -> int:
    """Rebuild the store's sidecar index from the on-disk truth.

    Walks every run record and manifest under the root and replaces
    the whole ``index.sqlite`` atomically (the index is a pure cache —
    this is always safe, whatever state the sidecar was in).  Returns
    the number of indexed runs.
    """
    root = Path(store_root)
    entries = collect_entries(root)
    StoreIndex.ensure(root).replace_all(entries)
    _LISTING_CACHE.clear()
    return len(entries)


def fetch_report(store_root: Union[str, Path], run_id: str) -> str:
    """The finished report's exact bytes (CLI-stdout identical).

    Raises :class:`UnknownRunError` for unknown runs and
    :class:`RunConflictError` while the run has not completed —
    callers poll :func:`run_status` first.
    """
    run_dir = _run_directory(store_root, run_id)
    record = _read_run_record(run_dir)
    if record is None:
        raise UnknownRunError(f"no run {run_id!r} under {store_root}")
    state = str(record.get("state", "queued"))
    report_path = run_dir / REPORT_NAME
    if state != "complete" or not report_path.exists():
        raise RunConflictError(
            f"run {run_id} is {state}; the report exists once it completes"
        )
    return report_path.read_text(encoding="utf-8")


def cancel_run(store_root: Union[str, Path], run_id: str) -> RunStatus:
    """Request cancellation of a run (cooperative).

    Queued runs flip to ``cancelled`` immediately and are skipped at
    dispatch.  Running runs only get the marker: their in-flight cells
    finish and stay durable (a later identical submission resumes
    them), but the job service will not restart the run.  Completed
    runs are left untouched — cancelling a cache entry would discard
    shared work other tenants rely on.
    """
    run_dir = _run_directory(store_root, run_id)
    record = _read_run_record(run_dir)
    if record is None:
        raise UnknownRunError(f"no run {run_id!r} under {store_root}")
    state = str(record.get("state", "queued"))
    if state in ("queued", "running"):
        (run_dir / CANCEL_NAME).write_text("cancel\n", encoding="utf-8")
        if state == "queued":
            _set_state(run_dir, "cancelled")
    return run_status(store_root, run_id)


def format_runs_table(statuses: Sequence[RunStatus]) -> str:
    """The ``repro-seu runs`` table, rendered from status objects."""
    rows = [
        [
            status.label,
            status.state,
            f"{status.completed}/{status.total}",
            str(status.failed),
            str(status.profile.get("name", "?")),
            str(status.profile.get("seed", "?")),
            str(status.fingerprint or "?"),
        ]
        for status in statuses
    ]
    headers = ["Run", "Status", "Done", "Failed", "Profile", "Seed", "Fingerprint"]
    return format_table(headers, rows)


__all__ = [
    "ApiError",
    "INTERRUPTED_STATE",
    "OptimizeJob",
    "RunConflictError",
    "RunOutcome",
    "RunSpec",
    "RunStatus",
    "RunSubmission",
    "UnknownRunError",
    "ValidationError",
    "cancel_run",
    "execute_run",
    "fetch_report",
    "format_runs_table",
    "list_runs",
    "reattach_pending",
    "rebuild_index",
    "run_status",
    "run_submitted",
    "submit_run",
]
