"""Architecture substrate: cores, platforms, DVS, power and tech nodes.

This subpackage models the paper's MPSoC platform (Fig. 1) and its
generalization.  The default construction reproduces the paper exactly:
``C`` ARM7TDMI-class processing cores with private caches and memories,
fed by a clock-tree generator that supplies a per-core voltage/frequency
operating point (dynamic voltage scaling).  On top of that, platforms
may mix :class:`CoreType` families (big/little cores with per-type DVS
tables, power coefficients and cycle scales) and be instantiated at a
:class:`TechNode` (45→8 nm vdd/freq/power/area/SER scaling with
ITRS-vs-conservative variants).  Single-type platforms at the default
node are bit-identical to the homogeneous seed model.

Public API
----------
``ScalingLevel``
    One (frequency, voltage) operating point.
``ScalingTable``
    An ordered collection of levels; presets reproduce Table I of the
    paper for 2, 3 and 4 scaling levels.
``CoreSpec`` / ``ProcessingCore``
    Static parameters and per-core state (assigned scaling coefficient).
``CoreType``
    A core family: DVS table, spec and cycle-scale factor.
``MPSoC``
    The platform: cores drawn from one family (the paper's homogeneous
    default) or several.
``PlatformModel`` / ``platform_model`` / ``platform_names``
    Named platform recipes (``"arm7"``, ``"biglittle"``, ``"little"``).
``TechNode``
    Technology-node scale factors (45→8 nm, ``itrs``/``cons``).
``PowerModel``
    Dynamic power per Eq. (1)/(5) of the paper.
"""

from repro.arch.core import CoreSpec, CoreType, ProcessingCore
from repro.arch.dvs import (
    ARM7_BASE_FREQUENCY_MHZ,
    ScalingLevel,
    ScalingTable,
    arm7_vdd_for_frequency,
)
from repro.arch.mpsoc import MPSoC
from repro.arch.platform import (
    DEFAULT_PLATFORM,
    PlatformModel,
    arm7_core_type,
    platform_model,
    platform_names,
)
from repro.arch.power import PowerModel
from repro.arch.technode import TECH_NODES, TECH_VARIANTS, TechNode

__all__ = [
    "ARM7_BASE_FREQUENCY_MHZ",
    "CoreSpec",
    "CoreType",
    "DEFAULT_PLATFORM",
    "MPSoC",
    "PlatformModel",
    "PowerModel",
    "ProcessingCore",
    "ScalingLevel",
    "ScalingTable",
    "TECH_NODES",
    "TECH_VARIANTS",
    "TechNode",
    "arm7_core_type",
    "arm7_vdd_for_frequency",
    "platform_model",
    "platform_names",
]
