"""Architecture substrate: processing cores, MPSoC, DVS and power models.

This subpackage models the homogeneous MPSoC platform of the paper
(Fig. 1): ``C`` identical ARM7TDMI-class processing cores with private
caches and memories, fed by a clock-tree generator that supplies a
per-core voltage/frequency operating point (dynamic voltage scaling).

Public API
----------
``ScalingLevel``
    One (frequency, voltage) operating point.
``ScalingTable``
    An ordered collection of levels; presets reproduce Table I of the
    paper for 2, 3 and 4 scaling levels.
``CoreSpec`` / ``ProcessingCore``
    Static parameters and per-core state (assigned scaling coefficient).
``MPSoC``
    The platform: a number of cores plus a shared scaling table.
``PowerModel``
    Dynamic power per Eq. (1)/(5) of the paper.
"""

from repro.arch.core import CoreSpec, ProcessingCore
from repro.arch.dvs import (
    ARM7_BASE_FREQUENCY_MHZ,
    ScalingLevel,
    ScalingTable,
    arm7_vdd_for_frequency,
)
from repro.arch.mpsoc import MPSoC
from repro.arch.power import PowerModel

__all__ = [
    "ARM7_BASE_FREQUENCY_MHZ",
    "CoreSpec",
    "MPSoC",
    "PowerModel",
    "ProcessingCore",
    "ScalingLevel",
    "ScalingTable",
    "arm7_vdd_for_frequency",
]
