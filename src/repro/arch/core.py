"""Processing-core model.

Each MPSoC processing core in the paper (Fig. 1) is an ARM7 processor
with private data/instruction caches (8 kbit / 16 kbit) and a private
memory (512 kbit).  For the purposes of the optimization the core is
characterized by:

* its static specification (:class:`CoreSpec`) — cache/memory sizes and
  effective switched capacitance, and
* its dynamic state (:class:`ProcessingCore`) — the currently assigned
  DVS scaling coefficient.

The register space that soft errors strike spans the processor register
file plus cache and memory registers; its *occupied* size is workload
dependent and is modelled by the task graph's register sets
(:mod:`repro.taskgraph.registers`), not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.dvs import ScalingLevel, ScalingTable

#: Effective switched capacitance (farads) used by the power model.
#: Calibrated so the MPEG-2 four-core design of Table II lands in the
#: paper's milliwatt range (see DESIGN.md §5).
DEFAULT_SWITCHED_CAPACITANCE_F = 8.9e-11

#: Cache and memory sizes of the paper's processing core, in bits.
DEFAULT_DCACHE_BITS = 8 * 1024
DEFAULT_ICACHE_BITS = 16 * 1024
DEFAULT_MEMORY_BITS = 512 * 1024


@dataclass(frozen=True)
class CoreSpec:
    """Static parameters of one ARM7-class processing core.

    Attributes
    ----------
    switched_capacitance_f:
        Effective switched capacitance :math:`C_L` in farads (Eq. 1).
    dcache_bits / icache_bits / memory_bits:
        Private storage sizes in bits.  They bound the register space a
        core exposes to SEUs; the actual exposed bits are computed from
        the mapped tasks' register sets.
    """

    switched_capacitance_f: float = DEFAULT_SWITCHED_CAPACITANCE_F
    dcache_bits: int = DEFAULT_DCACHE_BITS
    icache_bits: int = DEFAULT_ICACHE_BITS
    memory_bits: int = DEFAULT_MEMORY_BITS

    def __post_init__(self) -> None:
        if self.switched_capacitance_f <= 0.0:
            raise ValueError("switched capacitance must be positive")
        for name in ("dcache_bits", "icache_bits", "memory_bits"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def total_storage_bits(self) -> int:
        """Total private storage (caches + memory) in bits."""
        return self.dcache_bits + self.icache_bits + self.memory_bits


@dataclass(frozen=True)
class CoreType:
    """One core family: DVS table, static spec and cycle-scale factor.

    The heterogeneous platform generalization (see
    :mod:`repro.arch.platform`) groups cores into *types*.  A type
    bundles everything that can differ between core families:

    Attributes
    ----------
    name:
        Human-readable family label (``"arm7"``, ``"big"``...).
    scaling_table:
        The family's DVS operating points.
    spec:
        Static parameters (capacitance, storage sizes).
    cycle_scale:
        Multiplier on reference task cycles — ``1.0`` means the type
        retires the reference workload cycle-for-cycle; larger means a
        lower-IPC core needing more cycles for the same task.
        Communication cycles are interconnect-dominated and never
        scale.
    """

    name: str
    scaling_table: ScalingTable
    spec: CoreSpec = field(default_factory=CoreSpec)
    cycle_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.cycle_scale <= 0.0:
            raise ValueError(f"cycle_scale must be positive, got {self.cycle_scale}")

    def task_cycles(self, base_cycles: int) -> int:
        """Cycles this type needs for a task of ``base_cycles``."""
        if self.cycle_scale == 1.0:
            return base_cycles
        return max(1, round(base_cycles * self.cycle_scale))


@dataclass
class ProcessingCore:
    """One processing core with its current DVS assignment.

    Parameters
    ----------
    index:
        0-based position of the core in the MPSoC.
    spec:
        Static core parameters.
    scaling_coefficient:
        1-based index into the platform's :class:`ScalingTable`;
        ``1`` is the fastest level.
    """

    index: int
    spec: CoreSpec = field(default_factory=CoreSpec)
    scaling_coefficient: int = 1

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"core index must be non-negative, got {self.index}")
        if self.scaling_coefficient < 1:
            raise ValueError(
                f"scaling coefficient must be >= 1, got {self.scaling_coefficient}"
            )

    def level(self, table: ScalingTable) -> ScalingLevel:
        """The operating point selected by this core's coefficient."""
        return table.level(self.scaling_coefficient)

    def frequency_hz(self, table: ScalingTable) -> float:
        """Clock frequency (Hz) at the assigned coefficient."""
        return self.level(table).frequency_hz

    def vdd_v(self, table: ScalingTable) -> float:
        """Supply voltage (V) at the assigned coefficient."""
        return self.level(table).vdd_v

    def set_scaling(self, coefficient: int, table: ScalingTable) -> None:
        """Assign a new scaling coefficient, validated against ``table``."""
        table.level(coefficient)  # raises if out of range
        self.scaling_coefficient = coefficient

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"core{self.index}(s={self.scaling_coefficient})"
