"""Dynamic voltage scaling (DVS) model for ARM7TDMI-class cores.

The paper scales each processing core independently using a small table
of discrete (frequency, voltage) operating points derived from the
ARM7TDMI voltage/frequency relationship reported by Pouwelse et al.
(MobiCom'01), Eq. (2) of the paper:

    Vdd(f) = 0.1667 + 4.1667 * f / 1000        [V, f in MHz]

with the operating frequency for scaling coefficient ``s`` being the
nominal 200 MHz divided by ``s``.  Evaluating that expression reproduces
Table I of the paper exactly:

    s=1 -> 200.0 MHz, 1.00 V
    s=2 -> 100.0 MHz, 0.58 V
    s=3 ->  66.7 MHz, 0.44 V

Section V additionally studies a 2-level table (dropping s=3) and a
4-level table (adding a 236 MHz / 1.2 V boost point).  ``ScalingTable``
captures all three presets; scaling *coefficients* are 1-based indices
into the table, with ``s = 1`` the fastest (highest voltage) level, so
the paper's "scale by 2" reads as "use the table's second level".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

#: Nominal (unscaled) ARM7TDMI clock frequency used throughout the paper.
ARM7_BASE_FREQUENCY_MHZ = 200.0

#: Intercept and slope of the ARM7TDMI Vdd(f) line, Eq. (2) of the paper.
_ARM7_VDD_INTERCEPT_V = 0.1667
_ARM7_VDD_SLOPE_V_PER_GHZ = 4.1667


def arm7_vdd_for_frequency(frequency_mhz: float) -> float:
    """Supply voltage (V) required for ``frequency_mhz`` on ARM7TDMI.

    Implements Eq. (2): ``Vdd = 0.1667 + 4.1667 * f / 1000`` with ``f``
    in MHz.  For the Table I frequencies this returns 1.00, 0.58(3) and
    0.44(5) volts.

    Raises
    ------
    ValueError
        If ``frequency_mhz`` is not positive.
    """
    if frequency_mhz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_mhz}")
    return _ARM7_VDD_INTERCEPT_V + _ARM7_VDD_SLOPE_V_PER_GHZ * frequency_mhz / 1000.0


@dataclass(frozen=True)
class ScalingLevel:
    """One discrete DVS operating point.

    Attributes
    ----------
    frequency_mhz:
        Core clock frequency in MHz.
    vdd_v:
        Supply voltage in volts at that frequency.
    """

    frequency_mhz: float
    vdd_v: float

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0.0:
            raise ValueError(f"frequency must be positive, got {self.frequency_mhz}")
        if self.vdd_v <= 0.0:
            raise ValueError(f"Vdd must be positive, got {self.vdd_v}")

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in Hz."""
        return self.frequency_mhz * 1.0e6

    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.frequency_hz

    @classmethod
    def from_frequency(cls, frequency_mhz: float) -> "ScalingLevel":
        """Build a level at ``frequency_mhz`` using the ARM7 Vdd(f) law."""
        return cls(frequency_mhz=frequency_mhz, vdd_v=arm7_vdd_for_frequency(frequency_mhz))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.frequency_mhz:g}MHz@{self.vdd_v:.2f}V"


class ScalingTable:
    """An ordered table of DVS operating points.

    Levels are ordered fastest-first, and scaling coefficients are
    1-based: coefficient ``s`` selects ``levels[s - 1]``.  This matches
    the paper, where ``s=1`` is the nominal (fastest) level and larger
    coefficients denote deeper scaling.

    Parameters
    ----------
    levels:
        Operating points, fastest first.  Frequencies must be strictly
        decreasing and voltages non-increasing (deeper scaling cannot
        raise voltage).
    name:
        Optional human-readable label, used in reports.
    """

    def __init__(self, levels: Sequence[ScalingLevel], name: str = "") -> None:
        levels = list(levels)
        if not levels:
            raise ValueError("a scaling table needs at least one level")
        for previous, current in zip(levels, levels[1:]):
            if current.frequency_mhz >= previous.frequency_mhz:
                raise ValueError(
                    "levels must be ordered fastest first: "
                    f"{current.frequency_mhz} MHz follows {previous.frequency_mhz} MHz"
                )
            if current.vdd_v > previous.vdd_v:
                raise ValueError(
                    "a slower level cannot require a higher voltage: "
                    f"{current} follows {previous}"
                )
        self._levels: Tuple[ScalingLevel, ...] = tuple(levels)
        self.name = name or f"{len(levels)}-level"

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self) -> Iterator[ScalingLevel]:
        return iter(self._levels)

    def __getitem__(self, index: int) -> ScalingLevel:
        return self._levels[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScalingTable):
            return NotImplemented
        return self._levels == other._levels

    def __hash__(self) -> int:
        return hash(self._levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        points = ", ".join(str(level) for level in self._levels)
        return f"ScalingTable({self.name}: {points})"

    # -- lookups -----------------------------------------------------------

    @property
    def levels(self) -> Tuple[ScalingLevel, ...]:
        """The operating points, fastest first."""
        return self._levels

    @property
    def num_levels(self) -> int:
        """Number of operating points."""
        return len(self._levels)

    @property
    def deepest_coefficient(self) -> int:
        """The largest valid scaling coefficient (slowest level)."""
        return len(self._levels)

    def level(self, coefficient: int) -> ScalingLevel:
        """Operating point for 1-based scaling ``coefficient``."""
        self._check_coefficient(coefficient)
        return self._levels[coefficient - 1]

    def frequency_mhz(self, coefficient: int) -> float:
        """Clock frequency (MHz) at scaling ``coefficient``."""
        return self.level(coefficient).frequency_mhz

    def frequency_hz(self, coefficient: int) -> float:
        """Clock frequency (Hz) at scaling ``coefficient``."""
        return self.level(coefficient).frequency_hz

    def vdd_v(self, coefficient: int) -> float:
        """Supply voltage (V) at scaling ``coefficient``."""
        return self.level(coefficient).vdd_v

    def validate_assignment(self, coefficients: Iterable[int]) -> Tuple[int, ...]:
        """Validate a per-core coefficient vector and return it as a tuple."""
        assignment = tuple(coefficients)
        for coefficient in assignment:
            self._check_coefficient(coefficient)
        return assignment

    def _check_coefficient(self, coefficient: int) -> None:
        if not isinstance(coefficient, int):
            raise TypeError(f"scaling coefficient must be an int, got {coefficient!r}")
        if not 1 <= coefficient <= len(self._levels):
            raise ValueError(
                f"scaling coefficient {coefficient} outside valid range "
                f"1..{len(self._levels)}"
            )

    # -- presets reproducing the paper's tables -----------------------------

    @classmethod
    def arm7_three_level(cls) -> "ScalingTable":
        """Table I of the paper: 200/100/66.7 MHz at 1.0/0.58/0.44 V."""
        return cls(
            [
                ScalingLevel.from_frequency(200.0),
                ScalingLevel.from_frequency(100.0),
                ScalingLevel.from_frequency(200.0 / 3.0),
            ],
            name="arm7-3-level",
        )

    @classmethod
    def arm7_two_level(cls) -> "ScalingTable":
        """Section V's 2-level study: 200 MHz/1 V and 100 MHz/0.58 V."""
        return cls(
            [
                ScalingLevel.from_frequency(200.0),
                ScalingLevel.from_frequency(100.0),
            ],
            name="arm7-2-level",
        )

    @classmethod
    def arm7_four_level(cls) -> "ScalingTable":
        """Section V's 4-level study: Table I plus a 236 MHz / 1.2 V point.

        The paper introduces the boost point as "1.2V-236MHz"; we keep
        the published voltage rather than the Eq. (2) value (1.15 V).
        """
        return cls(
            [
                ScalingLevel(frequency_mhz=236.0, vdd_v=1.2),
                ScalingLevel.from_frequency(200.0),
                ScalingLevel.from_frequency(100.0),
                ScalingLevel.from_frequency(200.0 / 3.0),
            ],
            name="arm7-4-level",
        )

    @classmethod
    def arm7_levels(cls, num_levels: int) -> "ScalingTable":
        """Preset lookup used by the Fig. 11 experiment (2, 3 or 4 levels)."""
        presets = {
            2: cls.arm7_two_level,
            3: cls.arm7_three_level,
            4: cls.arm7_four_level,
        }
        try:
            return presets[num_levels]()
        except KeyError:
            raise ValueError(
                f"no ARM7 preset with {num_levels} levels; choose from {sorted(presets)}"
            ) from None


def uniform_assignment(num_cores: int, coefficient: int) -> List[int]:
    """A per-core assignment with every core at the same coefficient."""
    if num_cores <= 0:
        raise ValueError(f"num_cores must be positive, got {num_cores}")
    return [coefficient] * num_cores
