"""Homogeneous MPSoC platform model (Fig. 1 of the paper).

An :class:`MPSoC` is a set of identical :class:`~repro.arch.core.\
ProcessingCore` instances sharing a :class:`~repro.arch.dvs.ScalingTable`
(the clock-tree generator supplies each core its own point from the
table) and connected by dedicated inter-core links with a fixed 32-bit
transfer width.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.arch.core import CoreSpec, ProcessingCore
from repro.arch.dvs import ScalingLevel, ScalingTable


class MPSoC:
    """A homogeneous multiprocessor system-on-chip.

    Parameters
    ----------
    num_cores:
        Number of identical processing cores (``C`` in the paper).
    scaling_table:
        Shared table of DVS operating points.  Defaults to the paper's
        three-level ARM7 table (Table I).
    core_spec:
        Static parameters shared by every core.
    scaling:
        Optional initial per-core scaling coefficients; defaults to all
        cores at the deepest (slowest, lowest-power) level, matching the
        starting point of the paper's ``nextScaling`` sweep.
    """

    def __init__(
        self,
        num_cores: int,
        scaling_table: Optional[ScalingTable] = None,
        core_spec: Optional[CoreSpec] = None,
        scaling: Optional[Sequence[int]] = None,
    ) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.scaling_table = scaling_table or ScalingTable.arm7_three_level()
        self.core_spec = core_spec or CoreSpec()
        if scaling is None:
            scaling = [self.scaling_table.deepest_coefficient] * num_cores
        scaling = list(scaling)
        if len(scaling) != num_cores:
            raise ValueError(
                f"scaling vector has {len(scaling)} entries for {num_cores} cores"
            )
        self._cores: List[ProcessingCore] = []
        for index, coefficient in enumerate(scaling):
            self.scaling_table.level(coefficient)  # validate
            self._cores.append(
                ProcessingCore(
                    index=index, spec=self.core_spec, scaling_coefficient=coefficient
                )
            )

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._cores)

    def __iter__(self) -> Iterator[ProcessingCore]:
        return iter(self._cores)

    def __getitem__(self, index: int) -> ProcessingCore:
        return self._cores[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MPSoC(num_cores={len(self._cores)}, "
            f"scaling={self.scaling_vector()}, table={self.scaling_table.name})"
        )

    # -- properties ----------------------------------------------------------

    @property
    def num_cores(self) -> int:
        """Number of processing cores, ``C``."""
        return len(self._cores)

    @property
    def cores(self) -> Tuple[ProcessingCore, ...]:
        """The processing cores, in index order."""
        return tuple(self._cores)

    # -- scaling management ---------------------------------------------------

    def scaling_vector(self) -> Tuple[int, ...]:
        """Current per-core scaling coefficients, in core order."""
        return tuple(core.scaling_coefficient for core in self._cores)

    def set_scaling_vector(self, coefficients: Iterable[int]) -> None:
        """Assign scaling coefficients to every core at once."""
        assignment = self.scaling_table.validate_assignment(coefficients)
        if len(assignment) != self.num_cores:
            raise ValueError(
                f"scaling vector has {len(assignment)} entries for "
                f"{self.num_cores} cores"
            )
        for core, coefficient in zip(self._cores, assignment):
            core.scaling_coefficient = coefficient

    def level_of(self, core_index: int) -> ScalingLevel:
        """Operating point of core ``core_index``."""
        return self._cores[core_index].level(self.scaling_table)

    def frequency_hz(self, core_index: int) -> float:
        """Clock frequency (Hz) of core ``core_index``."""
        return self.level_of(core_index).frequency_hz

    def vdd_v(self, core_index: int) -> float:
        """Supply voltage (V) of core ``core_index``."""
        return self.level_of(core_index).vdd_v

    def with_scaling(self, coefficients: Sequence[int]) -> "MPSoC":
        """A copy of this platform with a different scaling vector."""
        return MPSoC(
            num_cores=self.num_cores,
            scaling_table=self.scaling_table,
            core_spec=self.core_spec,
            scaling=coefficients,
        )

    # -- convenience constructors ---------------------------------------------

    @classmethod
    def paper_reference(cls, num_cores: int = 4) -> "MPSoC":
        """The paper's reference platform: ARM7 cores, Table I scalings."""
        return cls(num_cores=num_cores, scaling_table=ScalingTable.arm7_three_level())
