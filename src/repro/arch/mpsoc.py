"""MPSoC platform model (Fig. 1 of the paper, generalized).

An :class:`MPSoC` is a set of :class:`~repro.arch.core.ProcessingCore`
instances connected by dedicated inter-core links with a fixed 32-bit
transfer width.  The paper's platform is *homogeneous* — every core an
identical ARM7TDMI sharing one :class:`~repro.arch.dvs.ScalingTable` —
and that remains the default construction.  Cores may instead be drawn
from several :class:`~repro.arch.core.CoreType` families (big/little
mixes, per-type DVS tables and power coefficients, per-type cycle
scales); see :mod:`repro.arch.platform` for named presets.

Single-type platforms are contractually bit-identical to the seed's
homogeneous model: ``scaling_table``/``core_spec`` still expose the
(sole) type's table and spec, and every per-core accessor returns the
same objects the homogeneous path used.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.arch.core import CoreSpec, CoreType, ProcessingCore
from repro.arch.dvs import ScalingLevel, ScalingTable


class MPSoC:
    """A multiprocessor system-on-chip, homogeneous by default.

    Parameters
    ----------
    num_cores:
        Number of processing cores (``C`` in the paper).
    scaling_table:
        Shared table of DVS operating points.  Defaults to the paper's
        three-level ARM7 table (Table I).  Mutually exclusive with
        ``core_types``.
    core_spec:
        Static parameters shared by every core.  Mutually exclusive
        with ``core_types``.
    scaling:
        Optional initial per-core scaling coefficients; defaults to all
        cores at their deepest (slowest, lowest-power) level, matching
        the starting point of the paper's ``nextScaling`` sweep.
    core_types:
        Optional core families for a heterogeneous platform.  When
        given, ``type_of_core`` assigns a family to each core slot and
        the ``scaling_table``/``core_spec`` attributes expose the first
        family's table and spec for backward compatibility.
    type_of_core:
        Per-core type ids into ``core_types``; defaults to cycling
        through the families in order.
    """

    def __init__(
        self,
        num_cores: int,
        scaling_table: Optional[ScalingTable] = None,
        core_spec: Optional[CoreSpec] = None,
        scaling: Optional[Sequence[int]] = None,
        core_types: Optional[Sequence[CoreType]] = None,
        type_of_core: Optional[Sequence[int]] = None,
    ) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        if core_types is not None:
            if scaling_table is not None or core_spec is not None:
                raise ValueError(
                    "core_types is mutually exclusive with scaling_table/core_spec"
                )
            types = tuple(core_types)
            if not types:
                raise ValueError("core_types must be non-empty")
        else:
            if type_of_core is not None:
                raise ValueError("type_of_core requires core_types")
            types = (
                CoreType(
                    name="arm7",
                    scaling_table=scaling_table or ScalingTable.arm7_three_level(),
                    spec=core_spec or CoreSpec(),
                ),
            )
        if type_of_core is None:
            type_ids = tuple(index % len(types) for index in range(num_cores))
        else:
            type_ids = tuple(type_of_core)
            if len(type_ids) != num_cores:
                raise ValueError(
                    f"type_of_core has {len(type_ids)} entries for {num_cores} cores"
                )
            for type_id in type_ids:
                if not 0 <= type_id < len(types):
                    raise ValueError(
                        f"type id {type_id} outside 0..{len(types) - 1}"
                    )
        self._core_types: Tuple[CoreType, ...] = types
        self._type_of_core: Tuple[int, ...] = type_ids
        # Back-compat accessors: the homogeneous platform's shared table
        # and spec.  For multi-type platforms they expose the first
        # family (per-core consumers must use table_of()/spec_of()).
        self.scaling_table = types[0].scaling_table
        self.core_spec = types[0].spec
        self._core_tables: Tuple[ScalingTable, ...] = tuple(
            types[type_id].scaling_table for type_id in type_ids
        )
        if scaling is None:
            scaling = [
                types[type_id].scaling_table.deepest_coefficient
                for type_id in type_ids
            ]
        scaling = list(scaling)
        if len(scaling) != num_cores:
            raise ValueError(
                f"scaling vector has {len(scaling)} entries for {num_cores} cores"
            )
        self._cores: List[ProcessingCore] = []
        for index, coefficient in enumerate(scaling):
            self._core_tables[index].level(coefficient)  # validate
            self._cores.append(
                ProcessingCore(
                    index=index,
                    spec=types[type_ids[index]].spec,
                    scaling_coefficient=coefficient,
                )
            )

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._cores)

    def __iter__(self) -> Iterator[ProcessingCore]:
        return iter(self._cores)

    def __getitem__(self, index: int) -> ProcessingCore:
        return self._cores[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tables = {table.name for table in self._core_tables}
        return (
            f"MPSoC(num_cores={len(self._cores)}, "
            f"scaling={self.scaling_vector()}, table={'/'.join(sorted(tables))})"
        )

    # -- properties ----------------------------------------------------------

    @property
    def num_cores(self) -> int:
        """Number of processing cores, ``C``."""
        return len(self._cores)

    @property
    def cores(self) -> Tuple[ProcessingCore, ...]:
        """The processing cores, in index order."""
        return tuple(self._cores)

    # -- core types -----------------------------------------------------------

    @property
    def core_types(self) -> Tuple[CoreType, ...]:
        """The core families (a single family for homogeneous platforms)."""
        return self._core_types

    @property
    def num_core_types(self) -> int:
        """Number of core families, ``K``."""
        return len(self._core_types)

    @property
    def type_of_core(self) -> Tuple[int, ...]:
        """Per-core family ids, in core order."""
        return self._type_of_core

    @property
    def is_heterogeneous(self) -> bool:
        """True when the platform mixes more than one core family."""
        return len(self._core_types) > 1

    @property
    def core_tables(self) -> Tuple[ScalingTable, ...]:
        """Per-core scaling tables (one shared object when homogeneous)."""
        return self._core_tables

    def core_type_of(self, core_index: int) -> CoreType:
        """The family of core ``core_index``."""
        return self._core_types[self._type_of_core[core_index]]

    def table_of(self, core_index: int) -> ScalingTable:
        """The scaling table of core ``core_index``."""
        return self._core_tables[core_index]

    def spec_of(self, core_index: int) -> CoreSpec:
        """The static spec of core ``core_index``."""
        return self._core_types[self._type_of_core[core_index]].spec

    def cycle_scales(self) -> Tuple[float, ...]:
        """Per-core cycle-scale factors, in core order."""
        return tuple(
            self._core_types[type_id].cycle_scale for type_id in self._type_of_core
        )

    @property
    def uniform_unit_cycles(self) -> bool:
        """True when every core retires reference cycles 1:1 — the
        gate for the seed (base-cycle) scheduling paths."""
        return all(
            core_type.cycle_scale == 1.0 for core_type in self._core_types
        )

    # -- scaling management ---------------------------------------------------

    def scaling_vector(self) -> Tuple[int, ...]:
        """Current per-core scaling coefficients, in core order."""
        return tuple(core.scaling_coefficient for core in self._cores)

    def validate_assignment(self, coefficients: Iterable[int]) -> Tuple[int, ...]:
        """Validate per-core coefficients against each core's own table.

        Homogeneous platforms delegate to the shared table (identical
        behavior and error messages to the seed path, including
        accepting shorter vectors — callers length-check separately).
        """
        if not self.is_heterogeneous:
            return self.scaling_table.validate_assignment(coefficients)
        assignment = tuple(coefficients)
        if len(assignment) != self.num_cores:
            raise ValueError(
                f"scaling vector has {len(assignment)} entries for "
                f"{self.num_cores} cores"
            )
        for table, coefficient in zip(self._core_tables, assignment):
            table.level(coefficient)  # validate against this core's table
        return assignment

    def deepest_scaling_vector(self) -> Tuple[int, ...]:
        """Every core at its own slowest (lowest-power) level."""
        return tuple(table.deepest_coefficient for table in self._core_tables)

    def num_levels_per_core(self) -> Tuple[int, ...]:
        """Number of DVS levels available to each core."""
        return tuple(table.num_levels for table in self._core_tables)

    def set_scaling_vector(self, coefficients: Iterable[int]) -> None:
        """Assign scaling coefficients to every core at once."""
        assignment = self.validate_assignment(coefficients)
        if len(assignment) != self.num_cores:
            raise ValueError(
                f"scaling vector has {len(assignment)} entries for "
                f"{self.num_cores} cores"
            )
        for core, coefficient in zip(self._cores, assignment):
            core.scaling_coefficient = coefficient

    def level_of(self, core_index: int) -> ScalingLevel:
        """Operating point of core ``core_index``."""
        return self._cores[core_index].level(self._core_tables[core_index])

    def frequency_hz(self, core_index: int) -> float:
        """Clock frequency (Hz) of core ``core_index``."""
        return self.level_of(core_index).frequency_hz

    def vdd_v(self, core_index: int) -> float:
        """Supply voltage (V) of core ``core_index``."""
        return self.level_of(core_index).vdd_v

    def with_scaling(self, coefficients: Sequence[int]) -> "MPSoC":
        """A copy of this platform with a different scaling vector."""
        return MPSoC(
            num_cores=self.num_cores,
            core_types=self._core_types,
            type_of_core=self._type_of_core,
            scaling=coefficients,
        )

    # -- convenience constructors ---------------------------------------------

    @classmethod
    def paper_reference(cls, num_cores: int = 4) -> "MPSoC":
        """The paper's reference platform: ARM7 cores, Table I scalings."""
        return cls(num_cores=num_cores, scaling_table=ScalingTable.arm7_three_level())
