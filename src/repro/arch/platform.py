"""Platform model: heterogeneous platform presets over core types.

The paper's platform is homogeneous; this module generalizes it.  A
:class:`~repro.arch.core.CoreType` bundles everything that can differ
between core families — the DVS table, the static core spec
(capacitance, storage) and a *cycle-scale* factor modelling IPC
differences (a task that takes ``c`` cycles on the reference core takes
``max(1, round(c * scale))`` cycles on this type; communication cycles
are interconnect-dominated and do not scale).  A :class:`PlatformModel`
names a recipe — the core types plus the pattern assigning them to core
slots — that :meth:`PlatformModel.instantiate` turns into a concrete
:class:`~repro.arch.mpsoc.MPSoC` at a chosen technology node.

**Bit-identity contract:** the ``"arm7"`` preset at the default node
instantiates a single-type platform whose behavior is bit-identical to
the seed's homogeneous ``MPSoC`` everywhere (schedules, metrics, RNG
streams, cache counters) — asserted by the heterogeneous parity suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.arch.core import CoreSpec, CoreType, DEFAULT_SWITCHED_CAPACITANCE_F
from repro.arch.dvs import ScalingLevel, ScalingTable
from repro.arch.mpsoc import MPSoC
from repro.arch.technode import TechNode

#: The preset matching the paper's platform exactly.
DEFAULT_PLATFORM = "arm7"


@dataclass(frozen=True)
class PlatformModel:
    """A named platform recipe: core types plus their slot pattern.

    ``type_pattern`` is cycled over core indices, so ``(0, 1)`` yields
    alternating types for any core count and ``(0,)`` a homogeneous
    platform.
    """

    name: str
    core_types: Tuple[CoreType, ...]
    type_pattern: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if not self.core_types:
            raise ValueError("a platform model needs at least one core type")
        if not self.type_pattern:
            raise ValueError("the type pattern must be non-empty")
        for type_id in self.type_pattern:
            if not 0 <= type_id < len(self.core_types):
                raise ValueError(
                    f"type id {type_id} outside 0..{len(self.core_types) - 1}"
                )

    def type_of_core(self, num_cores: int) -> Tuple[int, ...]:
        """Per-core type ids for a platform of ``num_cores`` cores."""
        pattern = self.type_pattern
        return tuple(pattern[index % len(pattern)] for index in range(num_cores))

    def instantiate(
        self,
        num_cores: int,
        tech_node: Optional[TechNode] = None,
        scaling: Optional[Sequence[int]] = None,
    ) -> MPSoC:
        """A concrete :class:`MPSoC` of this shape at ``tech_node``."""
        node = tech_node if tech_node is not None else TechNode()
        types = tuple(node.scale_core_type(core_type) for core_type in self.core_types)
        return MPSoC(
            num_cores=num_cores,
            core_types=types,
            type_of_core=self.type_of_core(num_cores),
            scaling=scaling,
        )


def arm7_core_type(num_levels: int = 3) -> CoreType:
    """The reference type: the paper's ARM7 core, cycle-for-cycle."""
    return CoreType(
        name="arm7",
        scaling_table=ScalingTable.arm7_levels(num_levels),
        spec=CoreSpec(),
        cycle_scale=1.0,
    )


def _big_core_type() -> CoreType:
    """An out-of-order "big" core: ARM7 table plus the 1.2 V boost point,
    ~25% better IPC, a bigger (higher-capacitance) engine."""
    return CoreType(
        name="big",
        scaling_table=ScalingTable.arm7_four_level(),
        spec=CoreSpec(switched_capacitance_f=1.8 * DEFAULT_SWITCHED_CAPACITANCE_F),
        cycle_scale=0.8,
    )


def _little_core_type() -> CoreType:
    """An in-order "little" core: slower clocks, ~60% more cycles per
    task, under half the switched capacitance and halved caches."""
    table = ScalingTable(
        [
            ScalingLevel.from_frequency(100.0),
            ScalingLevel.from_frequency(200.0 / 3.0),
        ],
        name="arm7-little-2-level",
    )
    return CoreType(
        name="little",
        scaling_table=table,
        spec=CoreSpec(
            switched_capacitance_f=0.4 * DEFAULT_SWITCHED_CAPACITANCE_F,
            dcache_bits=4 * 1024,
            icache_bits=8 * 1024,
        ),
        cycle_scale=1.6,
    )


def _build_presets() -> Dict[str, PlatformModel]:
    arm7 = arm7_core_type()
    big = _big_core_type()
    little = _little_core_type()
    return {
        "arm7": PlatformModel(name="arm7", core_types=(arm7,), type_pattern=(0,)),
        "biglittle": PlatformModel(
            name="biglittle", core_types=(big, little), type_pattern=(0, 1)
        ),
        "little": PlatformModel(
            name="little", core_types=(little,), type_pattern=(0,)
        ),
    }


_PRESETS = _build_presets()


def platform_names() -> Tuple[str, ...]:
    """Available preset names, sorted."""
    return tuple(sorted(_PRESETS))


def platform_model(name: str, num_levels: Optional[int] = None) -> PlatformModel:
    """Look up a preset by name.

    ``num_levels`` customizes the ``"arm7"`` preset's table depth (the
    Fig. 11 study); other presets fix their own tables and reject it.
    """
    if name == "arm7" and num_levels is not None and num_levels != 3:
        return PlatformModel(
            name="arm7", core_types=(arm7_core_type(num_levels),), type_pattern=(0,)
        )
    try:
        model = _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown platform preset {name!r}; choose from {platform_names()}"
        ) from None
    return model
