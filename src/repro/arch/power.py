"""Dynamic power model (Eqs. 1 and 5 of the paper).

The per-core dynamic power is ``P_dyn = alpha * C_L * f * Vdd^2`` where
``alpha`` is the core's activity factor — the fraction of the
multiprocessor execution window during which the core is busy
(``alpha_i = T_i / T_M``).  Platform power is the sum over cores with
each core at its own (f, Vdd) operating point:

    P = sum_i alpha_i * C_L,i * f_i(s_i) * Vdd_i(s_i)^2        (Eq. 5)

``PowerModel`` evaluates this for a scaling vector plus activity
factors.  Activity factors come from a schedule (see
:mod:`repro.mapping.metrics`); passing ``None`` assumes fully busy
cores (alpha = 1), an upper bound sometimes useful for screening.

On the paper's homogeneous platform every core shares one capacitance
and one scaling table; heterogeneous platforms resolve both per core
(``platform.table_of(i)`` / ``platform.spec_of(i)``).  For single-type
platforms the per-core lookups return the same shared objects, so the
float sequence — and therefore every bit of the result — matches the
seed path.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.arch.mpsoc import MPSoC


class PowerModel:
    """Dynamic power evaluator for an MPSoC scaling assignment.

    Parameters
    ----------
    switched_capacitance_f:
        Effective switched capacitance :math:`C_L` (farads) common to
        all cores.  Defaults to each core's own spec when evaluating
        through :meth:`platform_power_mw`.
    """

    def __init__(self, switched_capacitance_f: Optional[float] = None) -> None:
        if switched_capacitance_f is not None and switched_capacitance_f <= 0:
            raise ValueError("switched capacitance must be positive")
        self._cl = switched_capacitance_f

    # -- single-core power ------------------------------------------------

    def core_power_w(
        self,
        frequency_hz: float,
        vdd_v: float,
        activity: float = 1.0,
        switched_capacitance_f: Optional[float] = None,
    ) -> float:
        """Dynamic power (watts) of one core, Eq. (1).

        Parameters
        ----------
        frequency_hz:
            Clock frequency in Hz.
        vdd_v:
            Supply voltage in volts.
        activity:
            Activity factor ``alpha`` in [0, 1].
        switched_capacitance_f:
            Override for :math:`C_L`; falls back to the model default.
        """
        cl = switched_capacitance_f if switched_capacitance_f is not None else self._cl
        if cl is None:
            raise ValueError("no switched capacitance configured")
        if not 0.0 <= activity <= 1.0 + 1e-12:
            raise ValueError(f"activity factor must be in [0, 1], got {activity}")
        if frequency_hz <= 0 or vdd_v <= 0:
            raise ValueError("frequency and Vdd must be positive")
        return activity * cl * frequency_hz * vdd_v * vdd_v

    # -- per-core capacitance ------------------------------------------------

    def _core_capacitances(self, platform: MPSoC) -> Tuple[float, ...]:
        """Per-core :math:`C_L`: the model override or each core's spec."""
        if self._cl is not None:
            return (self._cl,) * platform.num_cores
        return tuple(
            platform.spec_of(index).switched_capacitance_f
            for index in range(platform.num_cores)
        )

    # -- platform power -----------------------------------------------------

    def platform_power_w(
        self,
        platform: MPSoC,
        scaling: Optional[Sequence[int]] = None,
        activities: Optional[Sequence[float]] = None,
    ) -> float:
        """Total dynamic power (watts) of the platform, Eq. (5).

        Parameters
        ----------
        platform:
            The MPSoC; supplies each core's scaling table and, by
            default, the current per-core coefficients and each core
            spec's capacitance.
        scaling:
            Optional per-core scaling coefficients overriding the
            platform's current assignment.
        activities:
            Optional per-core activity factors ``alpha_i``; defaults to
            all-busy (1.0).
        """
        if scaling is None:
            scaling = platform.scaling_vector()
        else:
            scaling = list(scaling)
            if len(scaling) != platform.num_cores:
                raise ValueError(
                    f"scaling vector has {len(scaling)} entries for "
                    f"{platform.num_cores} cores"
                )
        if activities is None:
            activities = [1.0] * platform.num_cores
        elif len(activities) != platform.num_cores:
            raise ValueError(
                f"activity vector has {len(activities)} entries for "
                f"{platform.num_cores} cores"
            )
        capacitances = self._core_capacitances(platform)
        tables = platform.core_tables
        total = 0.0
        for index, (coefficient, activity) in enumerate(zip(scaling, activities)):
            level = tables[index].level(coefficient)
            total += self.core_power_w(
                level.frequency_hz,
                level.vdd_v,
                activity,
                switched_capacitance_f=capacitances[index],
            )
        return total

    def platform_power_mw(
        self,
        platform: MPSoC,
        scaling: Optional[Sequence[int]] = None,
        activities: Optional[Sequence[float]] = None,
    ) -> float:
        """Total dynamic power in milliwatts (the paper's reporting unit)."""
        return 1.0e3 * self.platform_power_w(platform, scaling, activities)

    # -- batched evaluation -------------------------------------------------

    def platform_terms(
        self, platform: MPSoC, scaling: Optional[Sequence[int]] = None
    ) -> "PowerTerms":
        """The per-scaling invariants of Eq. (5), validated once.

        Batch evaluation reuses one scaling vector across many
        mappings; resolving the (frequency, Vdd) operating points and
        the capacitance per *batch* instead of per design point keeps
        the per-mapping work down to the activity multiply-accumulate.

        Heterogeneous platforms carry per-core capacitances in
        ``core_capacitances_f``; single-capacitance platforms leave it
        ``None`` so :meth:`platform_power_mw_from_terms` replays the
        seed path's exact float sequence.
        """
        if scaling is None:
            scaling = platform.scaling_vector()
        elif len(scaling) != platform.num_cores:
            raise ValueError(
                f"scaling vector has {len(scaling)} entries for "
                f"{platform.num_cores} cores"
            )
        capacitances = self._core_capacitances(platform)
        tables = platform.core_tables
        levels = tuple(
            tables[index].level(coefficient)
            for index, coefficient in enumerate(scaling)
        )
        uniform = all(cl == capacitances[0] for cl in capacitances)
        return PowerTerms(
            switched_capacitance_f=capacitances[0],
            operating_points=tuple(
                (level.frequency_hz, level.vdd_v) for level in levels
            ),
            core_capacitances_f=None if uniform else capacitances,
        )

    def platform_power_mw_from_terms(
        self, terms: "PowerTerms", activities: Sequence[float]
    ) -> float:
        """Eq. (5) from precomputed terms — bit-identical to
        :meth:`platform_power_mw` with the same inputs.

        The float operations replay :meth:`core_power_w`'s expression
        (``activity * C_L * f * Vdd * Vdd``, summed in core order), so
        batched and per-call evaluation produce the same bits.  Range
        validation is skipped: callers pass schedule-derived activity
        factors, which are in [0, 1] by construction.
        """
        core_cls = terms.core_capacitances_f
        total = 0.0
        if core_cls is None:
            cl = terms.switched_capacitance_f
            for (frequency_hz, vdd_v), activity in zip(
                terms.operating_points, activities
            ):
                total += activity * cl * frequency_hz * vdd_v * vdd_v
        else:
            for (frequency_hz, vdd_v), activity, cl in zip(
                terms.operating_points, activities, core_cls
            ):
                total += activity * cl * frequency_hz * vdd_v * vdd_v
        return 1.0e3 * total


class PowerTerms:
    """Precomputed Eq. (5) invariants for one scaling vector."""

    __slots__ = ("switched_capacitance_f", "operating_points", "core_capacitances_f")

    def __init__(
        self, switched_capacitance_f, operating_points, core_capacitances_f=None
    ) -> None:
        self.switched_capacitance_f = switched_capacitance_f
        self.operating_points = operating_points
        self.core_capacitances_f = core_capacitances_f
