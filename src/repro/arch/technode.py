"""Technology-node scaling model (45 nm → 8 nm).

The paper's platform is characterized at a single technology node; this
module layers a lumos-style node model underneath the DVS and power
models so experiments can sweep feature sizes.  Per node we keep scale
factors — relative to the 45 nm reference — for supply voltage, clock
frequency, full-activity dynamic power and core area, in two variants:

``itrs``
    The aggressive ITRS projection (frequency up to ~4x, power down to
    ~0.12x at 8 nm).
``cons``
    A conservative projection with much flatter frequency/voltage
    scaling, reflecting the post-Dennard reality.

Scaling composes with the ARM7 tables multiplicatively: a
:class:`~repro.arch.dvs.ScalingTable` is mapped level-by-level to
``(f * freq_scale, Vdd * vdd_scale)``; the effective switched
capacitance is rescaled so that full-activity dynamic power obeys the
node's power scale (``P = C_L f Vdd^2`` ⇒
``C' = C * power_scale / (freq_scale * vdd_scale^2)``); and the SER
model's per-bit rate grows as features shrink (smaller critical charge)
while its voltage reference tracks the scaled nominal supply.

Levels whose scaled supply would drop below the node's threshold
voltage are removed from the table — the lumos DVFS lower bound — so
deep-scaled tables lose their slowest points at aggressive nodes.

**Bit-identity contract:** the default node (45 nm, either variant) has
every scale factor equal to 1.0 and all ``scale_*`` methods return
their argument *object* unchanged, so the seed path is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.arch.core import CoreSpec, CoreType
from repro.arch.dvs import ScalingLevel, ScalingTable
from repro.faults.ser import SERModel

#: Feature sizes with calibrated scale tables, largest (reference) first.
TECH_NODES: Tuple[int, ...] = (45, 32, 22, 16, 11, 8)

#: The reference node: every scale factor is exactly 1.0.
DEFAULT_TECH_NODE_NM = 45

#: Projection variants.
TECH_VARIANTS: Tuple[str, ...] = ("itrs", "cons")

_VDD_SCALE = {
    "itrs": {45: 1.0, 32: 0.93, 22: 0.84, 16: 0.75, 11: 0.68, 8: 0.62},
    "cons": {45: 1.0, 32: 0.93, 22: 0.88, 16: 0.86, 11: 0.84, 8: 0.84},
}

_FREQ_SCALE = {
    "itrs": {45: 1.0, 32: 1.09, 22: 2.38, 16: 3.21, 11: 4.17, 8: 3.85},
    "cons": {45: 1.0, 32: 1.10, 22: 1.19, 16: 1.25, 11: 1.30, 8: 1.34},
}

_POWER_SCALE = {
    "itrs": {45: 1.0, 32: 0.66, 22: 0.54, 16: 0.38, 11: 0.25, 8: 0.12},
    "cons": {45: 1.0, 32: 0.71, 22: 0.52, 16: 0.39, 11: 0.29, 8: 0.22},
}

_AREA_SCALE = {45: 1.0, 32: 0.5, 22: 0.25, 16: 0.125, 11: 0.0625, 8: 0.03125}

#: Threshold voltage per node (volts) — the DVFS lower bound.
_VTH_V = {45: 0.3201, 32: 0.297, 22: 0.2673, 16: 0.2409, 11: 0.2178, 8: 0.198}

#: Per-bit SER multiplier per node.  Smaller features hold less critical
#: charge, so the raw (voltage-independent) susceptibility rises roughly
#: geometrically node over node (~1.26x per step, a decade over the
#: sweep is consistent with published per-bit SER trend data).
_SER_SCALE = {45: 1.0, 32: 1.26, 22: 1.58, 16: 2.0, 11: 2.51, 8: 3.16}


@dataclass(frozen=True)
class TechNode:
    """One technology node under one projection variant.

    Attributes
    ----------
    feature_nm:
        Feature size in nanometres; one of :data:`TECH_NODES`.
    variant:
        ``"itrs"`` (aggressive) or ``"cons"`` (conservative).
    """

    feature_nm: int = DEFAULT_TECH_NODE_NM
    variant: str = "itrs"

    def __post_init__(self) -> None:
        if self.feature_nm not in TECH_NODES:
            raise ValueError(
                f"unknown tech node {self.feature_nm} nm; choose from {TECH_NODES}"
            )
        if self.variant not in TECH_VARIANTS:
            raise ValueError(
                f"unknown tech variant {self.variant!r}; choose from {TECH_VARIANTS}"
            )

    # -- parsing / naming ---------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "TechNode":
        """Parse ``"45nm"``, ``"22nm-cons"``, ``"8"`` or ``"default"``."""
        text = spec.strip().lower()
        if not text or text == "default":
            return cls()
        variant = "itrs"
        if "-" in text:
            text, variant = text.split("-", 1)
        if text.endswith("nm"):
            text = text[:-2]
        try:
            feature_nm = int(text)
        except ValueError:
            raise ValueError(f"cannot parse tech node spec {spec!r}") from None
        return cls(feature_nm=feature_nm, variant=variant)

    @property
    def name(self) -> str:
        """Canonical spec string, e.g. ``"22nm-cons"``."""
        return f"{self.feature_nm}nm-{self.variant}"

    # -- scale factors ------------------------------------------------------

    @property
    def vdd_scale(self) -> float:
        return _VDD_SCALE[self.variant][self.feature_nm]

    @property
    def freq_scale(self) -> float:
        return _FREQ_SCALE[self.variant][self.feature_nm]

    @property
    def power_scale(self) -> float:
        return _POWER_SCALE[self.variant][self.feature_nm]

    @property
    def area_scale(self) -> float:
        return _AREA_SCALE[self.feature_nm]

    @property
    def vth_v(self) -> float:
        return _VTH_V[self.feature_nm]

    @property
    def ser_scale(self) -> float:
        return _SER_SCALE[self.feature_nm]

    @property
    def is_default(self) -> bool:
        """True when every scale factor is exactly 1.0 (the 45 nm node)."""
        return self.feature_nm == DEFAULT_TECH_NODE_NM

    # -- model scaling ------------------------------------------------------

    def scale_table(self, table: ScalingTable) -> ScalingTable:
        """``table`` mapped to this node's operating points.

        Frequencies scale by :attr:`freq_scale`, voltages by
        :attr:`vdd_scale`; levels whose scaled supply falls below the
        node's threshold voltage are dropped (the DVFS lower bound).
        At the default node the input object is returned unchanged.
        """
        if self.is_default:
            return table
        levels = [
            ScalingLevel(
                frequency_mhz=level.frequency_mhz * self.freq_scale,
                vdd_v=level.vdd_v * self.vdd_scale,
            )
            for level in table.levels
        ]
        kept = [level for level in levels if level.vdd_v >= self.vth_v]
        if not kept:
            raise ValueError(
                f"every level of {table.name} falls below Vth at {self.name}"
            )
        return ScalingTable(kept, name=f"{table.name}@{self.name}")

    def scale_spec(self, spec: CoreSpec) -> CoreSpec:
        """``spec`` with capacitance rescaled for this node.

        Derived from ``P = C_L f Vdd^2``: full-activity power at the
        node's nominal point must equal the reference power times
        :attr:`power_scale`, so ``C' = C * power_scale / (freq_scale *
        vdd_scale^2)``.  Storage sizes are kept — the paper's register
        exposure is workload-defined, not area-defined.
        """
        if self.is_default:
            return spec
        capacitance_scale = self.power_scale / (
            self.freq_scale * self.vdd_scale * self.vdd_scale
        )
        return CoreSpec(
            switched_capacitance_f=spec.switched_capacitance_f * capacitance_scale,
            dcache_bits=spec.dcache_bits,
            icache_bits=spec.icache_bits,
            memory_bits=spec.memory_bits,
        )

    def scale_ser(self, model: SERModel) -> SERModel:
        """``model`` re-referenced to this node.

        The per-bit rate grows by :attr:`ser_scale` and the voltage
        reference tracks the scaled nominal supply, so at the node's
        own nominal point the rate is exactly ``lambda_ref *
        ser_scale`` and deeper in-node DVS raises it from there.
        """
        if self.is_default:
            return model
        return SERModel(
            reference_rate=model.reference_rate * self.ser_scale,
            reference_vdd_v=model.reference_vdd_v * self.vdd_scale,
            beta=model.beta,
            reference_frequency_hz=model.reference_frequency_hz * self.freq_scale,
        )

    def scale_core_type(self, core_type: CoreType) -> CoreType:
        """``core_type`` mapped to this node (the same object at the
        default node).  Cycle scale is microarchitectural, not
        process-bound, so it carries over unchanged."""
        if self.is_default:
            return core_type
        return CoreType(
            name=f"{core_type.name}@{self.name}",
            scaling_table=self.scale_table(core_type.scaling_table),
            spec=self.scale_spec(core_type.spec),
            cycle_scale=core_type.cycle_scale,
        )
