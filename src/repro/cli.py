"""Command-line interface: ``repro-seu``.

Subcommands
-----------
``experiment <id>``
    Run one paper artifact (fig3, table2, fig9, table3, fig10, fig11)
    and print its table + shape checks.
``optimize``
    Run the proposed soft error-aware optimization on the MPEG-2
    decoder or a random graph and print the chosen design.
``inject``
    Simulate a design and run a Monte-Carlo SEU injection campaign,
    comparing the measured count against the Eq. (3) expectation.
``runs``
    List the run-store manifests under a store directory: per-run
    status, cell completion counts, profile and fingerprint — the
    operational view of streamed/resumable experiment runs.
``serve``
    Run the HTTP job service: clients submit experiment or task-graph
    runs, poll progress, and fetch byte-identical reports; identical
    submissions are served from the store's result cache.

Every subcommand goes through :mod:`repro.api` — the one sanctioned
programmatic surface; the CLI adds argument parsing and printing only.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from dataclasses import replace
from typing import List, Optional

from repro.experiments.common import EXEC_PLANS, ExperimentProfile
from repro.experiments.runner import experiment_ids


def _add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.arch.platform import platform_names

    parser.add_argument(
        "--platform",
        choices=list(platform_names()),
        default=None,
        help=(
            "platform preset; 'arm7' (the default) is the paper's "
            "homogeneous platform, 'biglittle' alternates big/little "
            "core types (result-determining: part of the store "
            "fingerprint)"
        ),
    )
    parser.add_argument(
        "--tech-node",
        default=None,
        metavar="NODE",
        help=(
            "technology node spec like 45nm, 22nm or 16nm-cons "
            "(default: 45nm, the paper's reference node; "
            "result-determining: part of the store fingerprint)"
        ),
    )
    parser.add_argument(
        "--profile",
        choices=["smoke", "fast", "full"],
        default="fast",
        help=(
            "search budget preset: smoke (pipeline e2e tests), fast (CI) "
            "or full (paper scale) (default: fast)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="determinism seed")
    parser.add_argument(
        "--exec-plan",
        choices=list(EXEC_PLANS),
        default=None,
        help=(
            "execution plan: 'dag' (or dag:serial/dag:thread/dag:process/"
            "dag:auto to pin the transport) runs cells, annealing restarts "
            "and scaling sweeps on ONE shared work-stealing pool so idle "
            "workers steal inner work from any cell; 'percut' keeps the "
            "legacy per-cut backends below; reports are byte-identical "
            "either way (default: percut via the per-cut flags)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process", "auto"],
        default="serial",
        help=(
            "[deprecated: prefer --exec-plan dag] execution backend for the "
            "scaling sweeps; any choice selects the identical designs, "
            "parallel ones just run faster on multi-core machines "
            "(default: serial)"
        ),
    )
    parser.add_argument(
        "--experiment-backend",
        choices=["serial", "thread", "process", "auto"],
        default="serial",
        help=(
            "[deprecated: prefer --exec-plan dag] execution backend for "
            "fanning out whole experiment cells (table3's app x core-count "
            "grid, fig10's core-count pairs); reports stay byte-identical "
            "to serial runs (default: serial)"
        ),
    )
    parser.add_argument(
        "--restart-backend",
        choices=["serial", "thread", "process", "auto"],
        default="serial",
        help=(
            "[deprecated: prefer --exec-plan dag] execution backend for "
            "annealing restarts inside one scaling's mapping search; "
            "selections stay bit-identical (default: serial)"
        ),
    )
    parser.add_argument(
        "--restarts",
        type=int,
        default=None,
        help=(
            "annealing restart count per scaling (default: the mappers' "
            "size-derived choice)"
        ),
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help=(
            "pool size cap for parallel backends "
            "(default: the machine's CPU count)"
        ),
    )
    parser.add_argument(
        "--batch-eval",
        type=int,
        default=0,
        help=(
            "batched candidate screening chunk size for the mapping "
            "searchers (vectorized evaluate_batch); 1 is bit-identical "
            "to the serial walk, 0 disables (default: 0)"
        ),
    )
    parser.add_argument(
        "--screen-moves",
        choices=["off", "on", "auto"],
        default="off",
        help=(
            "incremental move screening in the searchers; 'auto' screens "
            "only on graphs with >= 100 tasks, where the preview cost "
            "pays for itself (default: off)"
        ),
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help=(
            "stream every experiment grid to this directory as cells "
            "complete (append-only records + manifest per run; crash-"
            "resilient; inspect with `repro-seu runs`)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "with --store-dir: skip cells already completed in the store "
            "(same profile required) and re-dispatch only missing/failed "
            "ones; the resumed report is byte-identical to an "
            "uninterrupted run"
        ),
    )


def _profile_from(args: argparse.Namespace) -> ExperimentProfile:
    if args.profile == "full":
        profile = ExperimentProfile.full(seed=args.seed)
    elif args.profile == "smoke":
        profile = ExperimentProfile.smoke(seed=args.seed)
    else:
        profile = ExperimentProfile.fast(seed=args.seed)
    platform = getattr(args, "platform", None)
    tech_node = getattr(args, "tech_node", None)
    if platform is not None or tech_node is not None:
        try:
            profile = profile.with_platform(platform=platform, tech_node=tech_node)
        except ValueError as exc:
            raise SystemExit(f"repro-seu: error: {exc}")
    backend = getattr(args, "backend", "serial")
    experiment_backend = getattr(args, "experiment_backend", "serial")
    restart_backend = getattr(args, "restart_backend", "serial")
    exec_plan = getattr(args, "exec_plan", None)
    if (
        exec_plan is not None
        and exec_plan.startswith("dag")
        and (backend, experiment_backend, restart_backend) != ("serial",) * 3
    ):
        # Fail fast here with flag names (the profile validator would
        # catch it too, but speaks in field names).
        raise SystemExit(
            "repro-seu: error: --exec-plan dag* conflicts with the "
            "deprecated per-cut flags (--backend/--experiment-backend/"
            "--restart-backend); the unified executor owns all parallel "
            "cuts — drop the per-cut flags or use --exec-plan percut"
        )
    used = [
        flag
        for flag, value in (
            ("--backend", backend),
            ("--experiment-backend", experiment_backend),
            ("--restart-backend", restart_backend),
        )
        if value != "serial"
    ]
    if used:
        warnings.warn(
            f"{'/'.join(used)} select per-cut pools, which are deprecated; "
            "use --exec-plan dag (one shared work-stealing pool, "
            "byte-identical reports)",
            DeprecationWarning,
            stacklevel=2,
        )
    with warnings.catch_warnings():
        if used:
            # Every profile copy below re-warns about the same knobs in
            # field-name terms; the flag-name warning above is the one
            # CLI-facing warning.
            warnings.simplefilter("ignore", DeprecationWarning)
        if used:
            profile = profile.with_backend(
                exec_backend=backend,
                experiment_backend=experiment_backend,
                restart_backend=restart_backend,
            )
        if exec_plan is not None:
            profile = profile.with_exec_plan(exec_plan)
        restarts = getattr(args, "restarts", None)
        if restarts is not None:
            profile = replace(profile, sa_restarts=restarts)
        max_workers = getattr(args, "max_workers", None)
        if max_workers is not None:
            profile = profile.with_max_workers(max_workers)
        batch_eval = getattr(args, "batch_eval", 0)
        screen_moves = getattr(args, "screen_moves", "off")
        if batch_eval < 0:
            raise SystemExit(
                "repro-seu: error: --batch-eval must be non-negative"
            )
        if batch_eval and screen_moves != "off":
            # Fail fast and unconditionally: with "auto" the conflict
            # would otherwise only surface on the first >=100-task
            # graph, aborting a mixed-size sweep partway through.
            raise SystemExit(
                "repro-seu: error: --batch-eval and --screen-moves are "
                "mutually exclusive"
            )
        if batch_eval:
            profile = replace(profile, batch_eval=batch_eval)
        if screen_moves != "off":
            profile = replace(
                profile, screen_moves=True if screen_moves == "on" else "auto"
            )
        store_dir = getattr(args, "store_dir", None)
        resume = getattr(args, "resume", False)
        if resume and store_dir is None:
            raise SystemExit("repro-seu: error: --resume requires --store-dir")
        if store_dir is not None:
            profile = profile.with_store(store_dir, resume=resume)
    return profile


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro import api

    profile = _profile_from(args)
    # The facade owns the executor scope for the whole run; stats go to
    # stderr — stdout stays exactly the report, which CI diffs.
    outcome = api.execute_run(args.id, profile, source=args.id)
    print(outcome.report)
    stats = outcome.executor_stats
    if stats is not None:
        print(f"[executor] {stats.summary()}", file=sys.stderr)
        for worker, count in sorted(stats.per_worker.items()):
            print(f"[executor]   {worker}: {count} task(s)", file=sys.stderr)
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro import quick_optimize
    from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder
    from repro.taskgraph.random_graphs import RandomGraphConfig, random_task_graph
    from repro.taskgraph.workloads import WORKLOADS

    if args.app == "mpeg2":
        graph, deadline = mpeg2_decoder(), MPEG2_DEADLINE_S
    elif args.app in WORKLOADS:
        factory, deadline = WORKLOADS[args.app]
        graph = factory()
    else:
        config = RandomGraphConfig(num_tasks=args.tasks)
        graph = random_task_graph(config, seed=args.seed)
        deadline = config.deadline_s
    outcome = quick_optimize(
        graph,
        num_cores=args.cores,
        deadline_s=deadline,
        num_scaling_levels=args.levels,
        search_iterations=args.iterations,
        seed=args.seed,
    )
    if outcome.best is None:
        print("no feasible design found", file=sys.stderr)
        return 1
    best = outcome.best
    print(f"application: {graph.name} ({graph.num_tasks} tasks)")
    print(f"deadline:    {deadline * 1e3:.1f} ms")
    print(f"design:      {best.summary()}")
    for core, tasks in enumerate(best.mapping.core_groups()):
        level = best.scaling[core]
        print(f"  core {core + 1} (s={level}): {', '.join(tasks) if tasks else '-'}")
    print(f"assessed {len(outcome.assessments)} scaling combinations, "
          f"{outcome.evaluations} design-point evaluations")
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    from repro.arch import MPSoC
    from repro.faults import FaultInjector
    from repro.mapping import Mapping
    from repro.sim import MPSoCSimulator
    from repro.taskgraph.mpeg2 import mpeg2_decoder

    graph = mpeg2_decoder()
    platform = MPSoC.paper_reference(args.cores)
    scaling = tuple(int(s) for s in args.scaling.split(",")) if args.scaling else None
    simulator = MPSoCSimulator(graph, platform, scaling=scaling)
    mapping = Mapping.round_robin(graph, args.cores)
    result = simulator.run(mapping)
    voltages = [
        table.vdd_v(coefficient)
        for table, coefficient in zip(platform.core_tables, simulator.scaling)
    ]
    injector = FaultInjector(seed=args.seed)
    campaign = injector.inject(result, voltages, runs=args.runs)
    print(f"makespan:        {result.makespan_s * 1e3:.1f} ms")
    print(f"expected SEUs:   {campaign.expected_seus / args.runs:.2f} per run")
    print(f"injected SEUs:   {campaign.mean_seus_per_run:.2f} per run "
          f"({args.runs} runs)")
    for core, count in campaign.per_core_seus.items():
        print(f"  core {core + 1}: {count} SEUs total")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro import api

    root = Path(args.store_dir)
    if not root.exists():
        print(f"no such store directory: {root}", file=sys.stderr)
        return 1
    if args.compact:
        from repro.store import compact_store

        results = compact_store(root)
        changed = [result for result in results if result.changed]
        dropped = sum(result.dropped for result in changed)
        print(
            f"compacted {len(changed)}/{len(results)} records file(s), "
            f"dropped {dropped} superseded line(s)",
            file=sys.stderr,
        )
    if args.rebuild_index:
        count = api.rebuild_index(root)
        print(f"rebuilt index: {count} run(s)", file=sys.stderr)
    statuses = api.list_runs(root, tenant=args.tenant, use_index=not args.no_index)
    if args.run is not None:
        statuses = [
            status
            for status in statuses
            if status.label == args.run or status.run_id == args.run
        ]
        if not statuses:
            print(f"no run {args.run!r} under {root}", file=sys.stderr)
            return 1
    if args.json:
        document = [status.to_dict() for status in statuses]
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    if not statuses:
        print(f"no run manifests under {root}")
        return 0
    print(api.format_runs_table(statuses))
    if args.run is not None:
        from repro.exec.dag import ExecutorStats

        status = statuses[0]
        if status.executor:
            print()
            print(
                f"executor: {ExecutorStats.from_dict(status.executor).summary()}"
            )
            per_worker = status.executor.get("per_worker", {})
            for worker, count in sorted(per_worker.items()):
                print(f"  {worker}: {count} task(s)")
        if args.cells:
            print()
            for key in status.cells:
                print(f"  [{status.cell_status.get(key, '?'):>7}] {key}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.http import serve

    return serve(
        args.store_dir,
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        queue_size=args.queue_size,
        transport=args.transport,
        default_exec_plan=args.exec_plan,
        resume_orphans=args.resume_orphans,
        retry_after_s=args.retry_after,
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-seu`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-seu",
        description="Soft error-aware MPSoC design optimization (DATE 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiment = subparsers.add_parser(
        "experiment", help="run one paper table/figure"
    )
    experiment.add_argument("id", choices=list(experiment_ids()))
    _add_profile_arguments(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    optimize = subparsers.add_parser("optimize", help="optimize one application")
    optimize.add_argument(
        "--app",
        choices=["mpeg2", "random", "jpeg", "fft8", "cruise-control"],
        default="mpeg2",
    )
    optimize.add_argument("--tasks", type=int, default=20, help="random graph size")
    optimize.add_argument("--cores", type=int, default=4)
    optimize.add_argument("--levels", type=int, default=3, choices=[2, 3, 4])
    optimize.add_argument("--iterations", type=int, default=800)
    optimize.add_argument("--seed", type=int, default=0)
    optimize.set_defaults(func=_cmd_optimize)

    inject = subparsers.add_parser("inject", help="Monte-Carlo SEU injection demo")
    inject.add_argument("--cores", type=int, default=4)
    inject.add_argument("--scaling", type=str, default="",
                        help="comma-separated per-core coefficients, e.g. 2,2,3,2")
    inject.add_argument("--runs", type=int, default=20)
    inject.add_argument("--seed", type=int, default=0)
    inject.set_defaults(func=_cmd_inject)

    runs = subparsers.add_parser(
        "runs", help="list run-store manifests (status, completion, fingerprint)"
    )
    runs.add_argument(
        "--store-dir",
        required=True,
        help="store directory previous runs streamed into",
    )
    runs.add_argument(
        "--run",
        default=None,
        help="show only this run label (e.g. table3, all)",
    )
    runs.add_argument(
        "--cells",
        action="store_true",
        help="with --run: also print per-cell statuses in grid order",
    )
    runs.add_argument(
        "--json",
        action="store_true",
        help="emit the run statuses as JSON (the service's status shape)",
    )
    runs.add_argument(
        "--tenant",
        default=None,
        help="only runs carrying this tenant label (service stores)",
    )
    runs.add_argument(
        "--no-index",
        action="store_true",
        help=(
            "bypass the SQLite sidecar index and walk records/manifests "
            "directly (the index is a pure cache; listings are identical)"
        ),
    )
    runs.add_argument(
        "--rebuild-index",
        action="store_true",
        help=(
            "rebuild the sidecar index from records + manifests before "
            "listing (safe any time: records are the only authority)"
        ),
    )
    runs.add_argument(
        "--compact",
        action="store_true",
        help=(
            "rewrite torn/duplicate records.jsonl tails before listing "
            "(only run against quiescent stores)"
        ),
    )
    runs.set_defaults(func=_cmd_runs)

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP job service (submit/poll/fetch, cached dedup)",
    )
    serve.add_argument(
        "--store-dir",
        required=True,
        help="service store root; runs live under <store-dir>/runs/<id>",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8321, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=2,
        help="runs executing at once; beyond this, submissions queue",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="queued-run backstop; a full queue refuses with HTTP 503",
    )
    serve.add_argument(
        "--transport",
        choices=["serial", "thread", "process", "auto"],
        default="thread",
        help="the shared executor's transport (default: thread)",
    )
    serve.add_argument(
        "--exec-plan",
        choices=list(EXEC_PLANS),
        default="dag",
        help=(
            "execution plan applied to submissions that do not pin one; "
            "an execution knob only — never part of run identity "
            "(default: dag)"
        ),
    )
    serve.add_argument(
        "--no-resume-orphans",
        dest="resume_orphans",
        action="store_false",
        default=True,
        help=(
            "do not re-attach queued/running runs a dead server left "
            "behind (default: adopt and finish them via store resume)"
        ),
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        help=(
            "backoff hint (seconds) sent with 503 queue-full responses "
            "as the Retry-After header (default: 1.0)"
        ),
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    # Python hides DeprecationWarning outside __main__ by default; the
    # per-cut flag deprecations must reach CLI users' stderr.
    warnings.filterwarnings("default", category=DeprecationWarning)
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
