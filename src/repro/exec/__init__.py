"""Parallel execution substrate for design-space sweeps.

See :mod:`repro.exec.backends` for the per-cut backend
implementations and the determinism contract, and
:mod:`repro.exec.dag` for the unified work-stealing DAG executor that
flattens experiment cells, annealing restarts and scaling assessments
into one shared worker pool.
:meth:`repro.optim.design_optimizer.DesignOptimizer.optimize` is the
canonical consumer: independent work items are assessed concurrently
with the same per-item seeds as the serial loop, and the serial
selection/early-exit policies are replayed over the ordered results,
so serial and parallel sweeps select the identical design.
"""

from repro.exec.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    payload_picklable,
    resolve_backend,
)
from repro.exec.dag import (
    TRANSPORT_NAMES,
    DagExecutor,
    ExecutorStats,
    PoolTransport,
    SerialTransport,
    SharedExecutorBackend,
    Transport,
    ambient_backend,
    current_executor,
    executor_scope,
    resolve_transport,
)
from repro.exec.resilience import (
    CHAOS_ENV,
    FaultInjectingTransport,
    FaultPlan,
    InjectedTransientError,
    InjectedWorkerCrash,
    LeafTimeoutError,
    RetryPolicy,
    TransientWorkerError,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "payload_picklable",
    "resolve_backend",
    "TRANSPORT_NAMES",
    "DagExecutor",
    "ExecutorStats",
    "PoolTransport",
    "SerialTransport",
    "SharedExecutorBackend",
    "Transport",
    "ambient_backend",
    "current_executor",
    "executor_scope",
    "resolve_transport",
    "CHAOS_ENV",
    "FaultInjectingTransport",
    "FaultPlan",
    "InjectedTransientError",
    "InjectedWorkerCrash",
    "LeafTimeoutError",
    "RetryPolicy",
    "TransientWorkerError",
]
