"""Parallel execution substrate for design-space sweeps.

See :mod:`repro.exec.backends` for the backend implementations and
the determinism contract, and
:meth:`repro.optim.design_optimizer.DesignOptimizer.optimize` for the
consumer: independent scaling combinations are assessed concurrently
with the same per-scaling seeds as the serial loop, and the serial
early-exit policy is replayed over the ordered results, so serial and
parallel sweeps select the identical design.
"""

from repro.exec.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    payload_picklable,
    resolve_backend,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "payload_picklable",
    "resolve_backend",
]
