"""Execution backends: serial, thread-pool and process-pool map.

The design-space sweeps are embarrassingly parallel — every scaling
combination is assessed with its own deterministic seed and a private
evaluator, so no state is shared between work items.  An
:class:`ExecutionBackend` abstracts *where* those items run:

* :class:`SerialBackend` — in-process loop, zero overhead, the
  reference behaviour;
* :class:`ThreadBackend` — ``ThreadPoolExecutor``; useful when the
  work releases the GIL (or simply to exercise the concurrent code
  path deterministically on any machine);
* :class:`ProcessBackend` — ``ProcessPoolExecutor``; real CPU
  parallelism for the pure-Python search loops.  Work items and their
  results must be picklable.

``resolve_backend`` turns a user-facing spec (``None`` /
``"serial"`` / ``"thread"`` / ``"process"`` / ``"auto"`` / an
instance) into a backend.  ``"auto"`` prefers processes when the
machine has more than one CPU and the payload probe pickles, and
degrades to serial otherwise — on single-core boxes worker processes
only add overhead, and for unpicklable (GIL-bound, pure-Python)
payloads a thread pool would too.  ``"dag"`` resolves to the shared
:class:`~repro.exec.dag.DagExecutor` of the active
``executor_scope`` (serial outside one) — see :mod:`repro.exec.dag`
for the unified work-stealing executor.

Determinism contract
--------------------
``map`` always returns results in item order, whatever completion
order the pool produced.  Combined with per-item seeds and
evaluation being a pure function of ``(graph, platform, mapper,
scaling, seed)``, a parallel sweep returns exactly the
assessment list a serial sweep would (see
``DesignOptimizer.optimize``), so serial and parallel runs select the
identical design.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
    wait,
)
from typing import Any, Callable, List, Optional, Sequence, Union

BackendSpec = Union[None, str, "ExecutionBackend"]

BACKEND_NAMES = ("serial", "thread", "process", "auto", "dag")


class ExecutionBackend(ABC):
    """Maps a function over items, returning results in item order."""

    name: str = "abstract"

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item; results keep item order."""

    def map_stream(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        callback: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Like :meth:`map`, but reports results as they land.

        ``callback(index, result)`` fires once per item in *completion*
        order — the streaming hook the run store uses to persist each
        experiment cell the moment it finishes instead of after the
        whole grid.  The returned list still keeps item order, so
        ``map_stream(fn, items)`` with no callback is exactly ``map``.
        Callbacks run in the caller's process/thread, never in workers.

        This base implementation degrades to gather-then-notify for
        backends that do not override it.
        """
        results = self.map(fn, items)
        if callback is not None:
            for index, result in enumerate(results):
                callback(index, result)
        return results

    def close(self) -> None:
        """Release pool resources (no-op for poolless backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution — the reference backend."""

    name = "serial"

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return [fn(item) for item in items]

    def map_stream(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        callback: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        results: List[Any] = []
        for index, item in enumerate(items):
            result = fn(item)
            if callback is not None:
                callback(index, result)
            results.append(result)
        return results


class _PoolBackend(ExecutionBackend):
    """Shared plumbing for executor-based backends."""

    _executor_cls = None  # set by subclasses

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self._executor = None

    def _pool(self):
        if self._executor is None:
            # Sized from the machine (or the explicit cap), never from
            # a batch: the pool persists across map() calls, and a
            # small first batch must not throttle later large ones.
            workers = self.max_workers or max(os.cpu_count() or 1, 1)
            self._executor = self._executor_cls(max_workers=workers)
        return self._executor

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        items = list(items)
        if not items:
            return []
        if len(items) == 1:  # skip pool overhead for trivial batches
            return [fn(items[0])]
        return list(self._pool().map(fn, items))

    def map_stream(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        callback: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        items = list(items)
        if not items:
            return []
        if len(items) == 1:
            result = fn(items[0])
            if callback is not None:
                callback(0, result)
            return [result]
        results: List[Any] = [None] * len(items)
        remaining = list(range(len(items)))
        # One rebuild-and-resubmit pass: a dead worker breaks the whole
        # pool (every in-flight future fails with BrokenProcessPool),
        # but the items are pure, so re-running the incomplete ones on
        # a fresh pool reproduces the lost results exactly.  A second
        # breakage propagates — something is systematically wrong.
        for attempt in (0, 1):
            futures = {
                self._pool().submit(fn, items[index]): index
                for index in remaining
            }
            try:
                for future in as_completed(futures):
                    index = futures[future]
                    results[index] = future.result()
                    remaining.remove(index)
                    if callback is not None:
                        callback(index, results[index])
            except BrokenExecutor:
                if attempt:
                    raise
                self._executor.shutdown(wait=False)
                self._executor = None
                continue
            except BaseException:
                # A mid-stream failure (a raising callback, a worker
                # exception) must not leak in-flight work: cancel every
                # outstanding future and drain the ones already running
                # before re-raising, so the pool is quiescent — and
                # close() returns promptly — whatever the caller does next.
                for future in futures:
                    future.cancel()
                wait(list(futures))
                raise
            return results
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ThreadBackend(_PoolBackend):
    """``ThreadPoolExecutor``-backed map (GIL-bound for pure Python)."""

    name = "thread"
    _executor_cls = ThreadPoolExecutor


class ProcessBackend(_PoolBackend):
    """``ProcessPoolExecutor``-backed map; items must be picklable."""

    name = "process"
    _executor_cls = ProcessPoolExecutor


def payload_picklable(probe: Any) -> bool:
    """Whether ``probe`` round-trips through pickle (process backend food)."""
    try:
        pickle.dumps(probe)
    except Exception:
        return False
    return True


def resolve_backend(
    spec: BackendSpec,
    task_count: Optional[int] = None,
    payload_probe: Any = None,
    max_workers: Optional[int] = None,
    probe_factory: Optional[Callable[[], Any]] = None,
) -> ExecutionBackend:
    """Turn a backend spec into a backend instance.

    Parameters
    ----------
    spec:
        ``None`` or ``"serial"`` for the in-process loop, ``"thread"``
        / ``"process"`` for explicit pools, ``"auto"`` to pick, or an
        :class:`ExecutionBackend` instance passed through unchanged.
    task_count:
        Expected number of work items; ``auto`` stays serial for 0/1.
    payload_probe:
        A representative work item; ``auto`` only chooses processes
        when it pickles.
    max_workers:
        Pool size cap for pooled backends.
    probe_factory:
        Lazy alternative to ``payload_probe``: a zero-argument callable
        producing the probe, invoked only if the ``auto`` branch
        actually needs one.  Callers whose probes are expensive to
        build (e.g. a full worker job) should prefer this so serial
        and explicit specs pay nothing.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        return SerialBackend()
    if not isinstance(spec, str):
        raise TypeError(f"backend spec must be a string or backend, got {spec!r}")
    name = spec.lower()
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {spec!r}; choose from {BACKEND_NAMES}")
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(max_workers=max_workers)
    if name == "process":
        return ProcessBackend(max_workers=max_workers)
    if name == "dag":
        # The shared DAG executor of the current executor_scope, or a
        # serial fallback outside any scope — profiles wired for the
        # unified executor degrade gracefully when nothing opened one.
        from repro.exec.dag import ambient_backend

        return ambient_backend()
    # auto
    cpus = os.cpu_count() or 1
    if cpus <= 1 or (task_count is not None and task_count <= 1):
        return SerialBackend()
    if payload_probe is None and probe_factory is not None:
        payload_probe = probe_factory()
    if payload_probe is not None and not payload_picklable(payload_probe):
        # The work is pure Python (GIL-bound), so threads would add
        # dispatch overhead without parallelism — stay serial.
        return SerialBackend()
    return ProcessBackend(max_workers=max_workers)
