"""Unified work-stealing DAG executor: one pool for all parallel cuts.

The experiment layer is parallel at three nesting levels — experiment
cells, annealing restarts inside a cell's mapping search, and scaling
assessments inside a cell's sweep — but the per-cut backends of
:mod:`repro.exec.backends` are all-or-nothing: a cell dispatched to a
pool forces its inner cuts serial (``worker_profile``) to avoid nested
pools, so a small grid on a big machine leaves most cores idle.

This module flattens the task DAG instead.  Cell *orchestration* (the
cheap coordination code: building jobs, replaying rankings and
early-exit policies) runs on lightweight coordinator threads, while
every *leaf* task — an annealing restart or a scaling assessment — is
submitted to one shared :class:`DagExecutor`.  The executor's single
ready-queue is shared by all cells, so an idle worker picks up inner
work from whichever cell still has tasks in flight: work stealing
without a scheduler, just one queue.

Determinism contract
--------------------
The house invariant survives unchanged because the executor never
*decides* anything:

* every leaf task carries the same per-item seed the serial code path
  would use, and rebuilds private state (evaluators) in the worker;
* :meth:`DagExecutor.map` returns results in submission order whatever
  the completion order (stable task ids = list indices per batch);
* best-of selection and early-exit policies are replayed by the
  *callers* over those ordered results — the same replay the per-cut
  backends already use.

So a DAG-executed grid reassembles bit-identical reports to a serial
run; only wall-clock and the operational :class:`ExecutorStats`
change.

Transports
----------
Where leaves physically run is pluggable behind :class:`Transport`, a
two-method interface (``submit(fn, *args) -> Future`` + ``close()``).
:class:`SerialTransport` runs inline (the reference), and
:class:`PoolTransport` wraps the in-process thread/process pools.  A
socket or queue transport only has to return objects honouring the
``concurrent.futures.Future`` result/cancel protocol — no caller
changes required.

Ambient wiring
--------------
Inner code (``DesignOptimizer``, ``SimulatedAnnealingMapper``) reaches
the shared executor through the ``"dag"`` backend spec:
``resolve_backend("dag")`` returns a :class:`SharedExecutorBackend`
bound to the executor of the current :func:`executor_scope`, or a
plain :class:`~repro.exec.backends.SerialBackend` when no scope is
active — profiles mentioning ``"dag"`` degrade gracefully to serial
outside an executor.  Scopes are thread-local, so each cell
orchestration thread tags its submissions with its own source label
(that is what the steal counter measures).
"""

from __future__ import annotations

import os
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.exec.backends import (
    ExecutionBackend,
    SerialBackend,
    payload_picklable,
)

TRANSPORT_NAMES = ("serial", "thread", "process", "auto")

#: Thread-local state of the *worker* executing leaves: remembers the
#: last source label so a worker can report, accurately and without
#: coordinator-side guessing, that it just switched cells (= a steal).
_WORKER_STATE = threading.local()


def _dag_leaf(source: str, fn: Callable[[Any], Any], item: Any):
    """Instrumented leaf trampoline (module-level: process pools pickle it).

    Returns ``(worker tag, stolen, fn(item))`` where ``stolen`` flags
    that this worker's previous leaf came from a different source
    (another cell) — the work-stealing observability hook.
    """
    thread = threading.current_thread()
    tag = f"pid{os.getpid()}:{thread.name}"
    previous = getattr(_WORKER_STATE, "source", None)
    _WORKER_STATE.source = source
    stolen = previous is not None and previous != source
    return tag, stolen, fn(item)


# ---------------------------------------------------------------------------
# Transports: where leaf tasks physically run.
# ---------------------------------------------------------------------------


class Transport(ABC):
    """Pluggable submission boundary for leaf tasks.

    ``submit`` enqueues one call and returns a
    :class:`concurrent.futures.Future`-compatible handle; that is the
    whole interface, so an out-of-process transport (socket, queue)
    can replace the in-process pools without touching any caller.
    """

    name: str = "abstract"

    @abstractmethod
    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Enqueue ``fn(*args)``; the returned future resolves to its result."""

    def close(self) -> None:
        """Release transport resources (no-op for poolless transports)."""

    def recover(self, exc: BaseException) -> bool:
        """Attempt to heal the transport after a worker-loss failure.

        Called by the executor before retrying a leaf whose failure
        was retryable.  Returns ``True`` when something was actually
        rebuilt (surfaced as ``worker_restarts`` in the stats).  The
        base implementation has nothing to heal.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialTransport(Transport):
    """Inline execution in the submitting thread — the reference transport."""

    name = "serial"

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: B036 - mirrored into the future
            future.set_exception(exc)
        return future


class PoolTransport(Transport):
    """In-process pool transport over the stdlib executors.

    ``kind`` is ``"thread"`` or ``"process"``.  The pool is created
    lazily and sized from the machine (or the explicit cap) — it is
    shared by *every* cell of a DAG run, which is the whole point:
    one queue, all workers, any cell's leaves.
    """

    _EXECUTORS = {"thread": ThreadPoolExecutor, "process": ProcessPoolExecutor}

    def __init__(self, kind: str, max_workers: Optional[int] = None) -> None:
        if kind not in self._EXECUTORS:
            raise ValueError(f"unknown pool transport {kind!r}; choose thread/process")
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.name = kind
        self.max_workers = max_workers
        self._executor = None
        self._lock = threading.Lock()

    def workers(self) -> int:
        """The pool size this transport runs (or would run) with."""
        return self.max_workers or max(os.cpu_count() or 1, 1)

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        for retry in (False, True):
            with self._lock:
                if self._executor is None:
                    self._executor = self._EXECUTORS[self.name](
                        max_workers=self.workers()
                    )
                executor = self._executor
            try:
                return executor.submit(fn, *args)
            except BrokenExecutor:
                # A worker died while the pool was idle enough that the
                # breakage surfaces at submit time: discard the carcass
                # and resubmit on a fresh pool (once).
                if retry:
                    raise
                self._discard(executor)
        raise AssertionError("unreachable")  # pragma: no cover

    def _discard(self, executor) -> None:
        """Drop ``executor`` so the next submit builds a fresh pool."""
        with self._lock:
            if self._executor is executor:
                self._executor = None
        executor.shutdown(wait=False)

    def recover(self, exc: BaseException) -> bool:
        """Rebuild the pool when a dead worker broke it.

        ``ProcessPoolExecutor`` marks itself broken when a worker dies;
        every in-flight future fails with ``BrokenProcessPool`` and no
        new work is accepted.  Discarding the broken pool here lets the
        executor resubmit the lost leaves on a fresh one.
        """
        with self._lock:
            executor = self._executor
        if executor is None or not getattr(executor, "_broken", False):
            return False
        self._discard(executor)
        return True

    def close(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


def resolve_transport(
    spec: Optional[str],
    max_workers: Optional[int] = None,
    payload_probe: Any = None,
) -> Transport:
    """Turn a transport spec into a transport instance.

    ``"auto"`` (and ``None``) prefers processes when the machine has
    more than one CPU and the probe (when given) pickles, degrading to
    inline execution otherwise — the same policy ``resolve_backend``
    applies to its ``"auto"`` spec.
    """
    name = (spec or "auto").lower()
    if name not in TRANSPORT_NAMES:
        raise ValueError(
            f"unknown transport {spec!r}; choose from {TRANSPORT_NAMES}"
        )
    if name == "serial":
        return SerialTransport()
    if name in ("thread", "process"):
        return PoolTransport(name, max_workers=max_workers)
    cpus = os.cpu_count() or 1
    if cpus <= 1:
        return SerialTransport()
    if payload_probe is not None and not payload_picklable(payload_probe):
        return SerialTransport()
    return PoolTransport("process", max_workers=max_workers)


# ---------------------------------------------------------------------------
# Executor statistics: the observable side of work stealing.
# ---------------------------------------------------------------------------


@dataclass
class ExecutorStats:
    """Utilization counters of one :class:`DagExecutor`.

    Operational data only — deliberately *not* part of any report body
    covered by the byte-identical determinism contract (worker tags
    and steal counts vary run to run by construction).
    """

    submitted: int = 0  # leaf tasks handed to the transport (incl. retries)
    tasks: int = 0  # leaf tasks completed successfully
    steals: int = 0  # completions where the worker switched source
    queue_high_water: int = 0  # max leaves in flight at once
    retries: int = 0  # leaf attempts re-submitted after a retryable failure
    worker_restarts: int = 0  # transport rebuilds after worker death
    per_worker: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "ExecutorStats":
        return ExecutorStats(
            submitted=self.submitted,
            tasks=self.tasks,
            steals=self.steals,
            queue_high_water=self.queue_high_water,
            retries=self.retries,
            worker_restarts=self.worker_restarts,
            per_worker=dict(self.per_worker),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view (what the run-store manifest records)."""
        return {
            "submitted": self.submitted,
            "tasks": self.tasks,
            "steals": self.steals,
            "queue_high_water": self.queue_high_water,
            "retries": self.retries,
            "worker_restarts": self.worker_restarts,
            "workers": len(self.per_worker),
            "per_worker": {
                tag: self.per_worker[tag] for tag in sorted(self.per_worker)
            },
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ExecutorStats":
        return cls(
            submitted=int(raw.get("submitted", 0)),
            tasks=int(raw.get("tasks", 0)),
            steals=int(raw.get("steals", 0)),
            queue_high_water=int(raw.get("queue_high_water", 0)),
            retries=int(raw.get("retries", 0)),
            worker_restarts=int(raw.get("worker_restarts", 0)),
            per_worker={
                str(tag): int(count)
                for tag, count in dict(raw.get("per_worker", {})).items()
            },
        )

    def summary(self) -> str:
        """One-line human summary for CLI surfaces."""
        workers = len(self.per_worker)
        if workers:
            counts = sorted(self.per_worker.values())
            spread = f"{counts[0]}-{counts[-1]} tasks/worker"
        else:
            spread = "no tasks"
        line = (
            f"{self.tasks} tasks over {workers} worker(s) ({spread}), "
            f"{self.steals} steals, queue high-water {self.queue_high_water}"
        )
        if self.retries or self.worker_restarts:
            line += (
                f", {self.retries} retries,"
                f" {self.worker_restarts} worker restart(s)"
            )
        return line


# ---------------------------------------------------------------------------
# The executor.
# ---------------------------------------------------------------------------


class DagExecutor:
    """One shared worker pool for a whole task DAG.

    Thread-safe: any number of cell orchestration threads may call
    :meth:`map` / :meth:`map_stream` concurrently; all their leaves
    funnel into the transport's single queue.  Each call reassembles
    its own batch in submission order — stable ids are just the batch
    indices, so callers replay serial policies over ordered results
    exactly as they do on the per-cut backends.
    """

    def __init__(
        self,
        transport: Transport,
        retry_policy: Optional["RetryPolicy"] = None,
    ) -> None:
        if retry_policy is None:
            from repro.exec.resilience import RetryPolicy

            retry_policy = RetryPolicy()
        self.transport = transport
        self.retry_policy = retry_policy
        self._lock = threading.Lock()
        self._stats = ExecutorStats()
        self._pending = 0

    @classmethod
    def from_spec(
        cls,
        spec: Optional[str] = None,
        max_workers: Optional[int] = None,
        payload_probe: Any = None,
        retry_policy: Optional["RetryPolicy"] = None,
    ) -> "DagExecutor":
        """An executor over :func:`resolve_transport`'s choice for ``spec``.

        When ``REPRO_CHAOS`` is set in the environment the transport is
        wrapped in a :class:`~repro.exec.resilience.FaultInjectingTransport`
        so chaos runs need no code changes anywhere above this call.
        """
        from repro.exec.resilience import FaultInjectingTransport, FaultPlan

        transport = resolve_transport(spec, max_workers, payload_probe)
        plan = FaultPlan.from_env()
        if plan is not None:
            transport = FaultInjectingTransport(transport, plan)
        return cls(transport, retry_policy=retry_policy)

    @property
    def stats(self) -> ExecutorStats:
        with self._lock:
            return self._stats.snapshot()

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        source: Optional[str] = None,
    ) -> List[Any]:
        """Submit one batch of leaves; return results in item order."""
        return self.map_stream(fn, items, callback=None, source=source)

    def map_stream(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        callback: Optional[Callable[[int, Any], None]] = None,
        source: Optional[str] = None,
    ) -> List[Any]:
        """:meth:`map` with a completion-order callback (see backends).

        ``callback(index, result)`` runs in the submitting thread.  If
        the callback or a leaf raises, outstanding leaves of *this
        batch* are cancelled and in-flight ones drained before the
        exception propagates — no work leaks past the call.

        Worker-loss failures (a dead pool worker, an injected chaos
        crash, a leaf deadline) are *retried* under the executor's
        :class:`~repro.exec.resilience.RetryPolicy` instead of
        propagating: the transport is given a chance to heal
        (:meth:`Transport.recover`), the backoff delay elapses, and the
        same item is resubmitted.  Leaves are pure, so a retried leaf
        reproduces the lost result exactly and the batch stays
        byte-identical; only ``retries`` / ``worker_restarts`` in the
        stats record that anything happened.  Exceptions raised *by the
        leaf function* are not retryable and propagate immediately.
        """
        items = list(items)
        if not items:
            return []
        label = source or current_source() or "tasks"
        policy = self.retry_policy
        with self._lock:
            self._pending += len(items)
            self._stats.submitted += len(items)
            if self._pending > self._stats.queue_high_water:
                self._stats.queue_high_water = self._pending
        active: Dict[Future, int] = {}
        deadlines: Dict[Future, float] = {}
        failures = [0] * len(items)

        def _submit(index: int) -> None:
            future = self.transport.submit(_dag_leaf, label, fn, items[index])
            active[future] = index
            if policy.leaf_timeout_s is not None:
                deadlines[future] = time.monotonic() + policy.leaf_timeout_s

        def _handle_failure(index: int, exc: BaseException) -> None:
            """Resubmit ``index`` after a retryable failure, or raise."""
            failures[index] += 1
            if not policy.retryable(exc) or failures[index] >= policy.max_attempts:
                raise exc
            if self.transport.recover(exc):
                with self._lock:
                    self._stats.worker_restarts += 1
            with self._lock:
                self._stats.retries += 1
                self._stats.submitted += 1
            delay = policy.delay_s(failures[index], key=f"{label}:{index}")
            if delay:
                time.sleep(delay)
            _submit(index)

        for index in range(len(items)):
            _submit(index)
        results: List[Any] = [None] * len(items)
        completed = 0
        try:
            while active:
                timeout = None
                if deadlines:
                    timeout = max(
                        0.0, min(deadlines.values()) - time.monotonic()
                    )
                done, _ = wait(
                    list(active), timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index = active.pop(future)
                    deadlines.pop(future, None)
                    try:
                        tag, stolen, value = future.result()
                    except BaseException as exc:  # noqa: B036 - classified below
                        _handle_failure(index, exc)
                        continue
                    completed += 1
                    with self._lock:
                        self._pending -= 1
                        self._stats.tasks += 1
                        self._stats.per_worker[tag] = (
                            self._stats.per_worker.get(tag, 0) + 1
                        )
                        if stolen:
                            self._stats.steals += 1
                    results[index] = value
                    if callback is not None:
                        callback(index, value)
                if deadlines:
                    # A leaf past its deadline is treated as lost: drop
                    # the straggler future (its late result is ignored —
                    # leaves are pure, the retry reproduces it) and
                    # resubmit under the retry policy.
                    from repro.exec.resilience import LeafTimeoutError

                    now = time.monotonic()
                    expired = [
                        future
                        for future, deadline in deadlines.items()
                        if deadline <= now and future in active
                    ]
                    for future in expired:
                        index = active.pop(future)
                        deadlines.pop(future, None)
                        future.cancel()
                        _handle_failure(
                            index,
                            LeafTimeoutError(
                                f"leaf {label}:{index} exceeded "
                                f"{policy.leaf_timeout_s}s deadline"
                            ),
                        )
        except BaseException:
            for future in active:
                future.cancel()
            wait(list(active))
            with self._lock:
                self._pending -= len(items) - completed
            raise
        return results

    def close(self) -> None:
        """Shut the transport down (waits for in-flight leaves)."""
        self.transport.close()

    def __enter__(self) -> "DagExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Ambient scope: how inner code finds the shared executor.
# ---------------------------------------------------------------------------

_AMBIENT = threading.local()


def _scope_stack() -> list:
    stack = getattr(_AMBIENT, "stack", None)
    if stack is None:
        stack = []
        _AMBIENT.stack = stack
    return stack


def current_executor() -> Optional[DagExecutor]:
    """The executor of the innermost active scope on this thread."""
    stack = _scope_stack()
    return stack[-1][0] if stack else None


def current_source() -> Optional[str]:
    """The source label of the innermost active scope on this thread."""
    stack = _scope_stack()
    return stack[-1][1] if stack else None


@contextmanager
def executor_scope(executor: DagExecutor, source: Optional[str] = None):
    """Make ``executor`` ambient on this thread for the ``with`` body.

    ``source`` labels submissions made under the scope (steal
    attribution).  Scopes nest and are strictly thread-local — a cell
    orchestration thread must open its own scope, which
    ``run_cells`` does.
    """
    stack = _scope_stack()
    stack.append((executor, source))
    try:
        yield executor
    finally:
        stack.pop()


class SharedExecutorBackend(ExecutionBackend):
    """An :class:`ExecutionBackend` view of a shared :class:`DagExecutor`.

    What ``resolve_backend("dag")`` hands to the sweep/restart callers:
    the same ``map`` / ``map_stream`` contract as every other backend,
    but submissions land in the shared queue instead of a private
    pool.  ``close()`` is deliberately a no-op — the executor belongs
    to whoever opened it (the CLI, ``run_cells``, or a test), not to
    the consumers ``resolve_backend`` hands it to.
    """

    name = "dag"

    def __init__(
        self, executor: DagExecutor, source: Optional[str] = None
    ) -> None:
        self.executor = executor
        self.source = source

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return self.executor.map(fn, items, source=self.source)

    def map_stream(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        callback: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        return self.executor.map_stream(
            fn, items, callback=callback, source=self.source
        )

    def close(self) -> None:  # the executor outlives its backend views
        pass


def ambient_backend() -> ExecutionBackend:
    """The backend the ``"dag"`` spec resolves to on this thread.

    A :class:`SharedExecutorBackend` inside an :func:`executor_scope`;
    a plain :class:`SerialBackend` outside one, so profiles configured
    for the DAG executor still run (serially) in contexts that never
    opened an executor.
    """
    executor = current_executor()
    if executor is None:
        return SerialBackend()
    return SharedExecutorBackend(executor, source=current_source())
