"""Fault tolerance for the DAG executor: retry policies and chaos injection.

The paper designs MPSoCs that keep meeting deadlines when transient
faults strike; this module gives the execution stack the same property.
It has two halves:

* :class:`RetryPolicy` — how the executor reacts to a failed leaf:
  bounded attempts, exponential backoff with *deterministic seeded
  jitter*, and an optional per-leaf deadline.  Retrying at the leaf
  boundary is safe because DAG leaves are pure functions of their
  payload under the determinism contract (same seed ⇒ same result), so
  a re-executed leaf reproduces the lost result bit-for-bit and the
  reassembled report stays byte-identical.

* :class:`FaultInjectingTransport` — a chaos harness behind the
  existing :class:`~repro.exec.dag.Transport` interface, in the spirit
  of :mod:`repro.faults.injector`: every submission rolls one seeded
  dice and may be turned into a simulated worker crash, a transient
  error, or a delayed execution.  Same seed + same submission order ⇒
  same injected faults, so every failure mode is reproducible in tests
  and CI (set ``REPRO_CHAOS=crash=0.05,delay=0.1,seed=7`` to arm it on
  any ``DagExecutor.from_spec`` executor).

Only *worker-loss* failures are retryable: real pool breakage
(:class:`concurrent.futures.BrokenExecutor` and its process-pool
subclass) and the injected :class:`TransientWorkerError` family.  An
exception raised by the leaf function itself (a bug, a bad payload) is
deterministic — retrying it would just fail again — so it propagates
immediately, exactly as before.
"""

from __future__ import annotations

import os
import random
import threading
import time
from concurrent.futures import BrokenExecutor, Future
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exec.dag import Transport

#: Environment variable read by ``DagExecutor.from_spec`` to arm chaos
#: injection process-wide (value format: :meth:`FaultPlan.from_spec`).
CHAOS_ENV = "REPRO_CHAOS"


class TransientWorkerError(RuntimeError):
    """A worker-loss failure that a retry can heal (leaves are pure)."""


class InjectedWorkerCrash(BrokenExecutor):
    """Chaos-injected stand-in for a worker process dying mid-leaf.

    Subclasses :class:`BrokenExecutor` so one retryable check covers
    both the injected and the real thing.
    """


class InjectedTransientError(TransientWorkerError):
    """Chaos-injected stand-in for a transient infrastructure error."""


class LeafTimeoutError(TransientWorkerError):
    """A leaf exceeded the policy's per-leaf deadline (treated as lost)."""


# ---------------------------------------------------------------------------
# Retry policy.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    ``delay_s(attempt, key)`` is a pure function of the policy fields,
    the attempt number, and the key — the jitter comes from a
    ``random.Random`` seeded with ``"{seed}:{key}:{attempt}"``, so
    backoff schedules are reproducible and testable, never wall-clock
    dependent.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    backoff_factor: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    leaf_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.leaf_timeout_s is not None and self.leaf_timeout_s <= 0:
            raise ValueError("leaf_timeout_s must be positive when set")

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        """Fail-fast policy: one attempt, no backoff (the old behaviour)."""
        return cls(max_attempts=1, base_delay_s=0.0, jitter=0.0)

    def with_seed(self, seed: int) -> "RetryPolicy":
        return replace(self, seed=seed)

    def retryable(self, exc: BaseException) -> bool:
        """Only worker-loss failures are retryable; leaf bugs are not."""
        return isinstance(exc, (BrokenExecutor, TransientWorkerError))

    def delay_s(self, attempt: int, key: str = "leaf") -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``key``."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter and delay:
            rng = random.Random(f"{self.seed}:{key}:{attempt}")
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)

    def schedule(self, key: str = "leaf") -> List[float]:
        """The full backoff schedule for ``key`` (one entry per retry)."""
        return [
            self.delay_s(attempt, key)
            for attempt in range(1, self.max_attempts)
        ]


# ---------------------------------------------------------------------------
# Chaos injection.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of which faults to inject and how often.

    Rates are per-submission probabilities evaluated in the order
    crash → error → delay from a single dice roll, so they must sum to
    at most 1.  ``max_faults`` bounds total injections (useful in CI to
    cap the tail risk of a leaf exhausting its retries).
    """

    seed: int = 0
    crash_rate: float = 0.0
    error_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.01
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("crash_rate", "error_rate", "delay_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.crash_rate + self.error_rate + self.delay_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative when set")

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"crash=0.05,delay=0.1,error=0.02,seed=7,max_faults=40"``.

        Recognised keys: ``crash``, ``error``, ``delay`` (rates),
        ``delay_s`` (injected delay duration), ``seed``, ``max_faults``.
        """
        fields: Dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad fault spec entry {part!r}; expected key=value"
                )
            key, _, value = part.partition("=")
            key = key.strip().lower()
            value = value.strip()
            try:
                if key == "crash":
                    fields["crash_rate"] = float(value)
                elif key == "error":
                    fields["error_rate"] = float(value)
                elif key == "delay":
                    fields["delay_rate"] = float(value)
                elif key == "delay_s":
                    fields["delay_s"] = float(value)
                elif key == "seed":
                    fields["seed"] = int(value)
                elif key == "max_faults":
                    fields["max_faults"] = int(value)
                else:
                    raise ValueError(f"unknown fault spec key {key!r}")
            except ValueError as exc:
                if "fault spec" in str(exc):
                    raise
                raise ValueError(
                    f"bad fault spec value for {key!r}: {value!r}"
                ) from exc
        return cls(**fields)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan armed via ``REPRO_CHAOS``, or ``None`` when unset."""
        spec = (environ if environ is not None else os.environ).get(CHAOS_ENV)
        if not spec:
            return None
        return cls.from_spec(spec)


def _delayed_call(delay_s: float, fn: Callable[..., Any], *args: Any) -> Any:
    """Module-level delay trampoline (process pools must pickle it)."""
    if delay_s > 0:
        time.sleep(delay_s)
    return fn(*args)


class FaultInjectingTransport(Transport):
    """Chaos wrapper over any transport: seeded crash/error/delay injection.

    Each ``submit`` consumes exactly one draw from a private
    ``random.Random(plan.seed)``, so under a fixed submission order the
    injected fault sequence is fully determined by the plan — the
    property the chaos CI leg and the determinism tests rely on.  The
    ``injected`` log records ``(submission index, kind)`` pairs.
    """

    def __init__(self, inner: Transport, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name = f"chaos:{inner.name}"
        self.injected: List[Tuple[int, str]] = []
        self._rng = random.Random(plan.seed)
        self._submissions = 0
        self._lock = threading.Lock()

    def _decide(self) -> str:
        """One seeded dice roll → "crash" / "error" / "delay" / "pass"."""
        plan = self.plan
        capped = (
            plan.max_faults is not None
            and len(self.injected) >= plan.max_faults
        )
        index = self._submissions
        self._submissions += 1
        if capped:
            return "pass"
        roll = self._rng.random()
        if roll < plan.crash_rate:
            kind = "crash"
        elif roll < plan.crash_rate + plan.error_rate:
            kind = "error"
        elif roll < plan.crash_rate + plan.error_rate + plan.delay_rate:
            kind = "delay"
        else:
            return "pass"
        self.injected.append((index, kind))
        return kind

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        with self._lock:
            kind = self._decide()
        if kind == "crash":
            future: Future = Future()
            future.set_exception(
                InjectedWorkerCrash("chaos: injected worker crash")
            )
            return future
        if kind == "error":
            future = Future()
            future.set_exception(
                InjectedTransientError("chaos: injected transient error")
            )
            return future
        if kind == "delay":
            return self.inner.submit(_delayed_call, self.plan.delay_s, fn, *args)
        return self.inner.submit(fn, *args)

    def recover(self, exc: BaseException) -> bool:
        """Injected crashes never break the real pool; still let the
        inner transport heal itself after a *real* breakage."""
        if isinstance(exc, (InjectedWorkerCrash, InjectedTransientError)):
            return False
        return self.inner.recover(exc)

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjectingTransport({self.inner!r}, {self.plan!r})"
