"""Experiment harness: regenerates every table and figure of the paper.

Each module owns one artifact of the evaluation section:

========  ===========================================================
Module    Paper artifact
========  ===========================================================
fig3      Fig. 3(a)-(c): T_M/R trade-off and Gamma concavity study
table2    Table II: Exp:1-4 on the MPEG-2 decoder, four cores
fig9      Fig. 9: relative SEUs/power of Exp:1-3 vs Exp:4
table3    Table III: architecture allocation sweep (2-6 cores)
fig10     Fig. 10: Exp:3 vs Exp:4 across core counts (60-task graph)
fig11     Fig. 11: impact of the number of voltage scaling levels
========  ===========================================================

All experiments accept an :class:`~repro.experiments.common.
ExperimentProfile` — ``fast()`` for CI-scale runs, ``full()`` for
paper-scale search budgets — and return plain dataclasses with
``format_table()`` renderers, so the benchmark harness and the CLI can
print the same rows the paper reports.
"""

from repro.experiments.common import ExperimentProfile, run_cells, worker_profile
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.fig10 import Fig10Result, run_fig10
from repro.experiments.fig11 import Fig11Result, run_fig11
from repro.experiments.runner import run_all, run_experiment

__all__ = [
    "ExperimentProfile",
    "Fig10Result",
    "Fig11Result",
    "Fig3Result",
    "Fig9Result",
    "Table2Result",
    "Table3Result",
    "run_all",
    "run_cells",
    "run_experiment",
    "run_fig10",
    "run_fig11",
    "run_fig3",
    "run_fig9",
    "run_table2",
    "run_table3",
    "worker_profile",
]
