"""Shared experiment infrastructure: profiles, builders, table rendering.

The paper's search budgets are wall-clock (40-130 minutes); ours are
iteration counts bundled into an :class:`ExperimentProfile` so every
experiment can run at CI scale (``fast``) or paper scale (``full``)
with one switch.  Helpers build the reference platform/evaluator
combinations and render aligned ASCII tables matching the paper's
reporting units (P in mW, R in kbit, T_M in cycles, Gamma in SEUs).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple

from repro.arch.mpsoc import MPSoC
from repro.arch.platform import DEFAULT_PLATFORM, platform_model
from repro.arch.technode import TechNode
from repro.exec.backends import BackendSpec, SerialBackend, resolve_backend
from repro.faults.ser import SERModel
from repro.mapping.metrics import MappingEvaluator
from repro.optim.annealing import AnnealingConfig
from repro.optim.design_optimizer import (
    DesignOptimizer,
    Mapper,
    baseline_mapper,
    sea_mapper,
)
from repro.optim.objectives import Objective
from repro.taskgraph.graph import TaskGraph

#: Valid ``ExperimentProfile.exec_plan`` values.  ``None`` and
#: ``"percut"`` keep the legacy per-cut dispatch (the reference path);
#: ``"dag"`` and its ``dag:<transport>`` variants route every parallel
#: cut through one shared work-stealing executor (repro.exec.dag).
EXEC_PLANS = (
    "percut",
    "dag",
    "dag:serial",
    "dag:thread",
    "dag:process",
    "dag:auto",
)

#: Per-cut backend values that open pools of their own — the ones a
#: unified ``exec_plan`` conflicts with (serial and "dag" are inert).
_POOLED_BACKENDS = ("thread", "process", "auto")


@dataclass(frozen=True)
class ExperimentProfile:
    """Search budgets and seeds shared by all experiments.

    Attributes
    ----------
    name:
        Profile label ("fast" / "full" / custom).
    search_iterations:
        Stage-2 ``OptimizedMapping`` budget per scaling combination.
    sa_iterations:
        Simulated-annealing budget per scaling (baselines).
    fig3_mappings:
        Number of mappings sampled for the Fig. 3 study.
    stop_after_feasible:
        Early-exit for the scaling sweep (see
        :class:`~repro.optim.design_optimizer.DesignOptimizer`);
        ``None`` explores every combination.
    seed:
        Base determinism seed.
    platform:
        Platform preset name (see :func:`repro.arch.platform_names`).
        The default ``"arm7"`` is the paper's homogeneous platform and
        reproduces the seed path bit for bit; other presets (e.g.
        ``"biglittle"``) build heterogeneous platforms.  Result-
        determining — included in the store fingerprint.
    tech_node:
        Technology node spec (``"45nm"``, ``"22nm-cons"``, ...; see
        :class:`repro.arch.TechNode`).  The default 45 nm node leaves
        every model untouched.  Result-determining — included in the
        store fingerprint.
    exec_backend:
        Execution backend for the scaling sweeps (``"serial"``,
        ``"thread"``, ``"process"`` or ``"auto"``).  Any choice
        selects the identical designs (the exec subsystem's
        determinism contract); parallel backends only change
        wall-clock on multi-core machines.
    experiment_backend:
        Execution backend the experiment grids fan out on — Table
        III's application × core-count cells, Fig. 10's per-core-count
        pairs and :func:`~repro.experiments.runner.run_all`'s whole
        experiments.  Cells carry per-cell seeds and run in private
        evaluators, and results are reassembled in grid order, so the
        reports are byte-identical to a serial run.  When cells run on
        a parallel backend their inner sweeps are forced serial (see
        :func:`worker_profile`) to avoid nested pools.
    exec_max_workers:
        Pool size cap for every pooled backend resolved from this
        profile (scaling sweeps, restart dispatch and experiment
        fan-out); ``None`` sizes pools from the machine.
    sa_restarts:
        Override for the annealing restart count used by both the
        proposed stage-2 annealer and the Exp:1-3 baselines; ``None``
        keeps the mappers' size-derived defaults.
    restart_backend:
        Execution backend the annealing restarts run on (the third
        parallel cut, inside one scaling's mapping search).  Identical
        selections on every backend, like the other two cuts.
    batch_eval:
        Batched candidate screening chunk size for the mapping
        searchers (table3 and every experiment built through
        :func:`build_optimizer`): candidate neighbours are evaluated
        through the vectorized
        :meth:`~repro.mapping.metrics.MappingEvaluator.evaluate_batch`
        in chunks of this size.  ``1`` is bit-identical to the serial
        walk; larger chunks change the visit sequence (deterministic
        under the profile seed).  0 (default) keeps the serial loops —
        the paper artifacts.  fig3's mapping-sample study always rides
        the vectorized batch path (it is bit-identical there).
    screen_moves:
        Incremental move screening for the searchers: ``False``
        (default, the paper artifacts), ``True`` (always screen) or
        ``"auto"`` (screen only on graphs with >= 100 tasks, where the
        preview cost pays for itself — see ARCHITECTURE.md, "Screening
        policy").  Mutually exclusive with ``batch_eval``.
    store_dir:
        When set, experiment grids stream to disk — each cell's result is
        persisted to ``<store_dir>/<run label>/`` the moment it
        completes (append-only JSONL records + a manifest; see
        ARCHITECTURE.md §store) instead of living only in memory until
        the grid finishes.  ``None`` (default) keeps the in-memory
        behaviour.
    resume:
        With ``store_dir``: load completed cells from an existing
        store (same profile fingerprint and grid required) and
        re-dispatch only missing or failed ones.  Resumed runs
        reassemble byte-identical reports — the store determinism
        contract.  Without ``resume`` an existing store is overwritten.
    exec_plan:
        The unified execution plan.  ``None`` (default) keeps the
        legacy per-cut dispatch driven by the three ``*_backend``
        knobs above (``"percut"`` says the same explicitly); ``"dag"``
        / ``"dag:serial"`` / ``"dag:thread"`` / ``"dag:process"`` /
        ``"dag:auto"`` flatten all three cuts — cells, restarts,
        scalings — into one shared work-stealing executor over the
        named transport (see :mod:`repro.exec.dag`), so idle workers
        pick up inner work from any cell instead of idling while
        their cell finishes.  Reports stay byte-identical to serial
        runs (the house determinism contract).  The per-cut knobs are
        **deprecated** in favour of this field; combining a dag plan
        with a pooled per-cut backend is contradictory (two owners
        for the machine's parallelism) and fails fast.
    """

    name: str = "fast"
    search_iterations: int = 2000
    sa_iterations: int = 2000
    fig3_mappings: int = 120
    stop_after_feasible: Optional[int] = 6
    seed: int = 0
    platform: str = DEFAULT_PLATFORM
    tech_node: str = "45nm"
    exec_backend: str = "serial"
    experiment_backend: str = "serial"
    exec_max_workers: Optional[int] = None
    sa_restarts: Optional[int] = None
    restart_backend: str = "serial"
    batch_eval: int = 0
    screen_moves: object = False
    store_dir: Optional[str] = None
    resume: bool = False
    exec_plan: Optional[str] = None

    def __post_init__(self) -> None:
        # Fail fast on unknown presets/nodes — not deep inside a run.
        platform_model(self.platform)
        TechNode.parse(self.tech_node)
        if self.exec_plan is not None and self.exec_plan not in EXEC_PLANS:
            raise ValueError(
                f"unknown exec_plan {self.exec_plan!r}; choose from {EXEC_PLANS}"
            )
        pooled = [
            f"{name}={getattr(self, name)!r}"
            for name in ("exec_backend", "experiment_backend", "restart_backend")
            if getattr(self, name) in _POOLED_BACKENDS
        ]
        if self.uses_dag_executor():
            if pooled:
                raise ValueError(
                    f"exec_plan={self.exec_plan!r} conflicts with per-cut "
                    f"backend(s) {', '.join(pooled)}: the unified executor "
                    "owns all parallel cuts — drop the per-cut knobs (they "
                    "are deprecated) or use exec_plan='percut'"
                )
        elif pooled:
            # Pickle restore bypasses __init__, so worker processes do
            # not re-warn for profiles shipped to them.
            warnings.warn(
                f"per-cut backend knob(s) {', '.join(pooled)} are "
                "deprecated; set exec_plan='dag' (or 'dag:thread'/"
                "'dag:process') to run every parallel cut on one shared "
                "work-stealing pool — reports stay byte-identical",
                DeprecationWarning,
                stacklevel=3,
            )

    def uses_dag_executor(self) -> bool:
        """Whether this profile routes work through the shared DAG executor."""
        return self.exec_plan is not None and self.exec_plan.startswith("dag")

    def dag_transport(self) -> str:
        """The transport spec of a dag ``exec_plan`` (``"auto"`` default)."""
        if not self.uses_dag_executor():
            raise ValueError(f"exec_plan {self.exec_plan!r} is not a dag plan")
        _, _, transport = self.exec_plan.partition(":")
        return transport or "auto"

    def sweep_backend(self) -> str:
        """The effective scaling-sweep backend spec under this profile."""
        return "dag" if self.uses_dag_executor() else self.exec_backend

    def restart_dispatch_backend(self) -> str:
        """The effective annealing-restart backend spec under this profile."""
        return "dag" if self.uses_dag_executor() else self.restart_backend

    @classmethod
    def fast(cls, seed: int = 0) -> "ExperimentProfile":
        """CI-scale budgets (seconds per experiment)."""
        return cls(name="fast", seed=seed)

    @classmethod
    def smoke(cls, seed: int = 0) -> "ExperimentProfile":
        """Pipeline-smoke budgets (sub-minute full grids).

        Small enough for end-to-end exercises of the whole pipeline —
        the CI kill-and-resume job runs every grid through the CLI on
        this profile — while still covering every cell of every grid.
        """
        return cls(
            name="smoke",
            search_iterations=150,
            sa_iterations=300,
            fig3_mappings=40,
            stop_after_feasible=2,
            seed=seed,
        )

    @classmethod
    def full(cls, seed: int = 0) -> "ExperimentProfile":
        """Paper-scale budgets (minutes per experiment)."""
        return cls(
            name="full",
            search_iterations=4000,
            sa_iterations=8000,
            fig3_mappings=120,
            stop_after_feasible=None,
            seed=seed,
        )

    def with_seed(self, seed: int) -> "ExperimentProfile":
        """A copy with a different base seed."""
        return replace(self, seed=seed)

    def with_platform(
        self, platform: Optional[str] = None, tech_node: Optional[str] = None
    ) -> "ExperimentProfile":
        """A copy on a different platform preset and/or tech node."""
        updates = {}
        if platform is not None:
            updates["platform"] = platform
        if tech_node is not None:
            updates["tech_node"] = tech_node
        return replace(self, **updates)

    def with_backend(
        self,
        exec_backend: Optional[str] = None,
        experiment_backend: Optional[str] = None,
        restart_backend: Optional[str] = None,
    ) -> "ExperimentProfile":
        """A copy running on different execution backends.

        Positional use (``with_backend("thread")``) keeps its original
        meaning — the scaling-sweep backend; the keyword arguments
        retarget the experiment fan-out and restart cuts.
        """
        updates = {}
        if exec_backend is not None:
            updates["exec_backend"] = exec_backend
        if experiment_backend is not None:
            updates["experiment_backend"] = experiment_backend
        if restart_backend is not None:
            updates["restart_backend"] = restart_backend
        return replace(self, **updates)

    def with_exec_plan(self, exec_plan: Optional[str]) -> "ExperimentProfile":
        """A copy running under a different execution plan.

        Validation (unknown plans, conflicts with deprecated per-cut
        knobs) happens in ``__post_init__`` — conflicting combinations
        fail fast here, not deep inside a run.
        """
        return replace(self, exec_plan=exec_plan)

    def with_max_workers(self, exec_max_workers: Optional[int]) -> "ExperimentProfile":
        """A copy with a different pool-size cap."""
        return replace(self, exec_max_workers=exec_max_workers)

    def with_store(
        self, store_dir: Optional[str], resume: bool = False
    ) -> "ExperimentProfile":
        """A copy streaming its grids to ``store_dir`` (optionally resuming)."""
        return replace(
            self,
            store_dir=None if store_dir is None else str(store_dir),
            resume=resume,
        )

    def result_fingerprint(self) -> str:
        """Hash of every profile field that determines results.

        Execution fields (backends, ``exec_plan``, worker caps, the
        store settings themselves) are deliberately excluded: by the
        exec determinism contract they change wall-clock only, so a
        store written by a serial run may be resumed on a process
        backend or under the DAG executor and vice versa.
        ``batch_eval``/``screen_moves`` *are* included — chunked
        screening changes the candidate visit sequence — and so are
        ``platform``/``tech_node`` (format 2), which select different
        physical models entirely.  The tech node is canonicalized
        (``"45"`` == ``"45nm"`` == ``"45nm-itrs"``) so spelling
        variants of the same node resume each other's stores.
        """
        from repro.store import fingerprint_payload

        return fingerprint_payload(
            {
                "format": 2,
                "name": self.name,
                "search_iterations": self.search_iterations,
                "sa_iterations": self.sa_iterations,
                "fig3_mappings": self.fig3_mappings,
                "stop_after_feasible": self.stop_after_feasible,
                "seed": self.seed,
                "sa_restarts": self.sa_restarts,
                "batch_eval": self.batch_eval,
                "screen_moves": repr(self.screen_moves),
                "platform": self.platform,
                "tech_node": TechNode.parse(self.tech_node).name,
            }
        )

    def annealing_config(self) -> AnnealingConfig:
        """The SA configuration implied by this profile."""
        # "serial" passes straight through: AnnealingConfig accepts any
        # BACKEND_NAMES entry and resolve_backend("serial") is the
        # in-process loop.
        config = AnnealingConfig(
            max_iterations=self.sa_iterations,
            restart_backend=self.restart_dispatch_backend(),
        )
        if self.sa_restarts is not None:
            config = replace(config, restarts=self.sa_restarts)
        return config


def build_platform(
    num_cores: int,
    num_levels: int = 3,
    platform: str = DEFAULT_PLATFORM,
    tech_node: str = "45nm",
) -> MPSoC:
    """A platform preset instantiated at a technology node.

    The defaults reproduce the paper's homogeneous ARM7 platform —
    bit-identical to the seed's ``MPSoC(num_cores, scaling_table=
    arm7_levels(num_levels))``.  ``num_levels`` applies to the arm7
    preset only (other presets fix their own tables).
    """
    model = platform_model(
        platform, num_levels=num_levels if platform == DEFAULT_PLATFORM else None
    )
    return model.instantiate(num_cores, tech_node=TechNode.parse(tech_node))


def build_ser_model(
    tech_node: str = "45nm", base: Optional[SERModel] = None
) -> Optional[SERModel]:
    """The node-scaled SER model, or ``None`` at the default node.

    Returning ``None`` for 45 nm lets the evaluator construct its own
    paper-default :class:`SERModel` exactly as the seed did.
    """
    node = TechNode.parse(tech_node)
    if node.is_default:
        return base
    return node.scale_ser(base if base is not None else SERModel())


def build_evaluator(
    graph: TaskGraph,
    num_cores: int,
    deadline_s: float,
    num_levels: int = 3,
    ser_model: Optional[SERModel] = None,
    platform: str = DEFAULT_PLATFORM,
    tech_node: str = "45nm",
) -> MappingEvaluator:
    """An evaluator over the reference platform."""
    return MappingEvaluator(
        graph,
        build_platform(num_cores, num_levels, platform=platform, tech_node=tech_node),
        ser_model=build_ser_model(tech_node, ser_model),
        deadline_s=deadline_s,
    )


def build_optimizer(
    graph: TaskGraph,
    num_cores: int,
    deadline_s: float,
    profile: ExperimentProfile,
    objective: Optional[Objective] = None,
    num_levels: int = 3,
    seed_offset: int = 0,
) -> DesignOptimizer:
    """A Fig. 4 optimizer: proposed mapper by default, SA baseline when
    ``objective`` is given (Exp:1-3 style)."""
    mapper: Mapper
    if objective is None:
        mapper = sea_mapper(
            search_iterations=profile.search_iterations,
            restarts=profile.sa_restarts,
            restart_backend=profile.restart_dispatch_backend(),
            screen_moves=profile.screen_moves,
            batch_size=profile.batch_eval,
        )
    else:
        mapper = baseline_mapper(
            objective,
            config=profile.annealing_config(),
            screen_moves=profile.screen_moves,
            batch_size=profile.batch_eval,
        )
    return DesignOptimizer(
        graph,
        build_platform(
            num_cores,
            num_levels,
            platform=profile.platform,
            tech_node=profile.tech_node,
        ),
        deadline_s=deadline_s,
        ser_model=build_ser_model(profile.tech_node),
        mapper=mapper,
        stop_after_feasible=profile.stop_after_feasible,
        seed=profile.seed + seed_offset,
        tiebreak=objective,
        remap_per_scaling=objective is None,
        backend=profile.sweep_backend(),
        max_workers=profile.exec_max_workers,
        # The proposed flow trades a modest amount of power for fewer
        # SEUs (Table II: Exp:4 consumes ~5% more than the cheapest
        # baseline design while cutting SEUs substantially); the
        # baselines stay strictly power-first.
        power_tolerance=0.15 if objective is None else 0.02,
    )


def worker_profile(profile: ExperimentProfile) -> ExperimentProfile:
    """The profile a fanned-out cell runs under inside a worker.

    All inner parallel cuts are forced serial: a cell dispatched to a
    thread or process pool must not open nested pools of its own (the
    outer fan-out already owns the machine's parallelism).  By the
    exec determinism contract this changes wall-clock only, never
    results.
    """
    return replace(
        profile,
        exec_backend="serial",
        experiment_backend="serial",
        restart_backend="serial",
        exec_plan=None,
    )


def _run_cell(cell: Any) -> Any:
    """Module-level trampoline so process pools can pickle the call."""
    return cell.run()


@dataclass(frozen=True)
class _CheckpointedCell:
    """A cell wrapped in an intra-cell checkpoint scope, picklable.

    Store-backed grids wrap every pending cell so its scaling sweep can
    durably record per-scaling progress (see
    :mod:`repro.store.checkpoint`): the wrapper re-opens the
    thread-local scope wherever the cell actually runs — the caller's
    thread, a dag coordinator thread, or a process-pool worker — and
    the optimizer inside picks it up via ``current_checkpoint()``.
    Carries the checkpoint *path* plus the identity pair (run
    fingerprint, cell key) the checkpoint validates against.
    """

    cell: Any
    path: str
    fingerprint: str
    cell_key: str

    def run(self) -> Any:
        from repro.store.checkpoint import CellCheckpoint, checkpoint_scope

        checkpoint = CellCheckpoint(
            self.path, fingerprint=self.fingerprint, cell_key=self.cell_key
        )
        with checkpoint_scope(checkpoint):
            return self.cell.run()


def _checkpointed_jobs(jobs: Sequence[Any], pending: Sequence[int], store) -> List[Any]:
    """Wrap each pending job with its cell's checkpoint identity."""
    from repro.store.checkpoint import checkpoint_path

    return [
        _CheckpointedCell(
            cell=job,
            path=str(checkpoint_path(store.directory, index)),
            fingerprint=store.fingerprint,
            cell_key=store.keys[index],
        )
        for job, index in zip(jobs, pending)
    ]


def _run_cell_guarded(cell: Any) -> Any:
    """Trampoline that converts cell failures into recordable outcomes.

    Store-backed runs must persist *partial* grids: one bad cell is
    recorded as failed (and re-dispatched on resume) instead of losing
    the completed cells with it.  Returns ``("ok", result)`` or
    ``("error", message)``.
    """
    try:
        return ("ok", cell.run())
    except Exception as exc:
        return ("error", f"{type(exc).__name__}: {exc}")


def _open_cell_store(profile: ExperimentProfile, label: Optional[str], cells):
    """The run store for a grid, or ``None`` when persistence is off."""
    if not profile.store_dir or label is None:
        return None
    from repro.store import RunStore, cell_key

    keys = [cell_key(cell, index) for index, cell in enumerate(cells)]
    return RunStore.open(
        Path(profile.store_dir) / label,
        label=label,
        fingerprint=profile.result_fingerprint(),
        keys=keys,
        profile_summary={"name": profile.name, "seed": profile.seed},
        resume=profile.resume,
    )


def run_cells(
    cells: Sequence[Any],
    profile: ExperimentProfile,
    backend: BackendSpec = None,
    label: Optional[str] = None,
) -> List[Any]:
    """Fan experiment cells out through an execution backend, in order.

    A *cell* is a picklable object with a ``run()`` method and a
    ``profile`` field (a frozen dataclass).  Cells must be independent
    — each carries its own seeds and builds private evaluators — so
    results are a pure function of the cell itself and
    ``backend.map``'s item-order guarantee makes the returned list
    identical to a serial loop whatever backend executes it.

    ``backend`` overrides ``profile.experiment_backend``.  On a
    parallel backend every cell is re-profiled via
    :func:`worker_profile` so inner sweeps stay serial in the workers.

    ``label`` names the grid for the streaming run store: when
    ``profile.store_dir`` is set and a label is given, every cell's
    result is appended to ``<store_dir>/<label>/records.jsonl`` the
    moment it completes (completion order; the returned list keeps
    grid order), and with ``profile.resume`` completed cells are
    loaded from the store instead of re-run — byte-identical results
    either way, because cells are pure functions of themselves.  A
    failed cell is recorded as such and the grid raises *after* every
    other cell has run and been persisted; resuming re-dispatches
    only the failures.

    Under a dag ``profile.exec_plan`` the grid takes the unified-
    executor path instead (see :func:`_run_cells_dag`): cells run
    concurrently on coordinator threads and their inner restart /
    scaling leaves share one work-stealing pool.  Reports, streaming
    and resume semantics are unchanged — byte-identical to serial.
    """
    cells = list(cells)
    if not cells:
        return []
    if profile.uses_dag_executor():
        if backend is not None:
            raise ValueError(
                f"exec_plan={profile.exec_plan!r} conflicts with an explicit "
                "run_cells backend override: the unified executor owns the "
                "cell fan-out — drop the backend argument or the exec_plan"
            )
        return _run_cells_dag(cells, profile, label)
    spec = backend if backend is not None else profile.experiment_backend
    store = _open_cell_store(profile, label, cells)
    if store is None:
        resolved = resolve_backend(
            spec,
            task_count=len(cells),
            probe_factory=lambda: cells[0],
            max_workers=profile.exec_max_workers,
        )
        if isinstance(resolved, SerialBackend):
            return [cell.run() for cell in cells]
        jobs = [
            replace(cell, profile=worker_profile(cell.profile)) for cell in cells
        ]
        try:
            return resolved.map(_run_cell, jobs)
        finally:
            if resolved is not spec:  # close pools we created here
                resolved.close()
    return _run_cells_stored(cells, profile, spec, store)


def _run_cells_stored(cells, profile: ExperimentProfile, spec, store) -> List[Any]:
    """Store-backed :func:`run_cells`: stream completions, skip loaded cells."""
    keys = store.keys
    loaded = store.load_results()
    results: List[Any] = [None] * len(cells)
    pending: List[int] = []
    for index, key in enumerate(keys):
        record = loaded.get(key)
        if record is not None:
            results[index] = record.payload
        else:
            pending.append(index)
    if pending:
        resolved = resolve_backend(
            spec,
            task_count=len(pending),
            probe_factory=lambda: cells[pending[0]],
            max_workers=profile.exec_max_workers,
        )
        if isinstance(resolved, SerialBackend):
            jobs = [cells[index] for index in pending]
        else:
            jobs = [
                replace(cells[index], profile=worker_profile(cells[index].profile))
                for index in pending
            ]
        jobs = _checkpointed_jobs(jobs, pending, store)

        def persist(position: int, outcome) -> None:
            index = pending[position]
            status, value = outcome
            if status == "ok":
                store.record_result(keys[index], index, value)
            else:
                store.record_error(keys[index], index, value)

        try:
            outcomes = resolved.map_stream(_run_cell_guarded, jobs, callback=persist)
        finally:
            if resolved is not spec:
                resolved.close()
        failures: List[str] = []
        for position, (status, value) in enumerate(outcomes):
            index = pending[position]
            if status == "ok":
                results[index] = value
            else:
                failures.append(f"{keys[index]}: {value}")
        if failures:
            store.finalize()
            raise RuntimeError(
                f"{len(failures)} of {len(cells)} cell(s) failed; completed "
                f"cells are persisted in {store.directory} — re-run with "
                f"resume to re-dispatch only the failures: "
                + "; ".join(failures)
            )
    store.finalize()
    return results


def _run_cell_in_dag(executor, cell: Any, source: str, guarded: bool):
    """Run one cell on a coordinator thread under the shared executor.

    Opens a thread-local :func:`~repro.exec.dag.executor_scope` so the
    cell's inner ``"dag"`` backend specs (sweeps, restarts, nested
    grids) resolve to the shared executor tagged with this cell's
    source label.  The cell itself keeps its profile untouched — all
    plan-to-backend mapping happens in :func:`build_optimizer` /
    nested :func:`run_cells` calls off ``exec_plan``.
    """
    from repro.exec.dag import executor_scope

    with executor_scope(executor, source):
        if not guarded:
            return ("ok", cell.run())
        try:
            return ("ok", cell.run())
        except Exception as exc:
            return ("error", f"{type(exc).__name__}: {exc}")


def _run_cells_dag(
    cells: List[Any], profile: ExperimentProfile, label: Optional[str]
) -> List[Any]:
    """:func:`run_cells` on the unified DAG executor.

    Every cell's *orchestration* (job building, ranking/early-exit
    replays — cheap coordination code) runs on its own coordinator
    thread, while the cells' leaf tasks (annealing restarts, scaling
    assessments) all funnel into one shared
    :class:`~repro.exec.dag.DagExecutor` queue — so a worker that
    finishes one cell's leaves immediately steals another's instead
    of idling, which is exactly what the per-cut fan-out cannot do.

    An already-ambient executor (an enclosing grid, the CLI) is
    reused — nested grids share the one pool; otherwise one is opened
    from the profile's transport spec and closed here.  Store
    streaming mirrors the legacy path: completions persist from the
    caller's thread in completion order, failures are recorded and
    the grid raises after every cell has run, and the executor's
    utilization stats land in the run manifest.
    """
    from concurrent.futures import ThreadPoolExecutor, as_completed

    from repro.exec.dag import DagExecutor, current_executor

    executor = current_executor()
    owned = executor is None
    if owned:
        executor = DagExecutor.from_spec(
            profile.dag_transport(),
            max_workers=profile.exec_max_workers,
            payload_probe=cells[0],
        )
    store = _open_cell_store(profile, label, cells)
    results: List[Any] = [None] * len(cells)
    pending = list(range(len(cells)))
    if store is not None:
        loaded = store.load_results()
        pending = []
        for index, key in enumerate(store.keys):
            record = loaded.get(key)
            if record is not None:
                results[index] = record.payload
            else:
                pending.append(index)
    grid = label or "cells"
    failures: List[Tuple[int, str]] = []
    try:
        if pending:
            # One coordinator thread per pending cell: they spend
            # their lives blocked on leaf futures, so this is
            # coordination overhead, not oversubscription — the
            # machine's parallelism lives in the executor's transport.
            with ThreadPoolExecutor(
                max_workers=len(pending), thread_name_prefix=f"repro-{grid}"
            ) as cohort:
                jobs = {
                    index: cells[index] for index in pending
                }
                if store is not None:
                    jobs = dict(
                        zip(
                            pending,
                            _checkpointed_jobs(
                                [cells[index] for index in pending], pending, store
                            ),
                        )
                    )
                futures = {
                    cohort.submit(
                        _run_cell_in_dag,
                        executor,
                        jobs[index],
                        f"{grid}[{index}]",
                        store is not None,
                    ): index
                    for index in pending
                }
                try:
                    for future in as_completed(futures):
                        index = futures[future]
                        status, value = future.result()
                        if store is not None:
                            if status == "ok":
                                store.record_result(store.keys[index], index, value)
                            else:
                                store.record_error(store.keys[index], index, value)
                        if status == "ok":
                            results[index] = value
                        else:
                            failures.append((index, value))
                except BaseException:
                    # Unguarded (storeless) mode propagates the first
                    # cell failure with its original type, like the
                    # legacy backend.map path; cancel cells that have
                    # not started and let in-flight ones drain.
                    for future in futures:
                        future.cancel()
                    raise
    finally:
        if store is not None:
            store.set_executor_stats(executor.stats.to_dict())
        if owned:
            executor.close()
    if failures:
        failures.sort()
        store.finalize()
        messages = [f"{store.keys[index]}: {message}" for index, message in failures]
        raise RuntimeError(
            f"{len(failures)} of {len(cells)} cell(s) failed; completed "
            f"cells are persisted in {store.directory} — re-run with "
            f"resume to re-dispatch only the failures: " + "; ".join(messages)
        )
    if store is not None:
        store.finalize()
    return results


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned ASCII table."""
    columns = [list(column) for column in zip(headers, *rows)] if rows else [
        [header] for header in headers
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_mapping_groups(groups: Sequence[Sequence[str]]) -> str:
    """Render per-core task groups like Table II's "Mapped Tasks" column."""
    parts = []
    for core, tasks in enumerate(groups):
        joined = ",".join(tasks) if tasks else "-"
        parts.append(f"c{core + 1}:{joined}")
    return " | ".join(parts)


def percent_delta(value: float, reference: float) -> float:
    """Relative difference ``(value - reference) / reference`` in percent."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return 100.0 * (value - reference) / reference
