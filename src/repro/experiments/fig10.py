"""Fig. 10 — Exp:3 vs Exp:4 across core counts (60-task random graph).

The paper compares the proposed optimization (Exp:4) against the joint
register-usage/parallelism baseline (Exp:3) on a 60-task random graph
for two to six cores: Exp:4 consistently experiences fewer SEUs (up to
7% fewer at six cores) at a small power premium (about 3%).

:func:`run_fig10` regenerates both series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.backends import BackendSpec
from repro.experiments.common import (
    ExperimentProfile,
    build_optimizer,
    format_table,
    percent_delta,
    run_cells,
)
from repro.mapping.metrics import DesignPoint
from repro.optim.objectives import RegisterTimeProductObjective
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.random_graphs import RandomGraphConfig, random_task_graph

#: Core counts of the Fig. 10 sweep.
CORE_COUNTS: Tuple[int, ...] = (2, 3, 4, 5, 6)

#: Random-graph size of the Fig. 10 workload.
NUM_TASKS = 60


@dataclass
class Fig10Cell:
    """Designs of both experiments at one core count."""

    num_cores: int
    exp3: Optional[DesignPoint]
    exp4: Optional[DesignPoint]

    @property
    def comparable(self) -> bool:
        return self.exp3 is not None and self.exp4 is not None


@dataclass
class Fig10Result:
    """Exp:3 and Exp:4 series across core counts."""

    cells: List[Fig10Cell] = field(default_factory=list)

    def seu_reduction_percent(self) -> Dict[int, float]:
        """Per core count: how much fewer SEUs Exp:4 experiences (+ = fewer)."""
        return {
            cell.num_cores: -percent_delta(
                cell.exp4.expected_seus, cell.exp3.expected_seus
            )
            for cell in self.cells
            if cell.comparable
        }

    def power_premium_percent(self) -> Dict[int, float]:
        """Per core count: Exp:4's extra power over Exp:3 (+ = more power)."""
        return {
            cell.num_cores: percent_delta(cell.exp4.power_mw, cell.exp3.power_mw)
            for cell in self.cells
            if cell.comparable
        }

    def shape_checks(self) -> Dict[str, bool]:
        """The paper's claims: Exp:4 mostly wins on SEUs at modest power cost."""
        reductions = list(self.seu_reduction_percent().values())
        premiums = list(self.power_premium_percent().values())
        if not reductions:
            return {"exp4_reduces_seus_mostly": False, "power_premium_small": False}
        wins = sum(1 for reduction in reductions if reduction > -1.0)
        return {
            "exp4_reduces_seus_mostly": wins >= (len(reductions) + 1) // 2,
            "power_premium_small": all(premium <= 25.0 for premium in premiums),
        }

    def format_table(self) -> str:
        headers = [
            "Cores",
            "Exp:3 P,mW",
            "Exp:3 Gamma",
            "Exp:4 P,mW",
            "Exp:4 Gamma",
            "SEU red.%",
            "P prem.%",
        ]
        rows = []
        reductions = self.seu_reduction_percent()
        premiums = self.power_premium_percent()
        for cell in self.cells:
            if cell.comparable:
                rows.append(
                    [
                        str(cell.num_cores),
                        f"{cell.exp3.power_mw:.2f}",
                        f"{cell.exp3.expected_seus:.2e}",
                        f"{cell.exp4.power_mw:.2f}",
                        f"{cell.exp4.expected_seus:.2e}",
                        f"{reductions[cell.num_cores]:+.1f}",
                        f"{premiums[cell.num_cores]:+.1f}",
                    ]
                )
            else:
                rows.append([str(cell.num_cores)] + ["-"] * 6)
        return format_table(headers, rows)


@dataclass(frozen=True)
class _Fig10CellJob:
    """One core count's Exp:3 + Exp:4 pair, picklable for fan-out."""

    graph: TaskGraph
    deadline_s: float
    num_cores: int
    profile: ExperimentProfile

    def run(self) -> Fig10Cell:
        objective = RegisterTimeProductObjective()
        exp3 = build_optimizer(
            self.graph,
            self.num_cores,
            self.deadline_s,
            self.profile,
            objective=objective,
            seed_offset=self.num_cores,
        ).optimize()
        exp4_outcome = build_optimizer(
            self.graph,
            self.num_cores,
            self.deadline_s,
            self.profile,
            seed_offset=self.num_cores,
        ).optimize()
        # Power-parity comparison (the paper's framing: up to 7% fewer
        # SEUs at only ~3% more power): among the proposed flow's
        # feasible designs, take the min-SEU one whose power stays
        # within a small premium over the Exp:3 baseline.
        exp4 = exp4_outcome.best
        if exp3.best is not None:
            matched = exp4_outcome.best_within_power(
                exp3.best.power_mw, tolerance=0.05
            )
            if matched is not None:
                exp4 = matched
        return Fig10Cell(num_cores=self.num_cores, exp3=exp3.best, exp4=exp4)


def run_fig10(
    profile: Optional[ExperimentProfile] = None,
    graph: Optional[TaskGraph] = None,
    deadline_s: Optional[float] = None,
    core_counts: Sequence[int] = CORE_COUNTS,
    backend: BackendSpec = None,
) -> Fig10Result:
    """Regenerate the Fig. 10 comparison.

    Each core count's Exp:3/Exp:4 pair is one independent cell; cells
    fan out through ``backend`` (defaulting to
    ``profile.experiment_backend``) and are reassembled in core-count
    order, byte-identical to a serial run.
    """
    profile = profile or ExperimentProfile.fast()
    if graph is None:
        config = RandomGraphConfig(num_tasks=NUM_TASKS)
        graph = random_task_graph(config, seed=profile.seed + NUM_TASKS)
        deadline_s = deadline_s if deadline_s is not None else config.deadline_s
    elif deadline_s is None:
        raise ValueError("deadline_s is required with a custom graph")

    jobs = [
        _Fig10CellJob(
            graph=graph, deadline_s=deadline_s, num_cores=cores, profile=profile
        )
        for cores in core_counts
    ]
    result = Fig10Result()
    result.cells.extend(run_cells(jobs, profile, backend=backend, label="fig10"))
    return result
