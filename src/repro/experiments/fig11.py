"""Fig. 11 — impact of the number of voltage scaling levels.

The paper runs the proposed optimization on a six-core MPSoC with the
60-task random graph using 2-, 3- and 4-level scaling tables:

* 4 levels (adding a 236 MHz / 1.2 V point) lowers power a few percent
  at a small SEU increase — more scaling combinations give the power
  minimization more flexibility;
* 2 levels cuts SEUs substantially but costs much more power —
  limited scaling options force faster, higher-voltage cores.

:func:`run_fig11` regenerates the two series over the level presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    ExperimentProfile,
    build_optimizer,
    format_table,
    run_cells,
)
from repro.mapping.metrics import DesignPoint
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.random_graphs import RandomGraphConfig, random_task_graph

#: Scaling-level presets swept by the paper.
LEVEL_COUNTS: Tuple[int, ...] = (2, 3, 4)

#: Platform size and workload of the Fig. 11 study.
NUM_CORES = 6
NUM_TASKS = 60


@dataclass
class Fig11Result:
    """Design points per scaling-level preset."""

    points: Dict[int, Optional[DesignPoint]] = field(default_factory=dict)

    def power_series(self) -> List[Optional[float]]:
        """P (mW) for 2, 3, 4 levels."""
        return [
            self.points[levels].power_mw if self.points.get(levels) else None
            for levels in LEVEL_COUNTS
        ]

    def gamma_series(self) -> List[Optional[float]]:
        """Gamma for 2, 3, 4 levels."""
        return [
            self.points[levels].expected_seus if self.points.get(levels) else None
            for levels in LEVEL_COUNTS
        ]

    def shape_checks(self) -> Dict[str, bool]:
        """The paper's claims, as orderings between the presets."""
        two, three, four = (self.points.get(levels) for levels in LEVEL_COUNTS)
        checks = {
            "all_levels_feasible": all(
                point is not None for point in (two, three, four)
            )
        }
        if checks["all_levels_feasible"]:
            checks["four_levels_no_more_power"] = four.power_mw <= three.power_mw * 1.02
            checks["two_levels_more_power"] = two.power_mw > three.power_mw
            checks["two_levels_fewer_seus"] = two.expected_seus < three.expected_seus
        return checks

    def format_table(self) -> str:
        headers = ["Levels", "P,mW", "Gamma", "Scaling chosen"]
        rows = []
        for levels in LEVEL_COUNTS:
            point = self.points.get(levels)
            if point is None:
                rows.append([str(levels), "-", "-", "-"])
            else:
                rows.append(
                    [
                        str(levels),
                        f"{point.power_mw:.2f}",
                        f"{point.expected_seus:.2e}",
                        ",".join(str(s) for s in point.scaling),
                    ]
                )
        return format_table(headers, rows)


@dataclass(frozen=True)
class _Fig11LevelJob:
    """One scaling-level preset's optimization, picklable for fan-out.

    Same seed offset for every preset: combined with the content-based
    per-scaling seeding, identical physical configurations yield
    identical designs across the presets, so the power orderings
    reflect the tables, not search noise.
    """

    graph: TaskGraph
    deadline_s: float
    num_cores: int
    num_levels: int
    profile: ExperimentProfile

    def run(self) -> Optional[DesignPoint]:
        return build_optimizer(
            self.graph,
            self.num_cores,
            self.deadline_s,
            self.profile,
            num_levels=self.num_levels,
            seed_offset=0,
        ).optimize().best


def run_fig11(
    profile: Optional[ExperimentProfile] = None,
    graph: Optional[TaskGraph] = None,
    deadline_s: Optional[float] = None,
    num_cores: int = NUM_CORES,
    level_counts: Sequence[int] = LEVEL_COUNTS,
    deadline_slack: float = 1.6,
) -> Fig11Result:
    """Regenerate the scaling-level study.

    ``deadline_slack`` loosens the default random-graph deadline so
    that the deepest (66.7 MHz) level is actually usable — the
    2-vs-3-level contrast the paper reports only exists when the
    deadline leaves room for deep scaling (with a deadline pinned just
    above the all-s2 makespan every preset collapses to the same
    design; see EXPERIMENTS.md).
    """
    profile = profile or ExperimentProfile.fast()
    if graph is None:
        config = RandomGraphConfig(num_tasks=NUM_TASKS)
        graph = random_task_graph(config, seed=profile.seed + NUM_TASKS)
        if deadline_s is None:
            deadline_s = config.deadline_s * deadline_slack
    elif deadline_s is None:
        raise ValueError("deadline_s is required with a custom graph")

    # Each preset is an independent cell: fan out through
    # ``profile.experiment_backend`` and stream to the run store when
    # one is configured, reassembled in preset order — the same
    # designs the former in-line loop produced.
    jobs = [
        _Fig11LevelJob(
            graph=graph,
            deadline_s=deadline_s,
            num_cores=num_cores,
            num_levels=levels,
            profile=profile,
        )
        for levels in level_counts
    ]
    points = run_cells(jobs, profile, label="fig11")
    result = Fig11Result()
    for levels, point in zip(level_counts, points):
        result.points[levels] = point
    return result
