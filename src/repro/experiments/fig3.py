"""Fig. 3 — impact of task mapping and voltage scaling on reliability.

Section III of the paper evaluates 120 task mappings of the MPEG-2
decoder on the four-core platform and reports:

* (a) the trade-off between multiprocessor execution time ``T_M`` and
  overall register usage ``R``;
* (b) the SEUs experienced ``Gamma`` versus ``T_M`` with all cores at
  scaling 1 — a concave curve with an interior minimum;
* (c) the same with all cores at scaling 2 — ``T_M`` roughly doubles
  and ``Gamma`` grows by roughly 2.5x.

:func:`run_fig3` reproduces all three panels on sampled mappings and
packages the series plus the paper's qualitative claims as checkable
predicates (:meth:`Fig3Result.shape_checks`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import (
    ExperimentProfile,
    build_evaluator,
    format_table,
    run_cells,
)
from repro.mapping.enumeration import stratified_mappings
from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder


@dataclass
class Fig3Point:
    """One mapping's coordinates across the three panels."""

    mapping: Mapping
    makespan_s1_ms: float
    register_kbits: float
    gamma_s1: float
    makespan_s2_ms: float
    gamma_s2: float


@dataclass
class Fig3Result:
    """The three series of Fig. 3 plus derived shape diagnostics."""

    points: List[Fig3Point] = field(default_factory=list)

    # -- panel accessors ----------------------------------------------------

    def series_a(self) -> List[tuple]:
        """(T_M ms, R kbits) pairs — panel (a)."""
        return [(p.makespan_s1_ms, p.register_kbits) for p in self.points]

    def series_b(self) -> List[tuple]:
        """(T_M ms, Gamma) pairs at scaling 1 — panel (b)."""
        return [(p.makespan_s1_ms, p.gamma_s1) for p in self.points]

    def series_c(self) -> List[tuple]:
        """(T_M ms, Gamma) pairs at scaling 2 — panel (c)."""
        return [(p.makespan_s2_ms, p.gamma_s2) for p in self.points]

    # -- shape diagnostics ---------------------------------------------------

    def tm_r_correlation(self) -> float:
        """Pearson correlation between T_M and R (panel (a) trade-off)."""
        import numpy as np

        tm = np.array([p.makespan_s1_ms for p in self.points])
        reg = np.array([p.register_kbits for p in self.points])
        if tm.std() == 0 or reg.std() == 0:
            return 0.0
        return float(np.corrcoef(tm, reg)[0, 1])

    def gamma_minimum_is_interior(self, margin: float = 0.03) -> bool:
        """Panel (b): Gamma dips — both T_M extremes exceed an interior minimum.

        The paper's concave curve has its minimum "around the middle"
        of the T_M range; in this reconstruction the dip sits closer
        to the fast end because the graph is critical-path-bound (see
        EXPERIMENTS.md), so the check asserts the *shape* — the mean
        Gamma of the lowest-T_M decile and of the highest-T_M decile
        both exceed the minimum by ``margin`` — rather than the dip's
        exact position.
        """
        ordered = sorted(self.points, key=lambda p: p.makespan_s1_ms)
        if len(ordered) < 10:
            return False
        decile = max(len(ordered) // 10, 1)
        minimum = min(p.gamma_s1 for p in ordered)
        left = sum(p.gamma_s1 for p in ordered[:decile]) / decile
        right = sum(p.gamma_s1 for p in ordered[-decile:]) / decile
        interior = min(ordered, key=lambda p: p.gamma_s1)
        strictly_inside = (
            interior.makespan_s1_ms > ordered[0].makespan_s1_ms
            and interior.makespan_s1_ms < ordered[-1].makespan_s1_ms
        )
        return (
            strictly_inside
            and left > minimum * (1.0 + margin)
            and right > minimum * (1.0 + margin)
        )

    def mean_tm_ratio(self) -> float:
        """Panel (c): mean T_M(s=2) / T_M(s=1) — the paper reports ~2."""
        ratios = [
            p.makespan_s2_ms / p.makespan_s1_ms
            for p in self.points
            if p.makespan_s1_ms > 0
        ]
        return sum(ratios) / len(ratios)

    def mean_gamma_ratio(self) -> float:
        """Panel (c): mean Gamma(s=2) / Gamma(s=1) — the paper reports ~2.5."""
        ratios = [p.gamma_s2 / p.gamma_s1 for p in self.points if p.gamma_s1 > 0]
        return sum(ratios) / len(ratios)

    def shape_checks(self) -> Dict[str, bool]:
        """The paper's three observations as booleans."""
        return {
            "observation1_tm_r_tradeoff": self.tm_r_correlation() < -0.2,
            "observation2_gamma_concave_interior_min": self.gamma_minimum_is_interior(),
            "observation3_tm_doubles": 1.7 <= self.mean_tm_ratio() <= 2.3,
            "observation3_gamma_grows": 1.8 <= self.mean_gamma_ratio() <= 3.2,
        }

    def format_table(self, max_rows: int = 10) -> str:
        """A digest table of the sampled mappings."""
        ordered = sorted(self.points, key=lambda p: p.makespan_s1_ms)
        step = max(len(ordered) // max_rows, 1)
        rows = [
            [
                f"{p.makespan_s1_ms:.0f}",
                f"{p.register_kbits:.1f}",
                f"{p.gamma_s1:.3e}",
                f"{p.makespan_s2_ms:.0f}",
                f"{p.gamma_s2:.3e}",
            ]
            for p in ordered[::step][:max_rows]
        ]
        return format_table(
            ["T_M(s=1) ms", "R kbit", "Gamma(s=1)", "T_M(s=2) ms", "Gamma(s=2)"],
            rows,
        )


@dataclass(frozen=True)
class _Fig3PanelJob:
    """One panel scaling's full mapping sweep, picklable for fan-out.

    The job resamples the stratified mapping set (same seed, identical
    sample) and batch-evaluates it at its panel's uniform scaling in a
    private evaluator, so its point list is a pure function of the job
    — what the run store's resume contract needs.
    """

    graph: TaskGraph
    num_cores: int
    scaling_level: int
    deadline_s: float
    profile: ExperimentProfile

    def run(self):
        evaluator = build_evaluator(
            self.graph, self.num_cores, deadline_s=self.deadline_s
        )
        mappings = stratified_mappings(
            self.graph,
            self.num_cores,
            self.profile.fig3_mappings,
            seed=self.profile.seed,
        )
        scaling = (self.scaling_level,) * self.num_cores
        # Batch evaluation: one vectorized call per panel scaling — the
        # whole mapping sample is list-scheduled in a single numpy pass
        # (bit-identical metrics; schedules are skipped, nothing here
        # reads them).
        return evaluator.evaluate_batch(mappings, scaling)


def run_fig3(
    profile: Optional[ExperimentProfile] = None,
    graph: Optional[TaskGraph] = None,
    num_cores: int = 4,
) -> Fig3Result:
    """Reproduce the Fig. 3 study.

    The two panel scalings are independent cells: they fan out through
    ``profile.experiment_backend`` and stream to the run store when
    one is configured, reassembled in panel order — results identical
    to the former in-line loop (evaluation is a pure function, and the
    per-panel evaluators see the same mapping sample).

    Parameters
    ----------
    profile:
        Budgets/seed; ``fast()`` when omitted.  ``fig3_mappings``
        controls the sample size (the paper used 120).
    graph:
        Application; the MPEG-2 decoder when omitted.
    num_cores:
        Platform size (the paper used four cores).
    """
    profile = profile or ExperimentProfile.fast()
    graph = graph or mpeg2_decoder()
    jobs = [
        _Fig3PanelJob(
            graph=graph,
            num_cores=num_cores,
            scaling_level=level,
            deadline_s=MPEG2_DEADLINE_S,
            profile=profile,
        )
        for level in (1, 2)
    ]
    points_1, points_2 = run_cells(jobs, profile, label="fig3")
    result = Fig3Result()
    for point_1, point_2 in zip(points_1, points_2):
        result.points.append(
            Fig3Point(
                mapping=point_1.mapping,
                makespan_s1_ms=point_1.makespan_s * 1e3,
                register_kbits=point_1.register_kbits_total,
                gamma_s1=point_1.expected_seus,
                makespan_s2_ms=point_2.makespan_s * 1e3,
                gamma_s2=point_2.expected_seus,
            )
        )
    return result
