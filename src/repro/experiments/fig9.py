"""Fig. 9 — SEUs and power of Exp:1-3 relative to Exp:4.

The paper fixes the voltage scaling of all four experiments to the
common vector (s1, s2, s3, s4) = (2, 2, 3, 2) and compares the SEUs
experienced and power consumed by the baseline designs against the
proposed one: Exp:2 experiences up to +38% SEUs at -9% power (i.e.
Exp:4 cuts SEUs by 38% while *also* consuming 9% less... relative
direction per the paper's bars: positive = baseline worse).

:func:`run_fig9` takes each experiment's *design* (the Table II
mapping, regenerated via :func:`~repro.experiments.table2.run_table2`
or optimized fresh at the fixed scaling) and re-times it at the common
scaling vector, then reports the relative deltas of each baseline
against Exp:4 — exactly the paper's procedure ("Fig. 9 shows
comparison ... by the decoder design in Exp:1, Exp:2 and Exp:3 ...
with same voltage scaling coefficients").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    ExperimentProfile,
    build_evaluator,
    format_table,
    percent_delta,
    run_cells,
)
from repro.experiments.table2 import EXPERIMENT_LABELS, EXPERIMENT_OBJECTIVES
from repro.mapping.mapping import Mapping
from repro.mapping.metrics import DesignPoint
from repro.optim.annealing import SimulatedAnnealingMapper
from repro.optim.design_optimizer import sea_mapper
from repro.experiments.table2 import Table2Result
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder

#: The common scaling vector of the Fig. 9 comparison.
FIG9_SCALING: Tuple[int, ...] = (2, 2, 3, 2)


def _align_and_evaluate(evaluator, mapping: Mapping, scaling: Tuple[int, ...]):
    """Evaluate ``mapping`` at ``scaling`` under the best core relabeling.

    The MPSoC cores are identical, so a design optimized for one
    per-core scaling vector transfers to another by permuting core
    labels; we pick the permutation with the fewest expected SEUs,
    preferring deadline-feasible ones.
    """
    from itertools import permutations

    best = None
    best_key = None
    for perm in permutations(range(mapping.num_cores)):
        permuted = Mapping(
            {name: perm[mapping.core_of(name)] for name in mapping},
            mapping.num_cores,
        )
        point = evaluator.evaluate(permuted, scaling)
        key = (not point.meets_deadline, point.expected_seus)
        if best_key is None or key < best_key:
            best, best_key = point, key
    return best


@dataclass
class Fig9Result:
    """Per-experiment design points and the relative bars of Fig. 9."""

    points: Dict[str, DesignPoint] = field(default_factory=dict)
    scaling: Tuple[int, ...] = FIG9_SCALING

    def seu_delta_percent(self, experiment: str) -> float:
        """SEUs of ``experiment`` relative to Exp:4, percent."""
        return percent_delta(
            self.points[experiment].expected_seus, self.points["Exp:4"].expected_seus
        )

    def power_delta_percent(self, experiment: str) -> float:
        """Power of ``experiment`` relative to Exp:4, percent."""
        return percent_delta(
            self.points[experiment].power_mw, self.points["Exp:4"].power_mw
        )

    def bars(self) -> List[Tuple[str, float, float]]:
        """(experiment, SEU delta %, power delta %) for Exp:1-3."""
        return [
            (experiment, self.seu_delta_percent(experiment), self.power_delta_percent(experiment))
            for experiment in ("Exp:1", "Exp:2", "Exp:3")
        ]

    def shape_checks(self) -> Dict[str, bool]:
        """The paper's headline claims (the figure's bars).

        * Exp:2 (parallelism-optimized) experiences substantially more
          SEUs than the proposed design (paper: +38% seen from Exp:4);
        * Exp:3 experiences at least as many SEUs as Exp:4;
        * every baseline's SEU bar is non-negative — at the common
          scaling the proposed design experiences the fewest SEUs.
        """
        return {
            "exp2_much_more_seus": self.seu_delta_percent("Exp:2") > 10.0,
            "exp3_not_fewer_seus": self.seu_delta_percent("Exp:3") >= -1.0,
            "all_baselines_more_seus": all(
                self.seu_delta_percent(experiment) >= -1.0
                for experiment in ("Exp:1", "Exp:2", "Exp:3")
            ),
        }

    def format_table(self) -> str:
        headers = ["Exp.", "Gamma", "P,mW", "dSEU% vs Exp:4", "dP% vs Exp:4"]
        rows = []
        for experiment in ("Exp:1", "Exp:2", "Exp:3", "Exp:4"):
            point = self.points[experiment]
            if experiment == "Exp:4":
                dseu = dpower = "-"
            else:
                dseu = f"{self.seu_delta_percent(experiment):+.1f}"
                dpower = f"{self.power_delta_percent(experiment):+.1f}"
            rows.append(
                [
                    experiment,
                    f"{point.expected_seus:.3e}",
                    f"{point.power_mw:.2f}",
                    dseu,
                    dpower,
                ]
            )
        return format_table(headers, rows)


@dataclass(frozen=True)
class _Fig9ExperimentJob:
    """One experiment's fresh optimization at the fixed scaling.

    Picklable fan-out cell: rebuilds its evaluator and mapper with the
    serial loop's exact per-experiment seed, so the produced design
    point is identical wherever (and whenever — resume) it runs.
    """

    experiment: str
    offset: int
    graph: TaskGraph
    scaling: Tuple[int, ...]
    deadline_s: float
    profile: ExperimentProfile

    def run(self) -> DesignPoint:
        objective = EXPERIMENT_OBJECTIVES[self.experiment]
        num_cores = len(self.scaling)
        evaluator = build_evaluator(
            self.graph, num_cores, deadline_s=self.deadline_s
        )
        seed = self.profile.seed + 7000 + self.offset * 131
        if objective is None:  # Exp:4 — the proposed two-stage mapper
            mapper = sea_mapper(search_iterations=self.profile.search_iterations)
            return mapper(evaluator, self.scaling, seed)
        # Exp:1-3 — deadline-unaware simulated annealing ([13])
        initial = Mapping.round_robin(self.graph, num_cores)
        mapper = SimulatedAnnealingMapper(
            evaluator,
            objective,
            config=self.profile.annealing_config(),
            seed=seed,
            deadline_penalty=False,
            require_all_cores=True,
        )
        return mapper.run(initial, self.scaling)


def run_fig9(
    profile: Optional[ExperimentProfile] = None,
    graph: Optional[TaskGraph] = None,
    scaling: Optional[Tuple[int, ...]] = None,
    deadline_s: float = MPEG2_DEADLINE_S,
    table2: Optional["Table2Result"] = None,
) -> Fig9Result:
    """Reproduce the Fig. 9 comparison at a fixed scaling vector.

    Parameters
    ----------
    scaling:
        The common scaling.  Defaults to the scaling the proposed
        optimization chose in the Table II run when ``table2`` is
        given — that is what the paper's (2,2,3,2) was, the Exp:4/
        Exp:3 design scaling — and to (2,2,3,2) otherwise.
    table2:
        Optionally reuse an existing Table II run's designs; when
        omitted the mappings are optimized fresh at ``scaling`` (the
        baselines deadline-unaware, Exp:4 with the proposed two-stage
        mapper), which is equivalent up to search noise.
    """
    profile = profile or ExperimentProfile.fast()
    graph = graph or mpeg2_decoder()
    if scaling is None:
        if table2 is not None:
            scaling = table2.row("Exp:4").point.scaling
        else:
            scaling = FIG9_SCALING
    num_cores = len(scaling)
    evaluator = build_evaluator(graph, num_cores, deadline_s=deadline_s)

    result = Fig9Result(scaling=tuple(scaling))
    if table2 is not None:
        for row in table2.rows:
            result.points[row.experiment] = _align_and_evaluate(
                evaluator, row.point.mapping, tuple(scaling)
            )
        return result

    # Fresh path: the four experiments are independent cells (the
    # evaluator is pure, so private per-cell evaluators produce the
    # exact designs the former shared-evaluator loop did); they fan
    # out through ``profile.experiment_backend`` and stream to the
    # run store when one is configured.
    jobs = [
        _Fig9ExperimentJob(
            experiment=experiment,
            offset=offset,
            graph=graph,
            scaling=tuple(scaling),
            deadline_s=deadline_s,
            profile=profile,
        )
        for offset, experiment in enumerate(EXPERIMENT_OBJECTIVES)
    ]
    points = run_cells(jobs, profile, label="fig9")
    for job, point in zip(jobs, points):
        result.points[job.experiment] = point
    return result


# Re-export labels for reporting convenience.
__all__ = ["FIG9_SCALING", "Fig9Result", "run_fig9", "EXPERIMENT_LABELS"]
