"""Heterogeneous platform × technology node sweep.

Not a paper artifact — the paper's platform is homogeneous ARM7 at one
node.  This experiment exercises the generalized platform model end to
end: a grid of platform presets (the reference ``arm7`` and the mixed
``biglittle``) against technology nodes (45 → 22 → 8 nm, ITRS
projection), each cell evaluating

* a *fixed* design — round-robin mapping at nominal scaling — whose
  metrics isolate the node model (power should track the node's power
  scale, Gamma its SER scale), and
* the full Fig. 4 optimization on that platform/node, reported like
  the paper's tables.

Cells ride the standard fan-out (:func:`~repro.experiments.common.
run_cells`), so the grid streams to the run store under the
``"hetero"`` label and resumes exactly like every other experiment.

Shape checks encode the physics the node model must reproduce on the
homogeneous reference: full-activity power at nominal operating points
scales by exactly the node's power factor (activities are
node-invariant because busy cycles and makespan both stretch by the
same 1/freq factor), while Gamma grows as features shrink — exposure
cycles ``T_M * f`` are node-invariant and the per-bit rate rises by
the SER scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    ExperimentProfile,
    build_evaluator,
    build_optimizer,
    format_table,
    run_cells,
)
from repro.mapping.mapping import Mapping
from repro.mapping.metrics import DesignPoint
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder

#: Platform presets swept (reference first).
PLATFORMS: Tuple[str, ...] = ("arm7", "biglittle")

#: Technology nodes swept (reference node first, ITRS projection).
TECH_NODES: Tuple[str, ...] = ("45nm", "22nm", "8nm")

#: Platform size, matching the paper's Table II configuration.
NUM_CORES = 4

#: The little cores run at 100 MHz with a 1.6x cycle penalty, so the
#: paper's MPEG-2 deadline needs slack for the mixed platform to have
#: feasible designs at all; the same slack applies to every cell so
#: cross-cell comparisons stay apples-to-apples.
DEADLINE_SLACK = 2.0


@dataclass(frozen=True)
class HeteroCellResult:
    """One (platform, node) cell: fixed-design metrics + optimized best."""

    platform: str
    tech_node: str
    fixed_power_mw: float
    fixed_gamma: float
    fixed_makespan_s: float
    best: Optional[DesignPoint]


@dataclass(frozen=True)
class _HeteroCell:
    """One grid cell, picklable for the experiment fan-out."""

    platform: str
    tech_node: str
    num_cores: int
    seed_offset: int
    profile: ExperimentProfile

    def run(self) -> HeteroCellResult:
        graph = mpeg2_decoder()
        deadline_s = MPEG2_DEADLINE_S * DEADLINE_SLACK
        evaluator = build_evaluator(
            graph,
            self.num_cores,
            deadline_s,
            platform=self.platform,
            tech_node=self.tech_node,
        )
        # Level 1 exists in every table at every node (the nominal
        # point never drops below Vth), so the fixed design is
        # well-defined across the whole grid.
        fixed = evaluator.evaluate(
            Mapping.round_robin(graph, self.num_cores), (1,) * self.num_cores
        )
        best = build_optimizer(
            graph,
            self.num_cores,
            deadline_s,
            self.profile.with_platform(self.platform, self.tech_node),
            seed_offset=self.seed_offset,
        ).optimize().best
        return HeteroCellResult(
            platform=self.platform,
            tech_node=self.tech_node,
            fixed_power_mw=fixed.power_mw,
            fixed_gamma=fixed.expected_seus,
            fixed_makespan_s=fixed.makespan_s,
            best=best,
        )


@dataclass
class HeteroResult:
    """The grid, keyed ``(platform, tech_node)`` in sweep order."""

    cells: Dict[Tuple[str, str], HeteroCellResult] = field(default_factory=dict)
    platforms: Tuple[str, ...] = PLATFORMS
    tech_nodes: Tuple[str, ...] = TECH_NODES

    def _series(self, platform: str) -> List[HeteroCellResult]:
        return [self.cells[(platform, node)] for node in self.tech_nodes]

    def shape_checks(self) -> Dict[str, bool]:
        checks = {
            "grid_complete": all(
                (platform, node) in self.cells
                for platform in self.platforms
                for node in self.tech_nodes
            )
        }
        if not checks["grid_complete"]:
            return checks
        reference = self._series(self.platforms[0])
        checks["reference_power_scales_down_with_node"] = all(
            later.fixed_power_mw < earlier.fixed_power_mw
            for earlier, later in zip(reference, reference[1:])
        )
        checks["reference_gamma_grows_as_nodes_shrink"] = all(
            later.fixed_gamma > earlier.fixed_gamma
            for earlier, later in zip(reference, reference[1:])
        )
        checks["reference_feasible_at_every_node"] = all(
            cell.best is not None for cell in reference
        )
        return checks

    def format_table(self) -> str:
        headers = [
            "Platform",
            "Node",
            "P_fix,mW",
            "Gamma_fix",
            "T_M_fix,ms",
            "Best design",
        ]
        rows = []
        for platform in self.platforms:
            for node in self.tech_nodes:
                cell = self.cells.get((platform, node))
                if cell is None:
                    rows.append([platform, node, "-", "-", "-", "-"])
                    continue
                rows.append(
                    [
                        platform,
                        node,
                        f"{cell.fixed_power_mw:.3f}",
                        f"{cell.fixed_gamma:.2e}",
                        f"{cell.fixed_makespan_s * 1e3:.1f}",
                        cell.best.summary() if cell.best else "infeasible",
                    ]
                )
        return format_table(headers, rows)


def run_hetero(
    profile: Optional[ExperimentProfile] = None,
    platforms: Sequence[str] = PLATFORMS,
    tech_nodes: Sequence[str] = TECH_NODES,
    num_cores: int = NUM_CORES,
) -> HeteroResult:
    """Run the platform × node grid (streams/resumes under ``"hetero"``)."""
    profile = profile or ExperimentProfile.fast()
    jobs = [
        _HeteroCell(
            platform=platform,
            tech_node=node,
            num_cores=num_cores,
            seed_offset=index,
            profile=profile,
        )
        for index, (platform, node) in enumerate(
            (platform, node) for platform in platforms for node in tech_nodes
        )
    ]
    results = run_cells(jobs, profile, label="hetero")
    grid = HeteroResult(platforms=tuple(platforms), tech_nodes=tuple(tech_nodes))
    for job, cell in zip(jobs, results):
        grid.cells[(job.platform, job.tech_node)] = cell
    return grid
