"""Plain-text scatter plots for the figure experiments.

The evaluation figures are scatter/line plots; in a terminal-first
library we render them as ASCII scatters so ``repro-seu experiment
fig3`` can *show* the concave Gamma curve, not just tabulate it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def ascii_scatter(
    points: Sequence[Tuple[float, float]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Render (x, y) points as an ASCII scatter plot.

    Axis ranges are the data extents; degenerate ranges collapse to a
    single row/column.  Returns a multi-line string with simple axis
    annotations.
    """
    if not points:
        return "(no data)"
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = int((x - x_low) / x_span * (width - 1))
        row = height - 1 - int((y - y_low) / y_span * (height - 1))
        grid[row][column] = marker

    lines = [f"{y_label}  (max {y_high:.3g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {x_low:.3g} .. {x_high:.3g}   (min {y_label} {y_low:.3g})"
    )
    return "\n".join(lines)


def fig3_scatter(result, panel: str = "b", **kwargs) -> str:
    """ASCII rendering of one Fig. 3 panel.

    Parameters
    ----------
    result:
        A :class:`~repro.experiments.fig3.Fig3Result`.
    panel:
        ``"a"`` (R vs T_M), ``"b"`` (Gamma vs T_M at s=1) or
        ``"c"`` (Gamma vs T_M at s=2).
    """
    series = {
        "a": (result.series_a(), "T_M ms", "R kbit"),
        "b": (result.series_b(), "T_M ms", "Gamma"),
        "c": (result.series_c(), "T_M ms", "Gamma(s=2)"),
    }
    try:
        points, x_label, y_label = series[panel]
    except KeyError:
        raise ValueError(f"unknown Fig. 3 panel {panel!r}") from None
    return ascii_scatter(points, x_label=x_label, y_label=y_label, **kwargs)


def pareto_plot(points, **kwargs) -> str:
    """ASCII rendering of a power/SEU Pareto front."""
    coordinates = [(point.power_mw, point.expected_seus) for point in points]
    return ascii_scatter(
        coordinates, x_label="P mW", y_label="Gamma", marker="o", **kwargs
    )
