"""Report writers: experiment results to Markdown and CSV.

``EXPERIMENTS.md`` and machine-readable artifacts are generated
through this module so the documentation never drifts from what the
code actually produces.

* :func:`checks_markdown` — shape-check verdicts as a Markdown list;
* :func:`table_to_markdown` — ASCII tables re-rendered as Markdown;
* :func:`write_experiment_reports` — run a set of experiments and
  drop one ``<id>.md`` + ``<id>.csv`` pair per artifact in a
  directory.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.experiments.common import ExperimentProfile
from repro.experiments.runner import experiment_ids, run_experiment


def table_to_markdown(ascii_table: str) -> str:
    """Convert a :func:`~repro.experiments.common.format_table` block
    to a GitHub-Markdown table.

    The input format is: header line, dash ruler, data rows, columns
    separated by two-plus spaces.
    """
    lines = [line.rstrip() for line in ascii_table.splitlines() if line.strip()]
    if len(lines) < 2:
        return ascii_table
    header, _ruler, *rows = lines

    def split(line: str) -> List[str]:
        return [cell.strip() for cell in line.split("  ") if cell.strip()]

    header_cells = split(header)
    width = len(header_cells)
    out = ["| " + " | ".join(header_cells) + " |"]
    out.append("|" + "---|" * width)
    for row in rows:
        cells = split(row)
        cells += [""] * (width - len(cells))
        out.append("| " + " | ".join(cells[:width]) + " |")
    return "\n".join(out)


def checks_markdown(checks: Dict[str, bool]) -> str:
    """Shape-check verdicts as a Markdown task list."""
    return "\n".join(
        f"- [{'x' if passed else ' '}] `{name}`" for name, passed in checks.items()
    )


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def ascii_table_to_csv(ascii_table: str) -> str:
    """CSV rendering of a ``format_table`` block."""
    lines = [line.rstrip() for line in ascii_table.splitlines() if line.strip()]
    if len(lines) < 2:
        return ""
    header, _ruler, *rows = lines

    def split(line: str) -> List[str]:
        return [cell.strip() for cell in line.split("  ") if cell.strip()]

    return rows_to_csv(split(header), (split(row) for row in rows))


def experiment_markdown(experiment_id: str, result: Any, profile: ExperimentProfile) -> str:
    """One artifact's full Markdown report."""
    parts = [
        f"## {experiment_id}",
        "",
        f"profile: `{profile.name}` (seed={profile.seed})",
        "",
        table_to_markdown(result.format_table()),
    ]
    checks = getattr(result, "shape_checks", None)
    if checks is not None:
        parts += ["", "Shape checks:", "", checks_markdown(checks())]
    return "\n".join(parts) + "\n"


def write_experiment_reports(
    output_dir: Union[str, Path],
    profile: Optional[ExperimentProfile] = None,
    ids: Optional[Sequence[str]] = None,
) -> Dict[str, Path]:
    """Run experiments and write ``<id>.md``/``<id>.csv`` files.

    Returns experiment id -> markdown path.
    """
    profile = profile or ExperimentProfile.fast()
    ids = list(ids) if ids is not None else list(experiment_ids())
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    for experiment_id in ids:
        result, _report = run_experiment(experiment_id, profile)
        markdown_path = output / f"{experiment_id}.md"
        markdown_path.write_text(
            experiment_markdown(experiment_id, result, profile)
        )
        csv_path = output / f"{experiment_id}.csv"
        csv_path.write_text(ascii_table_to_csv(result.format_table()))
        written[experiment_id] = markdown_path
    return written
