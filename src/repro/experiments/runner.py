"""Experiment orchestration: run any paper artifact by name.

:func:`run_experiment` dispatches on experiment id (``"fig3"``,
``"table2"``, ``"fig9"``, ``"table3"``, ``"fig10"``, ``"fig11"``) and
returns ``(result, report)`` where ``report`` is the printable table
plus the shape-check verdicts.  The CLI and EXPERIMENTS.md generation
both go through here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.exec.backends import BackendSpec
from repro.experiments.common import ExperimentProfile, run_cells
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.hetero import run_hetero
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

_RUNNERS: Dict[str, Callable[..., Any]] = {
    "fig3": run_fig3,
    "table2": run_table2,
    "fig9": run_fig9,
    "table3": run_table3,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "hetero": run_hetero,
}

_TITLES: Dict[str, str] = {
    "fig3": "Fig. 3 — task mapping vs reliability study",
    "table2": "Table II — Exp:1-4 on the MPEG-2 decoder (4 cores)",
    "fig9": "Fig. 9 — Exp:1-3 relative to Exp:4 at fixed scaling",
    "table3": "Table III — architecture allocation sweep",
    "fig10": "Fig. 10 — Exp:3 vs Exp:4 across core counts",
    "fig11": "Fig. 11 — voltage scaling level study",
    "hetero": "Extension — heterogeneous platform x technology node sweep",
}


def experiment_ids() -> Tuple[str, ...]:
    """All known experiment ids, in paper order."""
    return tuple(_RUNNERS)


def run_experiment(
    experiment_id: str, profile: Optional[ExperimentProfile] = None
) -> Tuple[Any, str]:
    """Run one experiment; return its result object and a text report."""
    try:
        runner = _RUNNERS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(_RUNNERS)}"
        ) from None
    profile = profile or ExperimentProfile.fast()
    result = runner(profile)
    report = render_report(experiment_id, result, profile)
    return result, report


def render_report(experiment_id: str, result: Any, profile: ExperimentProfile) -> str:
    """Format a result object into the standard text report."""
    lines = [
        _TITLES.get(experiment_id, experiment_id),
        f"profile: {profile.name} (seed={profile.seed})",
        "",
        result.format_table(),
    ]
    if experiment_id == "fig3":
        from repro.experiments.plots import fig3_scatter

        lines += ["", "Gamma vs T_M (scaling 1) — the concave trade-off:", ""]
        lines.append(fig3_scatter(result, panel="b"))
    checks = getattr(result, "shape_checks", None)
    if checks is not None:
        lines.append("")
        lines.append("shape checks:")
        for name, passed in checks().items():
            lines.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    return "\n".join(lines)


@dataclass(frozen=True)
class _ExperimentJob:
    """One whole experiment as a picklable fan-out cell."""

    experiment_id: str
    profile: ExperimentProfile

    def run(self) -> Tuple[Any, str]:
        return run_experiment(self.experiment_id, self.profile)


def run_all(
    profile: Optional[ExperimentProfile] = None,
    backend: BackendSpec = None,
    ids: Optional[Sequence[str]] = None,
) -> Dict[str, Tuple[Any, str]]:
    """Run every experiment (or the ``ids`` subset); id -> (result, report).

    Experiments are mutually independent, so whole experiments fan out
    through ``backend`` (defaulting to ``profile.experiment_backend``)
    and the returned dict keeps paper order — reports are
    byte-identical to a serial run whichever backend executes them.

    With ``profile.store_dir`` the sweep streams twice over: each
    finished experiment's ``(result, report)`` lands in the ``all``
    run store as it completes, and the experiments that fan cells out
    themselves (table3, fig10, fig3, fig9, fig11) additionally stream
    their own grids cell-by-cell under their own labels — so a crash
    mid-table3 resumes mid-table3, not from the sweep's start.
    """
    profile = profile or ExperimentProfile.fast()
    if backend is not None and backend != "serial":
        warnings.warn(
            "run_all(backend=...) overrides one per-cut pool, which is "
            "deprecated; set profile.exec_plan='dag' to run every "
            "parallel cut on the shared executor instead",
            DeprecationWarning,
            stacklevel=2,
        )
    selected = tuple(ids) if ids is not None else experiment_ids()
    for experiment_id in selected:
        if experiment_id not in _RUNNERS:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; choose from {sorted(_RUNNERS)}"
            )
    jobs = [_ExperimentJob(experiment_id, profile) for experiment_id in selected]
    results = run_cells(jobs, profile, backend=backend, label="all")
    return {
        experiment_id: result for experiment_id, result in zip(selected, results)
    }
