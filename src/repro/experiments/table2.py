"""Table II — soft error-unaware vs the proposed optimization (MPEG-2).

Four design optimizations of the MPEG-2 decoder on the four-core
platform under the tennis-bitstream deadline (437 frames at
29.97 fps):

* Exp:1 — simulated annealing minimizing register usage ``R``;
* Exp:2 — simulated annealing minimizing ``T_M`` (max parallelism);
* Exp:3 — simulated annealing minimizing ``T_M * R``;
* Exp:4 — the proposed soft error-aware two-stage optimization.

Every experiment runs the same Fig. 4 loop (voltage scaling sweep +
mapping + iterative assessment); only the mapping stage differs.  The
result carries the paper's columns — mapped tasks, per-core scaling,
P (mW), R (kbit/cycle), T_M (cycles) and Gamma — plus the qualitative
ordering checks the paper's narrative makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import (
    ExperimentProfile,
    build_optimizer,
    format_mapping_groups,
    format_table,
)
from repro.mapping.metrics import DesignPoint
from repro.optim.objectives import (
    MakespanObjective,
    Objective,
    RegisterTimeProductObjective,
    RegisterUsageObjective,
)
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder

#: Experiment id -> (label, objective); ``None`` marks the proposed flow.
EXPERIMENT_OBJECTIVES: Dict[str, Optional[Objective]] = {
    "Exp:1": RegisterUsageObjective(),
    "Exp:2": MakespanObjective(),
    "Exp:3": RegisterTimeProductObjective(),
    "Exp:4": None,
}

EXPERIMENT_LABELS: Dict[str, str] = {
    "Exp:1": "Reg. Usage [13]",
    "Exp:2": "Parallelism [13]",
    "Exp:3": "Reg. Usage & Paral. [13]",
    "Exp:4": "Proposed",
}


@dataclass
class Table2Row:
    """One experiment's optimized design.

    ``nominal_makespan_s`` is the design's makespan re-timed at the
    all-nominal scaling (1, .., 1) — the scaling-independent measure of
    the mapping's parallelism used by the ordering checks (designs pick
    different scalings, so their wall-clock T_M are not comparable).
    """

    experiment: str
    label: str
    point: DesignPoint
    nominal_makespan_s: float = 0.0

    def cells(self) -> List[str]:
        point = self.point
        return [
            self.experiment,
            format_mapping_groups(point.mapping.core_groups()),
            ",".join(str(s) for s in point.scaling),
            f"{point.power_mw:.2f}",
            f"{point.register_kbits_total:.0f}",
            f"{point.makespan_cycles / 1e9:.2f}",
            f"{point.expected_seus:.3e}",
        ]


@dataclass
class Table2Result:
    """All four rows plus ordering diagnostics."""

    rows: List[Table2Row] = field(default_factory=list)

    def row(self, experiment: str) -> Table2Row:
        """Row by experiment id (``"Exp:1"``..``"Exp:4"``)."""
        for row in self.rows:
            if row.experiment == experiment:
                return row
        raise KeyError(f"no row for {experiment!r}")

    def format_table(self) -> str:
        headers = ["Exp.", "Mapped Tasks", "s_i", "P,mW", "R,kb/c", "T_M(x1e9)", "Gamma"]
        return format_table(headers, [row.cells() for row in self.rows])

    def shape_checks(self) -> Dict[str, bool]:
        """The paper's qualitative claims about Table II.

        * Exp:1 has the lowest register usage of the four designs;
        * Exp:2 has the lowest T_M and the highest register usage;
        * Exp:2 experiences the most SEUs;
        * Exp:4 experiences fewer SEUs than Exp:2 and Exp:3;
        * every design meets the real-time constraint.
        """
        by_id = {row.experiment: row.point for row in self.rows}
        registers = {eid: point.register_bits_total for eid, point in by_id.items()}
        makespans = {row.experiment: row.nominal_makespan_s for row in self.rows}
        gammas = {eid: point.expected_seus for eid, point in by_id.items()}
        return {
            "exp1_min_register_usage": registers["Exp:1"] == min(registers.values()),
            "exp2_min_makespan": makespans["Exp:2"] <= min(makespans.values()) * 1.02,
            "exp2_max_register_usage": registers["Exp:2"] == max(registers.values()),
            "exp2_max_seus": gammas["Exp:2"] >= max(gammas.values()) * 0.98,
            "exp4_fewer_seus_than_exp2": gammas["Exp:4"] < gammas["Exp:2"],
            "exp4_fewer_seus_than_exp3": gammas["Exp:4"] <= gammas["Exp:3"] * 1.02,
            "all_meet_deadline": all(
                point.makespan_s <= MPEG2_DEADLINE_S + 1e-9 for point in by_id.values()
            ),
        }


def run_table2(
    profile: Optional[ExperimentProfile] = None,
    graph: Optional[TaskGraph] = None,
    num_cores: int = 4,
    deadline_s: float = MPEG2_DEADLINE_S,
) -> Table2Result:
    """Run all four Table II experiments."""
    profile = profile or ExperimentProfile.fast()
    graph = graph or mpeg2_decoder()
    result = Table2Result()
    nominal = (1,) * num_cores
    for offset, (experiment, objective) in enumerate(EXPERIMENT_OBJECTIVES.items()):
        optimizer = build_optimizer(
            graph,
            num_cores,
            deadline_s,
            profile,
            objective=objective,
            seed_offset=offset * 1000,
        )
        outcome = optimizer.optimize()
        if outcome.best is None:
            raise RuntimeError(f"{experiment} found no feasible design")
        nominal_point = optimizer.evaluator.evaluate(outcome.best.mapping, nominal)
        result.rows.append(
            Table2Row(
                experiment=experiment,
                label=EXPERIMENT_LABELS[experiment],
                point=outcome.best,
                nominal_makespan_s=nominal_point.makespan_s,
            )
        )
    return result
