"""Table III — architecture allocation: power and SEUs vs core count.

The paper runs the proposed optimization (Exp:4) for the MPEG-2
decoder and random task graphs of 20-100 tasks on MPSoCs with two to
six cores and reports two effects:

* the minimum-power core count is application-dependent (four cores
  for the MPEG-2 decoder under its deadline);
* the number of SEUs experienced grows monotonically with the core
  count (more parallelism -> deeper scaling and more register
  duplication).

:func:`run_table3` regenerates the table; the ``fast`` profile trims
the application set (MPEG-2 plus the 20- and 40-task graphs) while
``full`` covers the paper's six applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.backends import BackendSpec
from repro.experiments.common import (
    ExperimentProfile,
    build_optimizer,
    format_table,
    run_cells,
)
from repro.mapping.metrics import DesignPoint
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S, mpeg2_decoder
from repro.taskgraph.random_graphs import RandomGraphConfig, random_task_graph

#: Core counts swept by the paper.
CORE_COUNTS: Tuple[int, ...] = (2, 3, 4, 5, 6)

#: Random-graph sizes of the paper's application set.
RANDOM_SIZES_FULL: Tuple[int, ...] = (20, 40, 60, 80, 100)
RANDOM_SIZES_FAST: Tuple[int, ...] = (20, 40)


@dataclass
class Table3Cell:
    """One (application, core count) design."""

    app: str
    num_cores: int
    point: Optional[DesignPoint]

    @property
    def feasible(self) -> bool:
        return self.point is not None


@dataclass
class Table3Result:
    """The allocation sweep, indexed by application then core count."""

    cells: Dict[str, Dict[int, Table3Cell]] = field(default_factory=dict)
    core_counts: Tuple[int, ...] = CORE_COUNTS

    def apps(self) -> List[str]:
        """Application row labels, in insertion order."""
        return list(self.cells)

    def cell(self, app: str, num_cores: int) -> Table3Cell:
        return self.cells[app][num_cores]

    def power_series(self, app: str) -> List[Optional[float]]:
        """P (mW) across core counts for one application."""
        return [
            self.cells[app][cores].point.power_mw
            if self.cells[app][cores].feasible
            else None
            for cores in self.core_counts
        ]

    def gamma_series(self, app: str) -> List[Optional[float]]:
        """Gamma across core counts for one application."""
        return [
            self.cells[app][cores].point.expected_seus
            if self.cells[app][cores].feasible
            else None
            for cores in self.core_counts
        ]

    def min_power_cores(self, app: str) -> int:
        """The core count with minimum power for one application."""
        series = [
            (power, cores)
            for power, cores in zip(self.power_series(app), self.core_counts)
            if power is not None
        ]
        if not series:
            raise ValueError(f"no feasible design for {app!r}")
        return min(series)[1]

    def gamma_monotonicity(self, app: str, slack: float = 0.1) -> float:
        """Fraction of adjacent core-count steps where Gamma grew.

        ``slack`` tolerates small non-monotonic dips (search noise);
        a step counts as growing when Gamma(next) > (1 - slack) *
        Gamma(prev).
        """
        series = [gamma for gamma in self.gamma_series(app) if gamma is not None]
        if len(series) < 2:
            return 1.0
        growing = sum(
            1
            for prev, nxt in zip(series, series[1:])
            if nxt > (1.0 - slack) * prev
        )
        return growing / (len(series) - 1)

    def shape_checks(self) -> Dict[str, bool]:
        """The paper's two observations, aggregated over applications."""
        monotone = [self.gamma_monotonicity(app) for app in self.apps()]
        return {
            "gamma_grows_with_cores": sum(monotone) / len(monotone) >= 0.7,
            "min_power_not_always_max_cores": any(
                self.min_power_cores(app) < max(self.core_counts)
                for app in self.apps()
            ),
        }

    def format_table(self) -> str:
        headers = ["App."]
        for cores in self.core_counts:
            headers += [f"P({cores}c)", f"G({cores}c)"]
        rows = []
        for app in self.apps():
            row = [app]
            for cores in self.core_counts:
                cell = self.cells[app][cores]
                if cell.feasible:
                    row += [
                        f"{cell.point.power_mw:.2f}",
                        f"{cell.point.expected_seus:.2e}",
                    ]
                else:
                    row += ["-", "-"]
            rows.append(row)
        return format_table(headers, rows)


def table3_applications(
    profile: ExperimentProfile,
) -> List[Tuple[str, TaskGraph, float]]:
    """The application set: (label, graph, deadline seconds)."""
    sizes = RANDOM_SIZES_FULL if profile.name == "full" else RANDOM_SIZES_FAST
    apps: List[Tuple[str, TaskGraph, float]] = [
        ("MPEG-2", mpeg2_decoder(), MPEG2_DEADLINE_S)
    ]
    for size in sizes:
        config = RandomGraphConfig(num_tasks=size)
        graph = random_task_graph(config, seed=profile.seed + size)
        apps.append((f"{size} tasks", graph, config.deadline_s))
    return apps


@dataclass(frozen=True)
class _Table3CellJob:
    """One (application, core count) optimization, picklable for fan-out.

    The cell rebuilds its optimizer from scratch with the serial
    loop's exact per-cell seed (``app_index * 101 + cores``), so the
    produced design is identical wherever it runs.
    """

    label: str
    graph: TaskGraph
    deadline_s: float
    num_cores: int
    seed_offset: int
    profile: ExperimentProfile

    def run(self) -> Table3Cell:
        outcome = build_optimizer(
            self.graph,
            self.num_cores,
            self.deadline_s,
            self.profile,
            seed_offset=self.seed_offset,
        ).optimize()
        return Table3Cell(
            app=self.label, num_cores=self.num_cores, point=outcome.best
        )


def run_table3(
    profile: Optional[ExperimentProfile] = None,
    core_counts: Sequence[int] = CORE_COUNTS,
    applications: Optional[List[Tuple[str, TaskGraph, float]]] = None,
    backend: BackendSpec = None,
) -> Table3Result:
    """Run the architecture-allocation sweep.

    The application × core-count grid is embarrassingly parallel:
    cells fan out through ``backend`` (defaulting to
    ``profile.experiment_backend``) with per-cell seeds and are
    reassembled in grid order, so the resulting table — and every
    shape check over it — is byte-identical to a serial run.
    """
    profile = profile or ExperimentProfile.fast()
    applications = applications or table3_applications(profile)
    jobs = [
        _Table3CellJob(
            label=label,
            graph=graph,
            deadline_s=deadline_s,
            num_cores=cores,
            seed_offset=app_index * 101 + cores,
            profile=profile,
        )
        for app_index, (label, graph, deadline_s) in enumerate(applications)
        for cores in core_counts
    ]
    cells = run_cells(jobs, profile, backend=backend, label="table3")
    result = Table3Result(core_counts=tuple(core_counts))
    for cell in cells:
        result.cells.setdefault(cell.app, {})[cell.num_cores] = cell
    return result
