"""Soft-error models: SER vs voltage, SEU events and fault injection.

* :class:`~repro.faults.ser.SERModel` — soft error rate per bit per
  cycle as a function of supply voltage (exponential low-voltage
  susceptibility, after Chandra & Aitken [2]).
* :mod:`~repro.faults.seu` — SEU event records and Poisson event-count
  sampling.
* :class:`~repro.faults.injector.FaultInjector` — Monte-Carlo SEU
  injection over a simulated register-occupancy trace; validates the
  closed-form expectation of Eq. (3).
"""

from repro.faults.ser import SERModel, DEFAULT_SER_PER_BIT_PER_CYCLE
from repro.faults.seu import SEUEvent, sample_seu_count
from repro.faults.injector import FaultInjectionResult, FaultInjector
from repro.faults.reliability import (
    expected_failures,
    failure_probability,
    gamma_for_failure_budget,
    mean_executions_to_failure,
    ser_sweep,
)
from repro.faults.recovery import RecoveryAnalysis, analyze_recovery

__all__ = [
    "DEFAULT_SER_PER_BIT_PER_CYCLE",
    "FaultInjectionResult",
    "FaultInjector",
    "RecoveryAnalysis",
    "SERModel",
    "SEUEvent",
    "analyze_recovery",
    "expected_failures",
    "failure_probability",
    "gamma_for_failure_budget",
    "mean_executions_to_failure",
    "sample_seu_count",
    "ser_sweep",
]
