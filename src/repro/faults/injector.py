"""Monte-Carlo SEU fault injection over a simulated occupancy trace.

For every occupancy interval (core, resident registers, cycle window)
the injector draws the upset count from a Poisson distribution with
mean ``lambda_i * bits * cycles`` (the per-core rate reflects the
core's scaled voltage) and optionally materializes individual
:class:`~repro.faults.seu.SEUEvent` records — the struck register
chosen with probability proportional to its size, the time uniform in
the window.

The grand total is the simulated counterpart of Eq. (3)'s expected
``Gamma``; tests check agreement within sampling error, which is the
validation the paper performs between its analytic model and its
SystemC fault-injection campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.faults.ser import SERModel
from repro.faults.seu import SEUEvent
from repro.sim.simulator import SimulationResult


@dataclass
class FaultInjectionResult:
    """Outcome of one injection campaign.

    Attributes
    ----------
    total_seus:
        Injected SEU count summed over cores (``Gamma`` measured).
    per_core_seus:
        Core -> injected count.
    expected_seus:
        The analytic mean the draws came from (Eq. 3 on the trace).
    events:
        Materialized event records (at most ``max_events``).
    runs:
        Number of independent campaign repetitions aggregated.
    """

    total_seus: int
    per_core_seus: Dict[int, int]
    expected_seus: float
    events: List[SEUEvent] = field(default_factory=list)
    runs: int = 1

    @property
    def mean_seus_per_run(self) -> float:
        """Average injected SEUs per campaign repetition."""
        return self.total_seus / max(self.runs, 1)


class FaultInjector:
    """Poisson SEU injector bound to an SER model.

    Parameters
    ----------
    ser_model:
        Voltage-dependent soft error rate.
    seed:
        Seed for the campaign's random generator.
    max_events:
        Cap on materialized event records (counts are always exact;
        the cap only bounds memory).
    """

    def __init__(
        self,
        ser_model: Optional[SERModel] = None,
        seed: Optional[int] = None,
        max_events: int = 10_000,
    ) -> None:
        self.ser_model = ser_model or SERModel()
        self._rng = np.random.default_rng(seed)
        if max_events < 0:
            raise ValueError("max_events must be non-negative")
        self.max_events = max_events

    def inject(
        self,
        result: SimulationResult,
        voltages_v: Sequence[float],
        collect_events: bool = False,
        runs: int = 1,
    ) -> FaultInjectionResult:
        """Run ``runs`` independent campaigns over one simulation result.

        Parameters
        ----------
        result:
            Simulator output (supplies the occupancy trace).
        voltages_v:
            Per-core supply voltages; determine per-core ``lambda_i``.
        collect_events:
            Materialize individual upset records (costly for large
            counts; capped at ``max_events``).
        runs:
            Independent repetitions to aggregate (variance reduction
            for comparisons against the analytic expectation).
        """
        if runs <= 0:
            raise ValueError("runs must be positive")
        num_cores = len(result.frequencies_hz)
        if len(voltages_v) != num_cores:
            raise ValueError(
                f"{len(voltages_v)} voltages for {num_cores} cores"
            )
        # Exposure is bits x cycles at each core's own clock, with the
        # per-cycle rate set by the core's voltage (Eq. 3).
        rates = [self.ser_model.rate(voltage) for voltage in voltages_v]

        expected = 0.0
        for interval in result.occupancy:
            expected += rates[interval.core] * interval.exposure_bit_cycles

        total = 0
        per_core: Dict[int, int] = {core: 0 for core in range(num_cores)}
        events: List[SEUEvent] = []
        for _ in range(runs):
            for interval in result.occupancy:
                mean = rates[interval.core] * interval.exposure_bit_cycles
                if mean <= 0.0:
                    continue
                count = int(self._rng.poisson(mean))
                if count == 0:
                    continue
                total += count
                per_core[interval.core] += count
                if collect_events and len(events) < self.max_events:
                    events.extend(
                        self._materialize(interval, min(count, self.max_events - len(events)))
                    )
        return FaultInjectionResult(
            total_seus=total,
            per_core_seus=per_core,
            expected_seus=expected * runs,
            events=events,
            runs=runs,
        )

    def _materialize(self, interval, count: int) -> List[SEUEvent]:
        """Draw ``count`` event records within one occupancy interval."""
        registers = sorted(interval.registers)
        if not registers:
            return []
        weights = np.array([register.bits for register in registers], dtype=float)
        weights /= weights.sum()
        choices = self._rng.choice(len(registers), size=count, p=weights)
        times = self._rng.uniform(interval.start_s, max(interval.end_s, interval.start_s), size=count)
        events = []
        for choice, time_s in zip(choices, times):
            register = registers[int(choice)]
            events.append(
                SEUEvent(
                    time_s=float(time_s),
                    core=interval.core,
                    register_name=register.name,
                    bit_index=int(self._rng.integers(0, register.bits)),
                )
            )
        return events
