"""Recovery-slack analysis: re-execution head-room under the deadline.

The paper positions itself against fault-tolerance work that masks
SEUs by *re-executing* affected tasks (Izosimov et al. [8], Pop et
al. [9]).  A natural companion analysis for any optimized design is:
how much re-execution can the schedule absorb before the real-time
constraint breaks?

For a design point with makespan ``T_M`` and deadline ``T_Mref``, the
*recovery slack* is ``T_Mref - T_M``.  Conservatively charging a
re-executed task its full duration on its own core (appended at the
end of the schedule — no reordering), a design tolerates a set of
re-executions whenever their summed durations fit in the slack.  The
module computes:

* :func:`recovery_slack_s` — the raw slack;
* :func:`max_reexecutions` — how many times the *worst-case* task
  could be re-executed;
* :func:`tolerable_task_set` — the largest number of distinct tasks
  (chosen worst-first) whose single re-execution still fits;
* :class:`RecoveryAnalysis` — the bundle, via :func:`analyze_recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.mapping.metrics import DesignPoint


def recovery_slack_s(point: DesignPoint, deadline_s: float) -> float:
    """Deadline head-room of a design, in seconds (negative if late)."""
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    return deadline_s - point.makespan_s


def _task_durations(point: DesignPoint) -> List[Tuple[str, float]]:
    """(task, duration seconds) for every scheduled task, longest first."""
    if point.schedule is None:
        raise ValueError("design point carries no schedule")
    durations = [(entry.name, entry.duration_s) for entry in point.schedule]
    durations.sort(key=lambda item: (-item[1], item[0]))
    return durations


def max_reexecutions(point: DesignPoint, deadline_s: float) -> int:
    """Guaranteed re-execution count for any single (worst-case) task.

    The conservative bound: the longest task re-executed ``k`` times
    appended serially must fit in the slack.
    """
    slack = recovery_slack_s(point, deadline_s)
    if slack < 0:
        return 0
    durations = _task_durations(point)
    worst = durations[0][1]
    if worst <= 0:
        return 0
    return int(slack / worst)


def tolerable_task_set(point: DesignPoint, deadline_s: float) -> List[str]:
    """Largest worst-first set of distinct tasks re-executable once each.

    Greedy from the longest task down: if even the longest fits, add
    the next, and so on — the adversarial single-fault-per-task model
    of [8] with full serial re-execution charging.
    """
    slack = recovery_slack_s(point, deadline_s)
    if slack < 0:
        return []
    chosen: List[str] = []
    used = 0.0
    for name, duration in _task_durations(point):
        if used + duration <= slack + 1e-12:
            chosen.append(name)
            used += duration
        else:
            break
    return chosen


@dataclass(frozen=True)
class RecoveryAnalysis:
    """Re-execution head-room of one design.

    Attributes
    ----------
    slack_s:
        Deadline minus makespan.
    worst_case_reexecutions:
        Times the longest task could re-run within the slack.
    tolerable_tasks:
        Longest-first distinct tasks re-executable once each.
    slack_fraction:
        Slack relative to the deadline (0 = no head-room).
    """

    slack_s: float
    worst_case_reexecutions: int
    tolerable_tasks: Tuple[str, ...]
    slack_fraction: float

    @property
    def tolerates_any_single_fault(self) -> bool:
        """Whether every task could individually be re-executed."""
        return self.worst_case_reexecutions >= 1


def analyze_recovery(point: DesignPoint, deadline_s: float) -> RecoveryAnalysis:
    """Full recovery analysis for one design point."""
    slack = recovery_slack_s(point, deadline_s)
    return RecoveryAnalysis(
        slack_s=slack,
        worst_case_reexecutions=max_reexecutions(point, deadline_s),
        tolerable_tasks=tuple(tolerable_task_set(point, deadline_s)),
        slack_fraction=max(slack, 0.0) / deadline_s,
    )
