"""Reliability figures of merit derived from the expected SEU count.

The paper reports reliability as the raw number of SEUs experienced
(Eq. 3).  Downstream users usually want failure-oriented metrics; this
module derives them under the standard assumptions that upsets arrive
as a Poisson process and that each upset independently causes an
observable failure with probability ``avf`` (the architectural
vulnerability factor — most register upsets are masked):

* :func:`failure_probability` — probability of at least one failure
  over an execution window with expectation ``gamma``;
* :func:`mean_executions_to_failure` — how many back-to-back runs of
  the application complete on average before the first failure;
* :func:`ser_sweep` — Gamma as a function of the nominal SER, the
  sensitivity study implied by the paper's "for a soft error rate of
  1e-9" framing.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.mapping.mapping import Mapping
from repro.mapping.metrics import MappingEvaluator

#: Default architectural vulnerability factor: the fraction of register
#: upsets that become observable failures.  Literature values for
#: embedded cores typically fall between 1% and 10%.
DEFAULT_AVF = 0.05


def failure_probability(gamma: float, avf: float = DEFAULT_AVF) -> float:
    """P(at least one failure) for expected SEU count ``gamma``.

    Upsets are Poisson with mean ``gamma``; each is fatal independently
    with probability ``avf``, so failures are Poisson with mean
    ``gamma * avf`` and ``P = 1 - exp(-gamma * avf)``.
    """
    _check_gamma_avf(gamma, avf)
    return 1.0 - math.exp(-gamma * avf)


def mean_executions_to_failure(gamma: float, avf: float = DEFAULT_AVF) -> float:
    """Expected number of executions until the first failure.

    The failure count per execution is Poisson(``gamma * avf``); runs
    are independent, so the first failing run is geometric with success
    probability :func:`failure_probability` and mean ``1/p``.  Returns
    ``inf`` when the failure probability is zero.
    """
    probability = failure_probability(gamma, avf)
    if probability <= 0.0:
        return math.inf
    return 1.0 / probability


def expected_failures(gamma: float, avf: float = DEFAULT_AVF) -> float:
    """Expected observable failures over one execution window."""
    _check_gamma_avf(gamma, avf)
    return gamma * avf


def ser_sweep(
    evaluator: MappingEvaluator,
    mapping: Mapping,
    scaling: Sequence[int],
    reference_rates: Sequence[float],
) -> List[Tuple[float, float]]:
    """Gamma as a function of the nominal SER.

    Evaluates the same design under a family of SER models that differ
    only in the 1 V reference rate; by Eq. (3) Gamma scales linearly,
    which makes this a cheap sanity sweep and a way to re-anchor the
    reproduction to a different technology node.

    Returns ``[(reference_rate, gamma), ...]`` in input order.
    """
    base = evaluator.ser_model
    results: List[Tuple[float, float]] = []
    for rate in reference_rates:
        if rate <= 0:
            raise ValueError(f"reference rate must be positive, got {rate}")
        swept = MappingEvaluator(
            evaluator.graph,
            evaluator.platform,
            ser_model=base.with_reference_rate(rate),
            power_model=evaluator.power_model,
            deadline_s=evaluator.deadline_s,
            cache_size=0,
        )
        point = swept.evaluate(mapping, tuple(scaling))
        results.append((rate, point.expected_seus))
    return results


def gamma_for_failure_budget(
    failure_budget: float, avf: float = DEFAULT_AVF
) -> float:
    """Largest Gamma whose failure probability stays within a budget.

    Inverts :func:`failure_probability`; useful to turn a reliability
    requirement ("at most 1% chance of a corrupted decode") into a
    Gamma constraint for the optimizer.
    """
    if not 0.0 < failure_budget < 1.0:
        raise ValueError("failure budget must be in (0, 1)")
    if avf <= 0.0:
        raise ValueError("AVF must be positive to invert")
    return -math.log(1.0 - failure_budget) / avf


def _check_gamma_avf(gamma: float, avf: float) -> None:
    if gamma < 0:
        raise ValueError(f"gamma must be non-negative, got {gamma}")
    if not 0.0 <= avf <= 1.0:
        raise ValueError(f"AVF must be in [0, 1], got {avf}")
