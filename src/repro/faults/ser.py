"""Soft error rate (SER) as a function of supply voltage.

The paper assumes a nominal SER of 1e-9 SEU per bit per clock cycle at
the nominal 1 V supply and, citing Chandra & Aitken [2], an exponential
increase of SEU susceptibility as Vdd is reduced.  We model

    lambda(V) = lambda_ref * exp(beta * (V_ref - V) / V_ref)

with ``V_ref = 1.0 V``.  ``beta`` is calibrated against the paper's own
observation (Section III, Observation 3): scaling all cores from s=1
(1 V) to s=2 (0.58 V) raises the SEUs experienced by ~2.5x, which the
paper attributes to the Vdd-lambda relationship of [2] (the exposure in
*cycles* is frequency-invariant — see
:mod:`repro.mapping.metrics`).  Hence lambda(0.58 V)/lambda(1 V) = 2.5
and ``beta = ln(2.5) / 0.42 ~= 2.1815``.

Voltages above the reference (e.g. the 1.2 V boost level of the
four-level table) reduce the rate, consistent with the same law.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The paper's nominal soft error rate: 1e-9 SEU per bit per cycle,
#: with the cycle understood at the nominal (reference) clock.
DEFAULT_SER_PER_BIT_PER_CYCLE = 1.0e-9

#: Reference (nominal) supply voltage for ARM7TDMI.
DEFAULT_REFERENCE_VDD_V = 1.0

#: Clock frequency at which the SER was characterized (the nominal
#: ARM7 clock).  Only used to translate the per-cycle rate into a
#: per-second rate for reporting (e.g. "1 SEU per 10 ms for a 1 kbit
#: register bank").
DEFAULT_REFERENCE_FREQUENCY_HZ = 200.0e6

#: Exponential susceptibility coefficient; see module docstring.
DEFAULT_BETA = math.log(2.5) / 0.42


@dataclass(frozen=True)
class SERModel:
    """Voltage-dependent soft error rate.

    Attributes
    ----------
    reference_rate:
        ``lambda_ref`` — SEUs per bit per cycle at ``reference_vdd_v``.
    reference_vdd_v:
        The voltage at which ``reference_rate`` holds.
    beta:
        Exponential susceptibility coefficient (dimensionless).
    """

    reference_rate: float = DEFAULT_SER_PER_BIT_PER_CYCLE
    reference_vdd_v: float = DEFAULT_REFERENCE_VDD_V
    beta: float = DEFAULT_BETA
    reference_frequency_hz: float = DEFAULT_REFERENCE_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.reference_rate <= 0:
            raise ValueError("reference rate must be positive")
        if self.reference_vdd_v <= 0:
            raise ValueError("reference voltage must be positive")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.reference_frequency_hz <= 0:
            raise ValueError("reference frequency must be positive")

    def rate(self, vdd_v: float) -> float:
        """``lambda(V)`` — SEUs per bit per cycle at supply ``vdd_v``."""
        if vdd_v <= 0:
            raise ValueError(f"Vdd must be positive, got {vdd_v}")
        exponent = self.beta * (self.reference_vdd_v - vdd_v) / self.reference_vdd_v
        return self.reference_rate * math.exp(exponent)

    def rate_ratio(self, vdd_v: float) -> float:
        """``lambda(V) / lambda_ref`` — susceptibility multiplier."""
        return self.rate(vdd_v) / self.reference_rate

    def rate_per_bit_second(self, vdd_v: float) -> float:
        """``lambda`` converted to SEUs per bit per *second* of wall time."""
        return self.rate(vdd_v) * self.reference_frequency_hz

    def with_reference_rate(self, reference_rate: float) -> "SERModel":
        """A copy at a different nominal SER (e.g. for SER sweeps)."""
        return SERModel(
            reference_rate=reference_rate,
            reference_vdd_v=self.reference_vdd_v,
            beta=self.beta,
            reference_frequency_hz=self.reference_frequency_hz,
        )

    def expected_seus(self, bits: float, cycles: float, vdd_v: float) -> float:
        """Expected SEU count for ``bits`` exposed over ``cycles`` at ``vdd_v``.

        ``cycles`` are *reference-clock* cycles (wall time times the
        reference frequency).
        """
        if bits < 0 or cycles < 0:
            raise ValueError("bits and cycles must be non-negative")
        return self.rate(vdd_v) * bits * cycles

    def expected_seus_wall_time(
        self, bits: float, seconds: float, vdd_v: float
    ) -> float:
        """Expected SEU count for ``bits`` exposed for ``seconds`` at ``vdd_v``."""
        if bits < 0 or seconds < 0:
            raise ValueError("bits and seconds must be non-negative")
        return self.rate_per_bit_second(vdd_v) * bits * seconds
