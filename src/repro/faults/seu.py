"""SEU event records and Poisson event-count sampling.

Following the fault-injection technique of [11] (Section II-B of the
paper): for a given soft error rate the *number* of SEUs over an
exposure window is Poisson-distributed with mean ``lambda * bits *
cycles``, and each upset strikes a uniformly random bit at a uniformly
random cycle within the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class SEUEvent:
    """One injected single-event upset.

    Attributes
    ----------
    time_s:
        Wall-clock instant of the upset.
    core:
        Core whose register space was struck.
    register_name:
        The register block hit.
    bit_index:
        Bit offset within the block.
    """

    time_s: float
    core: int
    register_name: str
    bit_index: int

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("event time must be non-negative")
        if self.core < 0:
            raise ValueError("core index must be non-negative")
        if self.bit_index < 0:
            raise ValueError("bit index must be non-negative")


def sample_seu_count(
    rate_per_bit_cycle: float,
    bits: float,
    cycles: float,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Draw the SEU count for one exposure window.

    Parameters
    ----------
    rate_per_bit_cycle:
        ``lambda`` — SEUs per bit per cycle.
    bits / cycles:
        Exposure window: resident bits and window length in cycles.
    rng:
        Source of randomness; a fresh default generator when omitted.
    """
    if rate_per_bit_cycle < 0:
        raise ValueError("rate must be non-negative")
    if bits < 0 or cycles < 0:
        raise ValueError("bits and cycles must be non-negative")
    mean = rate_per_bit_cycle * bits * cycles
    if mean == 0.0:
        return 0
    if rng is None:
        rng = np.random.default_rng()
    return int(rng.poisson(mean))
