"""Task mapping: assignment of tasks to cores and its metrics.

* :class:`~repro.mapping.mapping.Mapping` — an immutable-by-discipline
  assignment of every task to a core, with move/swap constructors used
  by the optimizers.
* :mod:`~repro.mapping.metrics` — register usage (Eq. 8), per-core
  execution time (Eq. 7), the pooled makespan estimate (Eq. 6), the
  expected SEU count (Eq. 3) and the full design-point evaluator that
  combines scheduling, power and reliability.
* :mod:`~repro.mapping.enumeration` — systematic and sampled mapping
  enumeration used by the Fig. 3 study.
"""

from repro.mapping.mapping import Mapping
from repro.mapping.incremental import (
    REBUILD_TASK_THRESHOLD,
    IncrementalMappingState,
    MoveEstimate,
    screen_lower_bound,
)
from repro.mapping.metrics import (
    DesignPoint,
    MappingEvaluator,
    SignatureKey,
    SignatureTracker,
    core_execution_cycles,
    core_register_bits,
    expected_seus,
    pooled_makespan_s,
    set_signature_validation,
    total_register_bits,
)
from repro.mapping.enumeration import (
    contiguous_mappings,
    enumerate_mappings,
    num_distinct_mappings,
    sample_mappings,
    stratified_mappings,
)

__all__ = [
    "DesignPoint",
    "IncrementalMappingState",
    "Mapping",
    "MappingEvaluator",
    "MoveEstimate",
    "REBUILD_TASK_THRESHOLD",
    "SignatureKey",
    "SignatureTracker",
    "screen_lower_bound",
    "set_signature_validation",
    "contiguous_mappings",
    "core_execution_cycles",
    "core_register_bits",
    "enumerate_mappings",
    "expected_seus",
    "num_distinct_mappings",
    "pooled_makespan_s",
    "sample_mappings",
    "stratified_mappings",
    "total_register_bits",
]
