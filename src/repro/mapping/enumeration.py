"""Mapping enumeration and sampling (the Fig. 3 study).

Section III evaluates 120 distinct task mappings of the MPEG-2 decoder
on four cores to expose the R/T_M trade-off.  This module provides:

* :func:`num_distinct_mappings` — the count of surjective task-to-core
  assignments up to core relabelling (cores are identical, so mappings
  differing only by a core permutation are the same design);
* :func:`enumerate_mappings` — deterministic enumeration of canonical
  mappings (optionally capped);
* :func:`sample_mappings` — seeded random sampling of distinct
  canonical mappings, used to regenerate Fig. 3 with any sample size.

Canonical form: cores are labelled in order of first appearance when
tasks are visited in the graph's topological order.  Two assignments
that differ only by a permutation of (identical) cores canonicalize to
the same :class:`~repro.mapping.mapping.Mapping`.
"""

from __future__ import annotations

import random
from math import comb
from typing import Dict, Iterator, List, Optional

from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph


def _stirling2(n: int, k: int) -> int:
    """Stirling numbers of the second kind (partitions of n into k blocks)."""
    if k < 0 or k > n:
        return 0
    if k == 0:
        return 1 if n == 0 else 0
    # Explicit-formula sum; exact integer arithmetic.
    total = 0
    for j in range(k + 1):
        total += (-1) ** (k - j) * comb(k, j) * j**n
    return total // _factorial(k)


def _factorial(k: int) -> int:
    result = 1
    for value in range(2, k + 1):
        result *= value
    return result


def num_distinct_mappings(num_tasks: int, num_cores: int, require_all_cores: bool = True) -> int:
    """Distinct mappings of ``num_tasks`` onto identical cores.

    With ``require_all_cores`` the count is the Stirling number
    S(N, C); otherwise it is the sum of S(N, k) for k = 1..C (any
    number of cores may stay empty).
    """
    if num_tasks <= 0 or num_cores <= 0:
        raise ValueError("num_tasks and num_cores must be positive")
    if require_all_cores:
        return _stirling2(num_tasks, num_cores)
    return sum(_stirling2(num_tasks, k) for k in range(1, num_cores + 1))


def canonicalize(mapping: Mapping, graph: TaskGraph) -> Mapping:
    """Relabel cores in order of first appearance along topological order."""
    relabel: Dict[int, int] = {}
    for name in graph.topological_order():
        core = mapping.core_of(name)
        if core not in relabel:
            relabel[core] = len(relabel)
    return Mapping(
        {name: relabel[mapping.core_of(name)] for name in mapping},
        mapping.num_cores,
    )


def enumerate_mappings(
    graph: TaskGraph,
    num_cores: int,
    require_all_cores: bool = True,
    limit: Optional[int] = None,
) -> Iterator[Mapping]:
    """Yield canonical mappings deterministically.

    Tasks are assigned in topological order using the restricted-growth
    encoding of set partitions: the first task goes to core 0 and each
    subsequent task may use any already-used core or the next fresh
    one.  This enumerates every canonical mapping exactly once.

    Parameters
    ----------
    require_all_cores:
        When true, only mappings using all ``num_cores`` cores are
        yielded (the paper's platform has no idle cores).
    limit:
        Stop after this many mappings.
    """
    if num_cores <= 0:
        raise ValueError("num_cores must be positive")
    order = graph.topological_order()
    produced = 0

    def _extend(index: int, assignment: Dict[str, int], used: int) -> Iterator[Mapping]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if index == len(order):
            if require_all_cores and used < min(num_cores, len(order)):
                return
            produced += 1
            yield Mapping(dict(assignment), num_cores)
            return
        remaining = len(order) - index
        for core in range(min(used + 1, num_cores)):
            # Prune: the unassigned tasks must be able to fill the
            # still-unused cores.
            new_used = max(used, core + 1)
            needed = min(num_cores, len(order)) - new_used
            if require_all_cores and needed > remaining - 1:
                continue
            assignment[order[index]] = core
            yield from _extend(index + 1, assignment, new_used)
            del assignment[order[index]]
            if limit is not None and produced >= limit:
                return

    yield from _extend(0, {}, 0)


def contiguous_mappings(
    graph: TaskGraph,
    num_cores: int,
    num_samples: int,
    seed: Optional[int] = None,
) -> List[Mapping]:
    """Mappings that cut the topological order into contiguous blocks.

    Contiguous blocks keep graph-adjacent (data-sharing) tasks
    together, so these mappings sit at the *localized* end of the
    R/T_M trade-off (low register duplication, long makespan).  Cut
    points are drawn uniformly; duplicates are removed.
    """
    if num_cores <= 0 or num_samples <= 0:
        raise ValueError("num_cores and num_samples must be positive")
    order = graph.topological_order()
    if len(order) < num_cores:
        raise ValueError("need at least as many tasks as cores")
    rng = random.Random(seed)
    seen = set()
    samples: List[Mapping] = []
    attempts = 0
    positions = list(range(1, len(order)))
    max_cuts = comb(len(order) - 1, num_cores - 1)
    target = min(num_samples, max_cuts)
    while len(samples) < target and attempts < 200 * target:
        attempts += 1
        cuts = sorted(rng.sample(positions, num_cores - 1))
        assignment: Dict[str, int] = {}
        core = 0
        for index, name in enumerate(order):
            if core < len(cuts) and index >= cuts[core]:
                core += 1
            assignment[name] = core
        mapping = Mapping(assignment, num_cores)
        if mapping in seen:
            continue
        seen.add(mapping)
        samples.append(mapping)
    return samples


def stratified_mappings(
    graph: TaskGraph,
    num_cores: int,
    num_samples: int,
    seed: Optional[int] = None,
) -> List[Mapping]:
    """A sample spanning the localization spectrum (Fig. 3 style).

    Half the sample comes from contiguous topological blocks
    (localized end), half from uniform random assignments (spread
    end), deduplicated.  This mirrors the paper's deliberate sweep of
    120 mappings across the R/T_M trade-off.
    """
    half = max(num_samples // 2, 1)
    localized = contiguous_mappings(graph, num_cores, half, seed=seed)
    spread = sample_mappings(
        graph, num_cores, num_samples - len(localized), seed=None if seed is None else seed + 1
    )
    seen = set()
    combined: List[Mapping] = []
    for mapping in localized + spread:
        canonical = canonicalize(mapping, graph)
        if canonical not in seen:
            seen.add(canonical)
            combined.append(canonical)
    return combined


def sample_mappings(
    graph: TaskGraph,
    num_cores: int,
    num_samples: int,
    seed: Optional[int] = None,
    require_all_cores: bool = True,
    max_attempts_factor: int = 200,
) -> List[Mapping]:
    """Draw ``num_samples`` distinct canonical mappings uniformly-ish.

    Each draw assigns every task to a uniformly random core, then
    canonicalizes; duplicates are rejected.  When the space is smaller
    than ``num_samples`` the full enumeration is returned instead.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    space = num_distinct_mappings(graph.num_tasks, num_cores, require_all_cores)
    if space <= num_samples:
        return list(enumerate_mappings(graph, num_cores, require_all_cores))

    rng = random.Random(seed)
    names = graph.task_names()
    seen = set()
    samples: List[Mapping] = []
    attempts = 0
    max_attempts = max_attempts_factor * num_samples
    while len(samples) < num_samples and attempts < max_attempts:
        attempts += 1
        assignment = {name: rng.randrange(num_cores) for name in names}
        candidate = Mapping(assignment, num_cores)
        if require_all_cores and len(candidate.used_cores()) < min(
            num_cores, graph.num_tasks
        ):
            continue
        candidate = canonicalize(candidate, graph)
        if candidate in seen:
            continue
        seen.add(candidate)
        samples.append(candidate)
    if len(samples) < num_samples:
        raise RuntimeError(
            f"could only sample {len(samples)} of {num_samples} mappings "
            f"after {attempts} attempts"
        )
    return samples
