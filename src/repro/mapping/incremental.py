"""Incremental (delta) evaluation of single-task moves and swaps.

Mapping search spends nearly all of its budget evaluating neighbours
that differ from the current mapping by one move or one swap.  Two of
the paper's per-core quantities are *exactly* maintainable under such
deltas without rescheduling:

* ``R_i`` (Eq. 8) — tracked with per-core register multiset counters
  over the compiled graph's register bitmasks, so removing a task from
  a core correctly keeps shared registers that other residents still
  occupy;
* ``T_i`` (Eq. 7) — computation plus cross-core receive cycles,
  updated by re-deriving the term of every *affected* consumer (the
  moved tasks and their direct successors), a ``O(degree)`` operation.

From these, :class:`IncrementalMappingState` derives certified lower
bounds on the schedule makespan (no core can finish before its own
busy time; no schedule beats the computation-only critical path) and
hence on ``Gamma`` (which is exactly ``T_M * sum_i R_i f_i lambda_i``
under the full-window exposure model).  The bounds support *move
screening*: a searcher can discard a neighbour whose lower bound
already proves it hopeless and only pay for the authoritative
list-scheduled evaluation (:meth:`MappingEvaluator.evaluate`) on
survivors.  Screening never changes what an accepted design point
*is* — accepted neighbours are always re-evaluated through the full
scheduler — but it does alter which neighbours a stochastic search
visits, so it is opt-in (see ``SimulatedAnnealingMapper(screening=...)``
and ``OptimizedMappingSearch(screen_moves=...)``).

The parity suite asserts the maintained ``R_i``/``T_i`` match the seed
metric functions exactly after arbitrary move/swap sequences, and that
the bounds never exceed the scheduled truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mapping.mapping import Mapping
from repro.mapping.metrics import MappingEvaluator

#: Graph size at which ``"auto"`` screening turns on.  The descriptor
#: search loop previews neighbours through the index-based
#: O(degree) paths below (no mapping diff, no per-core count-row
#: copies), which dropped the per-neighbour preview cost to a few
#: microseconds — an order of magnitude below even a small graph's
#: full compiled evaluation.  The threshold therefore sits where the
#: preview reliably undercuts the evaluation it may save, with margin
#: for bound-quality variance on tiny graphs; see ARCHITECTURE.md
#: ("Screening policy") for the re-measured table behind the value.
SCREENING_MIN_TASKS = 32

#: Moved-task count up to which :meth:`IncrementalMappingState.
#: apply_mapping` commits a delta instead of re-anchoring with a full
#: :meth:`~IncrementalMappingState.rebuild`.  Search walks commit one
#: move or one swap (<= 2 moved tasks); anything materially larger is
#: a re-anchor (intensification, restart), where the O(N + E) rebuild
#: is both simpler and cheaper than a wide delta whose affected-
#: consumer set approaches the whole graph anyway.  The exact value is
#: a heuristic crossover, not a correctness boundary — both branches
#: are exact and the parity suite exercises each.
REBUILD_TASK_THRESHOLD = 4


def resolve_screening(option: object, num_tasks: int) -> bool:
    """Resolve a screening config value against a graph size.

    ``False``/``True`` pass through (explicit opt-out/opt-in —
    ``True`` always screens, whatever the size); ``"auto"`` enables
    screening only for graphs with at least
    :data:`SCREENING_MIN_TASKS` tasks, where it pays for itself.
    """
    if option == "auto":
        return num_tasks >= SCREENING_MIN_TASKS
    if isinstance(option, bool):
        return option
    raise ValueError(
        f"screening must be True, False or 'auto', got {option!r}"
    )


@dataclass(frozen=True)
class MoveEstimate:
    """Screening result for one candidate reassignment.

    ``register_bits_per_core`` and ``busy_cycles_per_core`` are exact;
    ``makespan_lb_s`` and ``gamma_lb`` are certified lower bounds on
    the list-scheduled values.  ``feasible_possible`` is ``False``
    only when the makespan bound already exceeds the deadline (so the
    candidate provably misses it); ``None`` when no deadline is set.
    """

    register_bits_per_core: Tuple[int, ...]
    register_bits_total: int
    busy_cycles_per_core: Tuple[int, ...]
    makespan_lb_s: float
    gamma_lb: float
    feasible_possible: Optional[bool]


class IncrementalMappingState:
    """Exact ``R_i`` / ``T_i`` state for a mapping under move deltas.

    Parameters
    ----------
    evaluator:
        Supplies the graph (compiled view), platform operating points,
        SER model and deadline.
    mapping:
        Initial mapping; :meth:`rebuild` re-anchors the state later.
    scaling:
        Scaling vector (defaults to the platform's current one).
    """

    def __init__(
        self,
        evaluator: MappingEvaluator,
        mapping: Mapping,
        scaling: Optional[Sequence[int]] = None,
    ) -> None:
        platform = evaluator.platform
        if scaling is None:
            scaling_vector = platform.scaling_vector()
        else:
            scaling_vector = platform.validate_assignment(scaling)
        self._compiled = evaluator.graph.compiled()
        self._num_cores = platform.num_cores
        frequencies, _, rates = evaluator._operating_point(scaling_vector)
        self._frequencies = frequencies
        self._rates = rates
        self._deadline_s = evaluator.deadline_s
        # In the shared-bus model receives occupy the bus, not the
        # consumer core, so only computation cycles bound a core's
        # busy time; the dedicated model may use the full Eq. 7 sum.
        self._dedicated = evaluator.comm_model == "dedicated"
        self._max_frequency = max(frequencies)
        compiled = self._compiled
        # Per-core computation cycle rows.  Single-type platforms share
        # the compiled base tuple per core (identical int objects — the
        # seed path); heterogeneous platforms resolve each core's
        # scaled row.
        cycle_scales = evaluator._cycle_scales
        if cycle_scales is None:
            self._core_cycles: Tuple[Tuple[int, ...], ...] = (
                compiled.cycles,
            ) * self._num_cores
            min_cycles: Sequence[int] = compiled.cycles
        else:
            self._core_cycles = compiled.cycles_for_cores(cycle_scales)
            distinct_rows = set(self._core_cycles)
            min_cycles = [
                min(row[i] for row in distinct_rows)
                for i in range(compiled.num_tasks)
            ]
        # Computation-only critical path: a mapping-independent lower
        # bound on any schedule (comm can only add time; every task
        # runs no faster than the fastest clock, and — on
        # heterogeneous platforms — no faster than its cheapest
        # core-type cycle count).
        comp_levels = [0] * compiled.num_tasks
        for i in reversed(compiled.topo_order):
            best_tail = 0
            for e in range(compiled.succ_ptr[i], compiled.succ_ptr[i + 1]):
                tail = comp_levels[compiled.succ_idx[e]]
                if tail > best_tail:
                    best_tail = tail
            comp_levels[i] = min_cycles[i] + best_tail
        self._comp_critical_cycles = max(comp_levels) if comp_levels else 0
        self.rebuild(mapping)

    # -- (re)anchoring -------------------------------------------------------

    def rebuild(self, mapping: Mapping) -> None:
        """Re-anchor the state on ``mapping`` (full O(N + E) pass)."""
        compiled = self._compiled
        cores = mapping.core_index_list(compiled.names)
        if mapping.num_cores != self._num_cores:
            raise ValueError(
                f"mapping targets {mapping.num_cores} cores, state has "
                f"{self._num_cores}"
            )
        num_cores = self._num_cores
        num_registers = len(compiled.registers)
        counts: List[List[int]] = [[0] * num_registers for _ in range(num_cores)]
        bits = [0] * num_cores
        register_bits = compiled.register_bits
        for i, core in enumerate(cores):
            mask = compiled.task_register_masks[i]
            row = counts[core]
            while mask:
                low = mask & -mask
                bit = low.bit_length() - 1
                if row[bit] == 0:
                    bits[core] += register_bits[bit]
                row[bit] += 1
                mask ^= low
        busy = [0] * num_cores
        comp_busy = [0] * num_cores
        core_cycles = self._core_cycles
        for i, core in enumerate(cores):
            busy[core] += self._eq7_term(i, cores)
            comp_busy[core] += core_cycles[core][i]
        self._cores = cores
        self._counts = counts
        self._bits = bits
        self._busy = busy
        self._comp_busy = comp_busy

    def _eq7_term(self, i: int, cores: Sequence[int]) -> int:
        """Task ``i``'s contribution to its core's ``T_i`` (Eq. 7)."""
        compiled = self._compiled
        core = cores[i]
        total = self._core_cycles[core][i]
        for e in range(compiled.pred_ptr[i], compiled.pred_ptr[i + 1]):
            if cores[compiled.pred_idx[e]] != core:
                total += compiled.pred_comm[e]
        return total

    # -- queries -------------------------------------------------------------

    @property
    def register_bits_per_core(self) -> Tuple[int, ...]:
        """``R_i`` of the anchored mapping (exact)."""
        return tuple(self._bits)

    @property
    def busy_cycles_per_core(self) -> Tuple[int, ...]:
        """``T_i`` of the anchored mapping (exact, Eq. 7)."""
        return tuple(self._busy)

    def estimate_current(self) -> MoveEstimate:
        """Bounds for the anchored mapping itself."""
        return self._estimate(self._bits, self._busy, self._comp_busy)

    # -- candidate previews (non-mutating) -----------------------------------

    def estimate_move(self, task_name: str, core: int) -> MoveEstimate:
        """Preview moving one task to ``core`` without committing."""
        return self._preview({self._compiled.index[task_name]: core})

    def estimate_move_index(self, task: int, core: int) -> MoveEstimate:
        """Index-based :meth:`estimate_move` — the descriptor hot path.

        ``task`` is a compiled task index; no name lookup, no mapping
        diff.  Cost is O(degree) plus the moved register mask's
        popcount.
        """
        return self._preview({task: core})

    def estimate_swap(self, task_a: str, task_b: str) -> MoveEstimate:
        """Preview exchanging the cores of two tasks without committing."""
        index = self._compiled.index
        a, b = index[task_a], index[task_b]
        cores = self._cores
        return self._preview({a: cores[b], b: cores[a]})

    def estimate_swap_index(self, task_a: int, task_b: int) -> MoveEstimate:
        """Index-based :meth:`estimate_swap` — the descriptor hot path."""
        cores = self._cores
        return self._preview({task_a: cores[task_b], task_b: cores[task_a]})

    def estimate_mapping(self, mapping: Mapping) -> MoveEstimate:
        """Preview an arbitrary neighbour mapping by diffing the anchor.

        Cost is proportional to the number of tasks that changed core
        (plus their degrees) — one move or one swap in practice.
        """
        new_cores = mapping.core_index_list(self._compiled.names)
        cores = self._cores
        reassignment: Dict[int, int] = {
            i: new_core
            for i, new_core in enumerate(new_cores)
            if new_core != cores[i]
        }
        return self._preview(reassignment)

    # -- committed updates ---------------------------------------------------

    def apply_move(self, task_name: str, core: int) -> None:
        """Commit a single-task move into the state (O(degree))."""
        self._apply({self._compiled.index[task_name]: core})

    def apply_move_index(self, task: int, core: int) -> None:
        """Index-based :meth:`apply_move`."""
        self._apply({task: core})

    def apply_swap(self, task_a: str, task_b: str) -> None:
        """Commit a two-task swap into the state (O(degree))."""
        index = self._compiled.index
        a, b = index[task_a], index[task_b]
        cores = self._cores
        self._apply({a: cores[b], b: cores[a]})

    def apply_swap_index(self, task_a: int, task_b: int) -> None:
        """Index-based :meth:`apply_swap`."""
        cores = self._cores
        self._apply({task_a: cores[task_b], task_b: cores[task_a]})

    def apply_mapping(self, mapping: Mapping) -> None:
        """Commit an arbitrary neighbour by diffing against the anchor.

        Cheap (delta) when few tasks changed core; falls back to a
        full :meth:`rebuild` when more than a handful moved.
        """
        compiled = self._compiled
        cores = self._cores
        assignment = {}
        for i, name in enumerate(compiled.names):
            new_core = mapping.core_of(name)
            if new_core != cores[i]:
                assignment[i] = new_core
        if not assignment:
            return
        if len(assignment) > REBUILD_TASK_THRESHOLD:
            self.rebuild(mapping)
            return
        self._apply(assignment)

    def moved_tasks(self, mapping: Mapping) -> List[str]:
        """Names of tasks whose core differs from the anchored mapping."""
        compiled = self._compiled
        cores = self._cores
        return [
            name
            for i, name in enumerate(compiled.names)
            if mapping.core_of(name) != cores[i]
        ]

    # -- internals -----------------------------------------------------------

    def _busy_after(self, reassignment: Dict[int, int]) -> List[int]:
        """Per-core ``T_i`` after ``reassignment`` (exact).

        True O(degree-of-moved): a moved task's own Eq. 7 term is
        recomputed under the overlaid assignment (its receive edges
        may all change), but an *unmoved* consumer's term can only
        change through its edges from moved producers — so those
        adjust per edge by the crossing-status delta instead of
        re-walking the consumer's whole predecessor list.  Integer
        arithmetic throughout, so the result is identical to a full
        re-derivation whatever the accumulation order.
        """
        compiled = self._compiled
        cores = self._cores
        core_cycles = self._core_cycles
        pred_ptr = compiled.pred_ptr
        pred_idx = compiled.pred_idx
        pred_comm = compiled.pred_comm
        succ_ptr = compiled.succ_ptr
        succ_idx = compiled.succ_idx
        succ_comm = compiled.succ_comm
        busy = list(self._busy)
        # Remove the moved tasks' own terms (old assignment, at the old
        # core's cycle row)...
        for i in reassignment:
            core = cores[i]
            term = core_cycles[core][i]
            for e in range(pred_ptr[i], pred_ptr[i + 1]):
                if cores[pred_idx[e]] != core:
                    term += pred_comm[e]
            busy[core] -= term
        # ...adjust unmoved consumers by per-edge crossing deltas...
        for i, new_core in reassignment.items():
            old_core = cores[i]
            for e in range(succ_ptr[i], succ_ptr[i + 1]):
                consumer = succ_idx[e]
                if consumer in reassignment:
                    continue  # recomputed wholesale below
                consumer_core = cores[consumer]
                crossed = old_core != consumer_core
                crosses = new_core != consumer_core
                if crossed != crosses:
                    if crosses:
                        busy[consumer_core] += succ_comm[e]
                    else:
                        busy[consumer_core] -= succ_comm[e]
        # ...and re-add the moved tasks' terms under the overlay
        # (applied in place on the anchor's core list, restored before
        # returning — plain C-level list indexing beats any overlay
        # object by an order of magnitude).
        saved = [(i, cores[i]) for i in reassignment]
        for i, new_core in reassignment.items():
            cores[i] = new_core
        try:
            for i in reassignment:
                core = cores[i]
                term = core_cycles[core][i]
                for e in range(pred_ptr[i], pred_ptr[i + 1]):
                    if cores[pred_idx[e]] != core:
                        term += pred_comm[e]
                busy[core] += term
        finally:
            for i, old_core in saved:
                cores[i] = old_core
        return busy

    def _bits_after(self, reassignment: Dict[int, int]) -> List[int]:
        """Per-core ``R_i`` after ``reassignment`` (exact).

        Mask-delta only: untouched cores are never recomputed (their
        entries are carried over), and touched cores adjust by the
        register bits whose multiset count crosses zero — no per-core
        count-row copies (rows are register-alphabet sized, far wider
        than any single move's mask).
        """
        compiled = self._compiled
        cores = self._cores
        counts = self._counts
        register_bits = compiled.register_bits
        masks = compiled.task_register_masks
        bits = list(self._bits)
        if len(reassignment) == 1:
            # The descriptor walk's dominant case: one task moved.
            [(i, new_core)] = reassignment.items()
            old_core = cores[i]
            mask = masks[i]
            old_row, new_row = counts[old_core], counts[new_core]
            removed = added = 0
            while mask:
                low = mask & -mask
                bit = low.bit_length() - 1
                if old_row[bit] == 1:
                    removed += register_bits[bit]
                if new_row[bit] == 0:
                    added += register_bits[bit]
                mask ^= low
            bits[old_core] -= removed
            bits[new_core] += added
            return bits
        # General case (swaps, multi-task deltas): aggregate per-core
        # per-bit count deltas first — a task arriving where another
        # departs must cancel before the zero-crossing test.
        deltas: Dict[int, Dict[int, int]] = {}
        for i, new_core in reassignment.items():
            old_core = cores[i]
            if new_core == old_core:
                continue
            mask = masks[i]
            departed = deltas.setdefault(old_core, {})
            arrived = deltas.setdefault(new_core, {})
            while mask:
                low = mask & -mask
                bit = low.bit_length() - 1
                departed[bit] = departed.get(bit, 0) - 1
                arrived[bit] = arrived.get(bit, 0) + 1
                mask ^= low
        for core, bit_deltas in deltas.items():
            row = counts[core]
            total = bits[core]
            for bit, delta in bit_deltas.items():
                if not delta:
                    continue
                before = row[bit]
                after = before + delta
                if before == 0 and after > 0:
                    total += register_bits[bit]
                elif before > 0 and after == 0:
                    total -= register_bits[bit]
            bits[core] = total
        return bits

    def _preview(self, reassignment: Dict[int, int]) -> MoveEstimate:
        reassignment = {
            i: core for i, core in reassignment.items() if core != self._cores[i]
        }
        if not reassignment:
            return self.estimate_current()
        for core in reassignment.values():
            if not 0 <= core < self._num_cores:
                raise ValueError(
                    f"core index {core} outside 0..{self._num_cores - 1}"
                )
        comp_busy = list(self._comp_busy)
        core_cycles = self._core_cycles
        for i, new_core in reassignment.items():
            old_core = self._cores[i]
            comp_busy[old_core] -= core_cycles[old_core][i]
            comp_busy[new_core] += core_cycles[new_core][i]
        return self._estimate(
            self._bits_after(reassignment), self._busy_after(reassignment), comp_busy
        )

    def _apply(self, reassignment: Dict[int, int]) -> None:
        reassignment = {
            i: core for i, core in reassignment.items() if core != self._cores[i]
        }
        if not reassignment:
            return
        compiled = self._compiled
        cores = self._cores
        register_bits = compiled.register_bits
        new_busy = self._busy_after(reassignment)
        for i, new_core in reassignment.items():
            old_core = cores[i]
            mask = compiled.task_register_masks[i]
            old_row, new_row = self._counts[old_core], self._counts[new_core]
            while mask:
                low = mask & -mask
                bit = low.bit_length() - 1
                old_row[bit] -= 1
                if old_row[bit] == 0:
                    self._bits[old_core] -= register_bits[bit]
                if new_row[bit] == 0:
                    self._bits[new_core] += register_bits[bit]
                new_row[bit] += 1
                mask ^= low
        self._busy = new_busy
        comp_busy = self._comp_busy
        core_cycles = self._core_cycles
        for i, new_core in reassignment.items():
            old_core = cores[i]
            comp_busy[old_core] -= core_cycles[old_core][i]
            comp_busy[new_core] += core_cycles[new_core][i]
            cores[i] = new_core

    def _estimate(
        self, bits: Sequence[int], busy: Sequence[int], comp_busy: Sequence[int]
    ) -> MoveEstimate:
        frequencies = self._frequencies
        rates = self._rates
        bound_busy = busy if self._dedicated else comp_busy
        makespan_lb = self._comp_critical_cycles / self._max_frequency
        gamma_coefficient = 0.0
        for core in range(self._num_cores):
            local = bound_busy[core] / frequencies[core]
            if local > makespan_lb:
                makespan_lb = local
            gamma_coefficient += bits[core] * frequencies[core] * rates[core]
        gamma_lb = makespan_lb * gamma_coefficient
        feasible_possible: Optional[bool] = None
        if self._deadline_s is not None:
            feasible_possible = makespan_lb <= self._deadline_s + 1e-12
        return MoveEstimate(
            register_bits_per_core=tuple(bits),
            register_bits_total=sum(bits),
            busy_cycles_per_core=tuple(busy),
            makespan_lb_s=makespan_lb,
            gamma_lb=gamma_lb,
            feasible_possible=feasible_possible,
        )


def screen_lower_bound(objective, estimate: MoveEstimate) -> Optional[float]:
    """A certified lower bound on ``objective`` at a candidate, if known.

    Maps the paper's objectives onto :class:`MoveEstimate` fields;
    returns ``None`` for objectives the estimate cannot bound (no
    screening happens then).  Register usage is exact, makespan / SEUs
    / the product are true lower bounds.
    """
    name = getattr(objective, "name", None)
    if name == "register-usage":
        return float(estimate.register_bits_total)
    if name == "makespan":
        return estimate.makespan_lb_s
    if name == "seus":
        return estimate.gamma_lb
    if name == "tm-x-r":
        return estimate.makespan_lb_s * estimate.register_bits_total
    return None
