"""Task-to-core mapping.

A :class:`Mapping` assigns every task of a graph to one of ``C``
processing cores.  Mappings are hashable and treated as values: the
optimizers derive neighbours with :meth:`Mapping.move` and
:meth:`Mapping.swap` rather than mutating in place, which keeps search
bookkeeping (best-so-far, tabu sets, caches) trivially correct.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    Mapping as TMapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.taskgraph.graph import TaskGraph


class Mapping:
    """An assignment of task names to core indices.

    Parameters
    ----------
    assignment:
        Task name -> 0-based core index.
    num_cores:
        Number of cores in the platform; every index must be within
        ``[0, num_cores)``.
    """

    __slots__ = ("_assignment", "_num_cores", "_hash", "_sig_memo")

    def __init__(self, assignment: TMapping[str, int], num_cores: int) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        frozen: Dict[str, int] = {}
        for task_name, core_index in assignment.items():
            if not 0 <= core_index < num_cores:
                raise ValueError(
                    f"task {task_name!r} mapped to core {core_index}, outside "
                    f"0..{num_cores - 1}"
                )
            frozen[task_name] = core_index
        if not frozen:
            raise ValueError("a mapping must assign at least one task")
        self._assignment = frozen
        self._num_cores = num_cores
        self._hash: Optional[int] = None
        self._sig_memo: Optional[Tuple[object, Tuple[int, ...], int]] = None

    def __reduce__(self):
        # Pickle only the assignment + core count: the signature memo
        # holds a compiled-graph reference that must not ride along
        # into process-pool workers (they rebuild their own views).
        return (type(self), (self._assignment, self._num_cores))

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return (
            self._num_cores == other._num_cores
            and self._assignment == other._assignment
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._num_cores, tuple(sorted(self._assignment.items())))
            )
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        groups = ", ".join(
            f"core{core}: {sorted(tasks)}" for core, tasks in enumerate(self.core_groups())
        )
        return f"Mapping({groups})"

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._assignment)

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._assignment

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignment)

    # -- queries ----------------------------------------------------------

    @property
    def num_cores(self) -> int:
        """Number of cores this mapping targets."""
        return self._num_cores

    @property
    def num_tasks(self) -> int:
        """Number of mapped tasks."""
        return len(self._assignment)

    def core_of(self, task_name: str) -> int:
        """The core a task is mapped to."""
        try:
            return self._assignment[task_name]
        except KeyError:
            raise KeyError(f"task {task_name!r} not in mapping") from None

    def tasks_on(self, core_index: int) -> Tuple[str, ...]:
        """Tasks mapped to ``core_index`` (insertion order)."""
        if not 0 <= core_index < self._num_cores:
            raise ValueError(f"core index {core_index} outside 0..{self._num_cores - 1}")
        return tuple(
            name for name, core in self._assignment.items() if core == core_index
        )

    def core_groups(self) -> Tuple[Tuple[str, ...], ...]:
        """Per-core task tuples, indexed by core."""
        groups: Tuple[list, ...] = tuple([] for _ in range(self._num_cores))
        for name, core in self._assignment.items():
            groups[core].append(name)
        return tuple(tuple(group) for group in groups)

    def used_cores(self) -> Tuple[int, ...]:
        """Indices of cores with at least one task."""
        return tuple(
            core for core, tasks in enumerate(self.core_groups()) if tasks
        )

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict copy of the assignment."""
        return dict(self._assignment)

    def same_core(self, task_a: str, task_b: str) -> bool:
        """Whether two tasks are co-located."""
        return self.core_of(task_a) == self.core_of(task_b)

    def core_index_list(self, task_names: Sequence[str]) -> list:
        """Cores of ``task_names``, in order — the compiled hot path.

        Requires the mapping to cover *exactly* these tasks and raises
        the same ``ValueError`` wording as :meth:`validate_against`
        otherwise, so compiled and reference code paths fail alike.
        """
        assignment = self._assignment
        if len(assignment) == len(task_names):
            try:
                return [assignment[name] for name in task_names]
            except KeyError:
                pass
        missing = sorted(name for name in task_names if name not in assignment)
        if missing:
            raise ValueError(f"mapping misses tasks: {missing}")
        extra = sorted(set(assignment) - set(task_names))
        raise ValueError(f"mapping has unknown tasks: {extra}")

    def signature_info(self, compiled) -> Tuple[Tuple[int, ...], int]:
        """Canonical signature + hash of this mapping under ``compiled``.

        The signature is the core of every task in compiled index
        order (the evaluator's cache key); the hash is the compiled
        view's Zobrist-style :meth:`~repro.taskgraph.compiled.
        CompiledTaskGraph.signature_hash`.  Memoized on the mapping
        (keyed by compiled-view identity) — search loops and
        benchmarks re-present the same mapping object many times, and
        the O(N) signature walk was the dominant cost of a cache hit.
        """
        memo = self._sig_memo
        if memo is not None and memo[0] is compiled:
            return memo[1], memo[2]
        signature = tuple(self.core_index_list(compiled.names))
        sig_hash = compiled.signature_hash(signature, self._num_cores)
        self._sig_memo = (compiled, signature, sig_hash)
        return signature, sig_hash

    # -- validation -----------------------------------------------------------

    def validate_against(self, graph: TaskGraph) -> None:
        """Check this mapping covers exactly the tasks of ``graph``."""
        graph_tasks = set(graph.task_names())
        mapped_tasks = set(self._assignment)
        missing = graph_tasks - mapped_tasks
        if missing:
            raise ValueError(f"mapping misses tasks: {sorted(missing)}")
        extra = mapped_tasks - graph_tasks
        if extra:
            raise ValueError(f"mapping has unknown tasks: {sorted(extra)}")

    # -- neighbour constructors -------------------------------------------------

    def move(self, task_name: str, core_index: int) -> "Mapping":
        """A copy with ``task_name`` moved to ``core_index``."""
        self.core_of(task_name)  # raise on unknown task
        assignment = dict(self._assignment)
        assignment[task_name] = core_index
        return Mapping(assignment, self._num_cores)

    def swap(self, task_a: str, task_b: str) -> "Mapping":
        """A copy with the cores of two tasks exchanged."""
        core_a, core_b = self.core_of(task_a), self.core_of(task_b)
        assignment = dict(self._assignment)
        assignment[task_a], assignment[task_b] = core_b, core_a
        return Mapping(assignment, self._num_cores)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_groups(
        cls, groups: Iterable[Iterable[str]], num_cores: Optional[int] = None
    ) -> "Mapping":
        """Build a mapping from per-core task groups.

        ``groups[i]`` lists the tasks on core ``i``.  ``num_cores``
        defaults to the number of groups.
        """
        groups = [list(group) for group in groups]
        cores = num_cores if num_cores is not None else len(groups)
        assignment: Dict[str, int] = {}
        for core_index, group in enumerate(groups):
            for task_name in group:
                if task_name in assignment:
                    raise ValueError(f"task {task_name!r} appears in two groups")
                assignment[task_name] = core_index
        return cls(assignment, cores)

    @classmethod
    def from_signature(
        cls,
        names: Sequence[str],
        signature: Sequence[int],
        num_cores: int,
        template: Optional["Mapping"] = None,
    ) -> "Mapping":
        """Build a mapping from a dense core signature over ``names``.

        ``signature[i]`` is the core of ``names[i]`` (the evaluator's
        canonical order).  When ``template`` is given, the assignment
        dict reuses *its* task insertion order — neighbour mappings
        derived via :meth:`move`/:meth:`swap` preserve their ancestor's
        order, and rendered artifacts (``core_groups`` listings) must
        not depend on whether a mapping came from the descriptor or
        the Mapping-based search loop.
        """
        if len(signature) != len(names):
            raise ValueError(
                f"signature has {len(signature)} entries for {len(names)} tasks"
            )
        if template is None:
            return cls(dict(zip(names, signature)), num_cores)
        index = {name: i for i, name in enumerate(names)}
        return cls(
            {name: signature[index[name]] for name in template._assignment},
            num_cores,
        )

    @classmethod
    def round_robin(cls, graph: TaskGraph, num_cores: int) -> "Mapping":
        """Tasks dealt to cores in topological order (a simple baseline)."""
        assignment = {
            name: index % num_cores
            for index, name in enumerate(graph.topological_order())
        }
        return cls(assignment, num_cores)

    @classmethod
    def all_on_core(cls, graph: TaskGraph, num_cores: int, core_index: int = 0) -> "Mapping":
        """Every task on a single core (minimum register duplication)."""
        return cls({name: core_index for name in graph.task_names()}, num_cores)
