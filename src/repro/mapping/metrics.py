"""Design-point metrics: Eqs. (3)-(8) of the paper.

This module turns a (mapping, scaling) pair into the quantities the
paper optimizes over:

* per-core register usage ``R_i`` (Eq. 8) — the bit-cardinality of the
  union of register sets of the tasks on core *i*;
* per-core execution time ``T_i`` in cycles (Eq. 7) — computation plus
  cross-core dependency (receive) cycles;
* the multiprocessor execution time ``T_M`` — authoritative value from
  list scheduling, with the paper's pooled-throughput estimate (Eq. 6)
  available as :func:`pooled_makespan_s`;
* the expected number of SEUs experienced ``Gamma`` (Eq. 3);
* dynamic power ``P`` (Eq. 5) using schedule-derived activity factors.

Exposure model (DESIGN.md §5)
-----------------------------
Register *state* is live — and hence exposed to upsets — for the whole
multiprocessor execution window, not only while its core is actively
computing (a register bank retains data through idle cycles).  Each
core's exposure is therefore ``R_i * T_M`` counted in the core's own
clock cycles (``T_M_s * f_i``), with the per-cycle rate ``lambda_i``
depending on the core's voltage.  Counting exposure in local cycles
makes Gamma frequency-invariant for a fixed mapping, which is exactly
how the paper reads Fig. 3(c): the ~2.5x growth at s=2 is attributed
entirely to the Vdd-lambda relationship while T_M (in wall time)
merely doubles.

:class:`MappingEvaluator` bundles the platform, SER and power models
and caches evaluations, since local search re-visits design points.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.mpsoc import MPSoC
from repro.arch.power import PowerModel
from repro.faults.ser import SERModel
from repro.mapping.mapping import Mapping
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import Schedule
from repro.taskgraph.graph import TaskGraph

# ---------------------------------------------------------------------------
# Elementary metrics (pure functions of graph + mapping)
# ---------------------------------------------------------------------------


def core_register_bits(graph: TaskGraph, mapping: Mapping, core_index: int) -> int:
    """``R_i`` of Eq. (8): union bits of the register sets on one core."""
    register_map = graph.register_map()
    tasks = mapping.tasks_on(core_index)
    if not tasks:
        return 0
    return register_map.union_bits(tasks)


def per_core_register_bits(graph: TaskGraph, mapping: Mapping) -> Tuple[int, ...]:
    """``R_i`` for every core."""
    register_map = graph.register_map()
    return tuple(
        register_map.union_bits(tasks) if tasks else 0
        for tasks in mapping.core_groups()
    )


def total_register_bits(graph: TaskGraph, mapping: Mapping) -> int:
    """Overall register usage ``R = sum_i R_i`` (bits).

    Shared sets mapped across cores are counted once *per core* — the
    duplication effect of Section III.
    """
    return sum(per_core_register_bits(graph, mapping))


def core_execution_cycles(graph: TaskGraph, mapping: Mapping, core_index: int) -> int:
    """``T_i`` of Eq. (7) in cycles: computation plus cross-core receives."""
    total = 0
    for name in mapping.tasks_on(core_index):
        total += graph.task(name).cycles
        for producer in graph.predecessors(name):
            if mapping.core_of(producer) != core_index:
                total += graph.comm_cycles(producer, name)
    return total


def per_core_execution_cycles(graph: TaskGraph, mapping: Mapping) -> Tuple[int, ...]:
    """``T_i`` for every core."""
    return tuple(
        core_execution_cycles(graph, mapping, core)
        for core in range(mapping.num_cores)
    )


def pooled_makespan_s(
    graph: TaskGraph, mapping: Mapping, frequencies_hz: Sequence[float]
) -> float:
    """The paper's aggregate makespan estimate, Eq. (6).

    Total busy cycles over all cores divided by the summed effective
    clock rate.  It ignores precedence stalls, so it lower-bounds the
    real (list-scheduled) makespan for balanced mappings; the
    optimizers use the scheduler's makespan as the authoritative T_M.
    """
    if len(frequencies_hz) != mapping.num_cores:
        raise ValueError(
            f"{len(frequencies_hz)} frequencies for {mapping.num_cores} cores"
        )
    total_cycles = sum(per_core_execution_cycles(graph, mapping))
    pooled_rate = sum(frequencies_hz)
    if pooled_rate <= 0:
        raise ValueError("pooled clock rate must be positive")
    return total_cycles / pooled_rate


def expected_seus(
    register_bits: Sequence[int],
    execution_cycles: Sequence[float],
    rates: Sequence[float],
) -> float:
    """``Gamma`` of Eq. (3): ``sum_i R_i * T_i * lambda_i``.

    Parameters
    ----------
    register_bits:
        ``R_i`` per core (live register bits).
    execution_cycles:
        Exposure window per core, in the core's own clock cycles
        (full-makespan exposure: ``T_M_s * f_i``).
    rates:
        ``lambda_i`` per core, SEUs per bit per cycle.
    """
    if not len(register_bits) == len(execution_cycles) == len(rates):
        raise ValueError("per-core vectors must have equal length")
    return sum(
        bits * cycles * rate
        for bits, cycles, rate in zip(register_bits, execution_cycles, rates)
    )


# ---------------------------------------------------------------------------
# Design points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DesignPoint:
    """A fully evaluated (mapping, scaling) design.

    All of Table II's columns are here: the mapping, the per-core
    scaling coefficients, power ``P`` (mW), register usage ``R``
    (bits), multiprocessor execution time ``T_M`` (seconds and
    nominal-clock cycles) and expected SEUs ``Gamma``.
    """

    mapping: Mapping
    scaling: Tuple[int, ...]
    power_mw: float
    register_bits_per_core: Tuple[int, ...]
    register_bits_total: int
    execution_cycles_per_core: Tuple[int, ...]
    makespan_s: float
    makespan_cycles: int
    expected_seus: float
    activities: Tuple[float, ...]
    meets_deadline: Optional[bool] = None
    schedule: Optional[Schedule] = field(repr=False, compare=False, default=None)

    @property
    def register_kbits_total(self) -> float:
        """R in kbits (1 kbit = 1000 bits), the paper's reporting unit."""
        return self.register_bits_total / 1000.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        deadline = (
            ""
            if self.meets_deadline is None
            else f", deadline {'met' if self.meets_deadline else 'MISSED'}"
        )
        return (
            f"P={self.power_mw:.2f}mW R={self.register_kbits_total:.1f}kb "
            f"T_M={self.makespan_s * 1e3:.1f}ms Gamma={self.expected_seus:.3e} "
            f"s={self.scaling}{deadline}"
        )


class MappingEvaluator:
    """Evaluates mappings into :class:`DesignPoint` values.

    Parameters
    ----------
    graph:
        Application task graph.
    platform:
        MPSoC platform (supplies scaling table and capacitance).
    ser_model:
        Voltage-dependent soft error rate; defaults to the paper's
        1e-9/bit/cycle nominal model.
    power_model:
        Dynamic power model; defaults to the platform's capacitance.
    deadline_s:
        Optional real-time constraint ``T_Mref``; when set, design
        points carry ``meets_deadline``.
    cache_size:
        Maximum number of cached evaluations (0 disables caching).
        Eviction is true LRU, keyed by a canonical mapping signature
        (the core of every task in compiled index order) plus the
        scaling vector; ``cache_hits`` / ``cache_misses`` count the
        traffic.
    comm_model:
        Scheduler communication model, ``"dedicated"`` (the paper's
        platform, default) or ``"shared-bus"`` (see
        :class:`~repro.sched.list_scheduler.ListScheduler`).
    """

    def __init__(
        self,
        graph: TaskGraph,
        platform: MPSoC,
        ser_model: Optional[SERModel] = None,
        power_model: Optional[PowerModel] = None,
        deadline_s: Optional[float] = None,
        cache_size: int = 4096,
        comm_model: str = "dedicated",
    ) -> None:
        graph.validate()
        self.graph = graph
        self.platform = platform
        self.ser_model = ser_model or SERModel()
        self.power_model = power_model or PowerModel(
            platform.core_spec.switched_capacitance_f
        )
        self.deadline_s = deadline_s
        self.comm_model = comm_model
        self._cache: "OrderedDict[Tuple[Tuple[int, ...], int, Tuple[int, ...]], DesignPoint]" = (
            OrderedDict()
        )
        self._cache_size = max(cache_size, 0)
        self.evaluations = 0  # total evaluate() calls, cache hits included
        self.cache_hits = 0
        self.cache_misses = 0
        # Per-scaling memos: (frequencies, voltages, rates) and the
        # ListScheduler built for them.  A search sweep revisits the
        # same handful of scaling vectors hundreds of thousands of
        # times; rebuilding the scheduler (and its bottom-level
        # priority templates) each call was pure waste.
        self._operating_points: Dict[
            Tuple[int, ...], Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]
        ] = {}
        self._schedulers: Dict[Tuple[int, ...], ListScheduler] = {}
        self._compiled = graph.compiled()

    def _sync_compiled(self):
        """Refresh graph-derived memos if the graph mutated.

        The scheduler memo and the design-point cache both snapshot
        graph structure; a mutation (new task/edge/registers) renews
        the graph's compiled view, and stale entries would silently
        return wrong results.
        """
        compiled = self.graph.compiled()
        if compiled is not self._compiled:
            self._compiled = compiled
            self._schedulers.clear()
            self._cache.clear()
        return compiled

    # -- main entry point -----------------------------------------------------

    def _resolve_scaling(self, scaling: Optional[Sequence[int]]) -> Tuple[int, ...]:
        """Validate a scaling vector (``None`` means the platform's)."""
        if scaling is None:
            return self.platform.scaling_vector()
        scaling_vector = self.platform.scaling_table.validate_assignment(scaling)
        if len(scaling_vector) != self.platform.num_cores:
            raise ValueError(
                f"scaling vector has {len(scaling_vector)} entries for "
                f"{self.platform.num_cores} cores"
            )
        return scaling_vector

    def _cache_key(self, compiled, mapping: Mapping, scaling: Tuple[int, ...]):
        # num_cores is part of the key: two mappings with the same
        # per-task assignment but different platform widths must
        # not alias (the narrower one may be valid, the wider not).
        return (compiled.signature(mapping), mapping.num_cores, scaling)

    def _cache_lookup(self, key) -> Optional[DesignPoint]:
        """LRU get: counts the hit and refreshes recency on success."""
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(key)
        return cached

    def _cache_store(self, key, point: DesignPoint) -> None:
        """LRU put: inserts and evicts the oldest entry past capacity."""
        self._cache[key] = point
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)  # true LRU: evict the oldest

    def evaluate(
        self, mapping: Mapping, scaling: Optional[Sequence[int]] = None
    ) -> DesignPoint:
        """Evaluate a mapping under a scaling vector (defaults to platform's)."""
        scaling_vector = self._resolve_scaling(scaling)
        self.evaluations += 1
        compiled = self._sync_compiled()
        if self._cache_size:
            key = self._cache_key(compiled, mapping, scaling_vector)
            cached = self._cache_lookup(key)
            if cached is not None:
                return cached
        self.cache_misses += 1
        point = self._evaluate_uncached(mapping, scaling_vector)
        if self._cache_size:
            self._cache_store(key, point)
        return point

    def evaluate_batch(
        self, mappings: Sequence[Mapping], scaling: Optional[Sequence[int]] = None
    ) -> List[DesignPoint]:
        """Evaluate many mappings under one scaling vector.

        Returns one :class:`DesignPoint` per mapping, in input order,
        with results, cache contents and the ``evaluations`` /
        ``cache_hits`` / ``cache_misses`` counters exactly as if
        :meth:`evaluate` had been called per mapping.  The batch form
        amortizes the per-call fixed costs — scaling validation, the
        compiled-graph sync and the operating-point / scheduler memo
        lookups happen once for the whole batch — and is the substrate
        a future vectorized backend can drop into (the compiled arrays
        are layout-ready for evaluating many mappings at once).
        """
        scaling_vector = self._resolve_scaling(scaling)
        compiled = self._sync_compiled()
        frequencies, _, rates = self._operating_point(scaling_vector)
        scheduler = self.scheduler_for(scaling_vector)
        cache_size = self._cache_size
        points: List[DesignPoint] = []
        for mapping in mappings:
            self.evaluations += 1
            if cache_size:
                key = self._cache_key(compiled, mapping, scaling_vector)
                cached = self._cache_lookup(key)
                if cached is not None:
                    points.append(cached)
                    continue
            self.cache_misses += 1
            point = self._evaluate_with(
                mapping, scaling_vector, frequencies, rates, scheduler
            )
            if cache_size:
                self._cache_store(key, point)
            points.append(point)
        return points

    def _operating_point(
        self, scaling: Tuple[int, ...]
    ) -> Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]:
        """Memoized (frequencies, voltages, lambda rates) for a scaling."""
        cached = self._operating_points.get(scaling)
        if cached is None:
            table = self.platform.scaling_table
            frequencies = tuple(
                table.frequency_hz(coefficient) for coefficient in scaling
            )
            voltages = tuple(table.vdd_v(coefficient) for coefficient in scaling)
            rates = tuple(self.ser_model.rate(vdd) for vdd in voltages)
            cached = (frequencies, voltages, rates)
            self._operating_points[scaling] = cached
        return cached

    def scheduler_for(self, scaling: Tuple[int, ...]) -> ListScheduler:
        """The (memoized) list scheduler for one scaling vector."""
        self._sync_compiled()
        scheduler = self._schedulers.get(scaling)
        if scheduler is None:
            frequencies, _, _ = self._operating_point(scaling)
            scheduler = ListScheduler(
                self.graph, frequencies, comm_model=self.comm_model
            )
            self._schedulers[scaling] = scheduler
        return scheduler

    def _evaluate_uncached(
        self, mapping: Mapping, scaling: Tuple[int, ...]
    ) -> DesignPoint:
        frequencies, _, rates = self._operating_point(scaling)
        scheduler = self.scheduler_for(scaling)
        return self._evaluate_with(mapping, scaling, frequencies, rates, scheduler)

    def _evaluate_with(
        self,
        mapping: Mapping,
        scaling: Tuple[int, ...],
        frequencies: Tuple[float, ...],
        rates: Tuple[float, ...],
        scheduler: ListScheduler,
    ) -> DesignPoint:
        """The evaluation body, with the per-scaling lookups prefetched."""
        platform = self.platform
        schedule = scheduler.schedule(mapping)  # validates mapping coverage
        makespan_s = schedule.makespan_s()
        activities = schedule.activities()

        compiled = self._compiled
        mask_bits = compiled.mask_bits
        core_masks = compiled.core_masks(
            mapping.core_index_list(compiled.names), platform.num_cores
        )
        register_bits = tuple(mask_bits(mask) for mask in core_masks)
        execution_cycles = tuple(
            schedule.busy_cycles(core) for core in range(platform.num_cores)
        )
        # Full-window exposure in each core's own cycles (see module
        # docstring): registers stay live from start to T_M.
        exposure_cycles = tuple(
            makespan_s * frequency if bits else 0.0
            for frequency, bits in zip(frequencies, register_bits)
        )
        gamma = expected_seus(register_bits, exposure_cycles, rates)

        power_mw = self.power_model.platform_power_mw(
            platform, scaling=scaling, activities=activities
        )
        meets = None
        if self.deadline_s is not None:
            meets = makespan_s <= self.deadline_s + 1e-12

        return DesignPoint(
            mapping=mapping,
            scaling=scaling,
            power_mw=power_mw,
            register_bits_per_core=register_bits,
            register_bits_total=sum(register_bits),
            execution_cycles_per_core=execution_cycles,
            makespan_s=makespan_s,
            makespan_cycles=schedule.makespan_cycles(),
            expected_seus=gamma,
            activities=activities,
            meets_deadline=meets,
            schedule=schedule,
        )

    def evaluate_reference(
        self, mapping: Mapping, scaling: Optional[Sequence[int]] = None
    ) -> DesignPoint:
        """The original (seed) evaluation path, uncached and uncompiled.

        Schedules with :meth:`ListScheduler.schedule_reference` and
        computes register bits through a fresh :class:`RegisterMap` —
        exactly the seed implementation.  The parity suite asserts
        :meth:`evaluate` reproduces every field bit-for-bit.
        """
        if scaling is None:
            scaling = self.platform.scaling_vector()
        scaling = self.platform.scaling_table.validate_assignment(scaling)
        graph, platform = self.graph, self.platform
        mapping.validate_against(graph)
        table = platform.scaling_table
        frequencies = [table.frequency_hz(coefficient) for coefficient in scaling]
        voltages = [table.vdd_v(coefficient) for coefficient in scaling]

        scheduler = ListScheduler(graph, frequencies, comm_model=self.comm_model)
        schedule = scheduler.schedule_reference(mapping)
        makespan_s = schedule.makespan_s()
        activities = schedule.activities()

        register_bits = per_core_register_bits(graph, mapping)
        execution_cycles = tuple(
            schedule.busy_cycles(core) for core in range(platform.num_cores)
        )
        exposure_cycles = tuple(
            makespan_s * frequency if bits else 0.0
            for frequency, bits in zip(frequencies, register_bits)
        )
        rates = [self.ser_model.rate(vdd) for vdd in voltages]
        gamma = expected_seus(register_bits, exposure_cycles, rates)

        power_mw = self.power_model.platform_power_mw(
            platform, scaling=scaling, activities=activities
        )
        meets = None
        if self.deadline_s is not None:
            meets = makespan_s <= self.deadline_s + 1e-12

        return DesignPoint(
            mapping=mapping,
            scaling=scaling,
            power_mw=power_mw,
            register_bits_per_core=register_bits,
            register_bits_total=sum(register_bits),
            execution_cycles_per_core=execution_cycles,
            makespan_s=makespan_s,
            makespan_cycles=schedule.makespan_cycles(),
            expected_seus=gamma,
            activities=activities,
            meets_deadline=meets,
            schedule=schedule,
        )

    # -- cache control ----------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop all cached design points (the hit/miss counters persist)."""
        self._cache.clear()

    @property
    def cache_entries(self) -> int:
        """Number of cached design points."""
        return len(self._cache)

    @property
    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters, ``functools.lru_cache`` style."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
            "max_size": self._cache_size,
        }
