"""Design-point metrics: Eqs. (3)-(8) of the paper.

This module turns a (mapping, scaling) pair into the quantities the
paper optimizes over:

* per-core register usage ``R_i`` (Eq. 8) — the bit-cardinality of the
  union of register sets of the tasks on core *i*;
* per-core execution time ``T_i`` in cycles (Eq. 7) — computation plus
  cross-core dependency (receive) cycles;
* the multiprocessor execution time ``T_M`` — authoritative value from
  list scheduling, with the paper's pooled-throughput estimate (Eq. 6)
  available as :func:`pooled_makespan_s`;
* the expected number of SEUs experienced ``Gamma`` (Eq. 3);
* dynamic power ``P`` (Eq. 5) using schedule-derived activity factors.

Exposure model (DESIGN.md §5)
-----------------------------
Register *state* is live — and hence exposed to upsets — for the whole
multiprocessor execution window, not only while its core is actively
computing (a register bank retains data through idle cycles).  Each
core's exposure is therefore ``R_i * T_M`` counted in the core's own
clock cycles (``T_M_s * f_i``), with the per-cycle rate ``lambda_i``
depending on the core's voltage.  Counting exposure in local cycles
makes Gamma frequency-invariant for a fixed mapping, which is exactly
how the paper reads Fig. 3(c): the ~2.5x growth at s=2 is attributed
entirely to the Vdd-lambda relationship while T_M (in wall time)
merely doubles.

:class:`MappingEvaluator` bundles the platform, SER and power models
and caches evaluations, since local search re-visits design points.
"""

from __future__ import annotations

import dataclasses
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.mpsoc import MPSoC
from repro.arch.power import PowerModel
from repro.faults.ser import SERModel
from repro.mapping.mapping import Mapping
from repro.sched.batched import BatchedListScheduler, numpy_available

try:  # optional: the vectorized batch path degrades gracefully without it
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import Schedule
from repro.taskgraph.graph import TaskGraph

# ---------------------------------------------------------------------------
# Elementary metrics (pure functions of graph + mapping)
# ---------------------------------------------------------------------------


def core_register_bits(graph: TaskGraph, mapping: Mapping, core_index: int) -> int:
    """``R_i`` of Eq. (8): union bits of the register sets on one core."""
    register_map = graph.register_map()
    tasks = mapping.tasks_on(core_index)
    if not tasks:
        return 0
    return register_map.union_bits(tasks)


def per_core_register_bits(graph: TaskGraph, mapping: Mapping) -> Tuple[int, ...]:
    """``R_i`` for every core."""
    register_map = graph.register_map()
    return tuple(
        register_map.union_bits(tasks) if tasks else 0
        for tasks in mapping.core_groups()
    )


def total_register_bits(graph: TaskGraph, mapping: Mapping) -> int:
    """Overall register usage ``R = sum_i R_i`` (bits).

    Shared sets mapped across cores are counted once *per core* — the
    duplication effect of Section III.
    """
    return sum(per_core_register_bits(graph, mapping))


def core_execution_cycles(graph: TaskGraph, mapping: Mapping, core_index: int) -> int:
    """``T_i`` of Eq. (7) in cycles: computation plus cross-core receives."""
    total = 0
    for name in mapping.tasks_on(core_index):
        total += graph.task(name).cycles
        for producer in graph.predecessors(name):
            if mapping.core_of(producer) != core_index:
                total += graph.comm_cycles(producer, name)
    return total


def per_core_execution_cycles(graph: TaskGraph, mapping: Mapping) -> Tuple[int, ...]:
    """``T_i`` for every core."""
    return tuple(
        core_execution_cycles(graph, mapping, core)
        for core in range(mapping.num_cores)
    )


def pooled_makespan_s(
    graph: TaskGraph, mapping: Mapping, frequencies_hz: Sequence[float]
) -> float:
    """The paper's aggregate makespan estimate, Eq. (6).

    Total busy cycles over all cores divided by the summed effective
    clock rate.  It ignores precedence stalls, so it lower-bounds the
    real (list-scheduled) makespan for balanced mappings; the
    optimizers use the scheduler's makespan as the authoritative T_M.
    """
    if len(frequencies_hz) != mapping.num_cores:
        raise ValueError(
            f"{len(frequencies_hz)} frequencies for {mapping.num_cores} cores"
        )
    total_cycles = sum(per_core_execution_cycles(graph, mapping))
    pooled_rate = sum(frequencies_hz)
    if pooled_rate <= 0:
        raise ValueError("pooled clock rate must be positive")
    return total_cycles / pooled_rate


def expected_seus(
    register_bits: Sequence[int],
    execution_cycles: Sequence[float],
    rates: Sequence[float],
) -> float:
    """``Gamma`` of Eq. (3): ``sum_i R_i * T_i * lambda_i``.

    Parameters
    ----------
    register_bits:
        ``R_i`` per core (live register bits).
    execution_cycles:
        Exposure window per core, in the core's own clock cycles
        (full-makespan exposure: ``T_M_s * f_i``).
    rates:
        ``lambda_i`` per core, SEUs per bit per cycle.
    """
    if not len(register_bits) == len(execution_cycles) == len(rates):
        raise ValueError("per-core vectors must have equal length")
    return sum(
        bits * cycles * rate
        for bits, cycles, rate in zip(register_bits, execution_cycles, rates)
    )


# ---------------------------------------------------------------------------
# Incremental cache signatures
# ---------------------------------------------------------------------------

#: Debug toggle: when armed (``REPRO_VALIDATE_SIGNATURES=1`` or
#: :func:`set_signature_validation`), every :class:`SignatureTracker`
#: commit and rebuild re-derives the hash from scratch and asserts the
#: incremental value matches — the runtime half of the signature-parity
#: contract (the hypothesis suite is the offline half).
_validate_signatures = os.environ.get("REPRO_VALIDATE_SIGNATURES", "") not in (
    "",
    "0",
)


def set_signature_validation(enabled: bool) -> None:
    """Toggle incremental-signature parity assertions at runtime.

    Per-process; workers of the process backend inherit the
    ``REPRO_VALIDATE_SIGNATURES`` environment variable instead.
    """
    global _validate_signatures
    _validate_signatures = bool(enabled)


class SignatureKey:
    """The evaluator's LRU cache key, with a precomputed hash.

    Content is the canonical mapping signature (core of every task in
    compiled index order), the mapping's core count and the scaling
    vector — exactly the tuple key the PR-3-era cache used.  The hash,
    however, is carried in: full builds derive it from the compiled
    view's Zobrist tables (:meth:`CompiledTaskGraph.signature_hash`)
    and the search inner loop maintains it under single-move deltas
    (:class:`SignatureTracker`), so an LRU probe for a neighbour no
    longer pays an O(N) signature walk + tuple hash.  Equality is by
    content (tuple compares at C speed), reached only on hash-bucket
    matches.
    """

    __slots__ = ("signature", "num_cores", "scaling", "hash_value")

    def __init__(
        self,
        signature: Tuple[int, ...],
        num_cores: int,
        scaling: Tuple[int, ...],
        signature_hash: int,
    ) -> None:
        self.signature = signature
        self.num_cores = num_cores
        self.scaling = scaling
        # One small-tuple hash folds the scaling/core-count identity
        # into the maintained signature hash; every construction site
        # (full build or incremental) goes through here, so the mix is
        # consistent by design.
        self.hash_value = hash((signature_hash, num_cores, scaling))

    def __hash__(self) -> int:
        return self.hash_value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignatureKey):
            return NotImplemented
        return (
            self.signature == other.signature
            and self.num_cores == other.num_cores
            and self.scaling == other.scaling
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SignatureKey(tasks={len(self.signature)}, "
            f"cores={self.num_cores}, scaling={self.scaling})"
        )


class SignatureTracker:
    """Incrementally maintained cache signature for a search walk.

    Holds the canonical signature of the walk's *current* mapping as a
    tuple plus its Zobrist hash, both updated in O(1)/O(popcount) under
    single-move and swap deltas: :meth:`preview_move` /
    :meth:`preview_swap` return the neighbour's ``(signature, hash)``
    without touching the anchor (the tuple rebuild is one C-level
    slice-copy; the hash is two/four XORs), :meth:`commit` adopts a
    previewed neighbour on acceptance, and :meth:`rebuild` is the full
    recompute fallback (re-anchoring on an arbitrary mapping, e.g.
    intensification pulling the walk back to the best point).

    With validation armed (``REPRO_VALIDATE_SIGNATURES=1``) every
    commit re-derives the hash from scratch and asserts parity with
    :meth:`CompiledTaskGraph.signature_hash`.
    """

    __slots__ = (
        "_compiled",
        "_table",
        "_num_cores",
        "signature",
        "signature_hash",
        "rebuilds",
    )

    def __init__(
        self,
        compiled,
        signature: Sequence[int],
        num_cores: int,
        signature_hash: Optional[int] = None,
    ) -> None:
        self._compiled = compiled
        self._table = compiled.signature_table(num_cores)
        self._num_cores = num_cores
        self.signature: Tuple[int, ...] = tuple(signature)
        if len(self.signature) != compiled.num_tasks:
            raise ValueError(
                f"signature has {len(self.signature)} entries for "
                f"{compiled.num_tasks} tasks"
            )
        if signature_hash is None:
            signature_hash = compiled.signature_hash(self.signature, num_cores)
        self.signature_hash: int = signature_hash
        self.rebuilds = 0  # full-recompute fallbacks taken

    def preview_move(self, task: int, core: int) -> Tuple[Tuple[int, ...], int]:
        """(signature, hash) of the neighbour moving ``task`` to ``core``."""
        signature = self.signature
        row = self._table[task]
        new_hash = self.signature_hash ^ row[signature[task]] ^ row[core]
        new_signature = signature[:task] + (core,) + signature[task + 1 :]
        return new_signature, new_hash

    def preview_swap(self, task_a: int, task_b: int) -> Tuple[Tuple[int, ...], int]:
        """(signature, hash) of the neighbour exchanging two tasks' cores."""
        signature = self.signature
        core_a, core_b = signature[task_a], signature[task_b]
        row_a, row_b = self._table[task_a], self._table[task_b]
        new_hash = (
            self.signature_hash
            ^ row_a[core_a]
            ^ row_a[core_b]
            ^ row_b[core_b]
            ^ row_b[core_a]
        )
        entries = list(signature)
        entries[task_a] = core_b
        entries[task_b] = core_a
        return tuple(entries), new_hash

    def commit(self, signature: Tuple[int, ...], signature_hash: int) -> None:
        """Adopt a previewed neighbour as the new anchor."""
        if _validate_signatures:
            expected = self._compiled.signature_hash(signature, self._num_cores)
            assert signature_hash == expected, (
                "incremental signature hash diverged from the rebuild path: "
                f"{signature_hash} != {expected}"
            )
        self.signature = signature
        self.signature_hash = signature_hash

    def rebuild(self, signature: Sequence[int]) -> None:
        """Re-anchor on an arbitrary signature (full O(N) recompute)."""
        self.signature = tuple(signature)
        if len(self.signature) != self._compiled.num_tasks:
            raise ValueError(
                f"signature has {len(self.signature)} entries for "
                f"{self._compiled.num_tasks} tasks"
            )
        self.signature_hash = self._compiled.signature_hash(
            self.signature, self._num_cores
        )
        self.rebuilds += 1


# ---------------------------------------------------------------------------
# Design points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DesignPoint:
    """A fully evaluated (mapping, scaling) design.

    All of Table II's columns are here: the mapping, the per-core
    scaling coefficients, power ``P`` (mW), register usage ``R``
    (bits), multiprocessor execution time ``T_M`` (seconds and
    nominal-clock cycles) and expected SEUs ``Gamma``.
    """

    mapping: Mapping
    scaling: Tuple[int, ...]
    power_mw: float
    register_bits_per_core: Tuple[int, ...]
    register_bits_total: int
    execution_cycles_per_core: Tuple[int, ...]
    makespan_s: float
    makespan_cycles: int
    expected_seus: float
    activities: Tuple[float, ...]
    meets_deadline: Optional[bool] = None
    schedule: Optional[Schedule] = field(repr=False, compare=False, default=None)

    @property
    def register_kbits_total(self) -> float:
        """R in kbits (1 kbit = 1000 bits), the paper's reporting unit."""
        return self.register_bits_total / 1000.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        deadline = (
            ""
            if self.meets_deadline is None
            else f", deadline {'met' if self.meets_deadline else 'MISSED'}"
        )
        return (
            f"P={self.power_mw:.2f}mW R={self.register_kbits_total:.1f}kb "
            f"T_M={self.makespan_s * 1e3:.1f}ms Gamma={self.expected_seus:.3e} "
            f"s={self.scaling}{deadline}"
        )


class _PendingPoint:
    """A placeholder occupying a cache slot during one batched call.

    :meth:`MappingEvaluator.evaluate_batch` replays the loop path's
    exact cache-operation sequence before the vectorized evaluation
    runs; placeholders hold the LRU positions in the meantime and are
    swapped for the real :class:`DesignPoint` in place.  They never
    escape a single ``evaluate_batch`` call.
    """

    __slots__ = ("mapping", "signature", "point")

    def __init__(self, mapping: Mapping, signature: Tuple[int, ...]) -> None:
        self.mapping = mapping
        self.signature = signature
        self.point: Optional[DesignPoint] = None


class MappingEvaluator:
    """Evaluates mappings into :class:`DesignPoint` values.

    Parameters
    ----------
    graph:
        Application task graph.
    platform:
        MPSoC platform (supplies scaling table and capacitance).
    ser_model:
        Voltage-dependent soft error rate; defaults to the paper's
        1e-9/bit/cycle nominal model.
    power_model:
        Dynamic power model; defaults to the platform's capacitance.
    deadline_s:
        Optional real-time constraint ``T_Mref``; when set, design
        points carry ``meets_deadline``.
    cache_size:
        Maximum number of cached evaluations (0 disables caching).
        Eviction is true LRU, keyed by a canonical mapping signature
        (the core of every task in compiled index order) plus the
        scaling vector; ``cache_hits`` / ``cache_misses`` count the
        traffic.
    comm_model:
        Scheduler communication model, ``"dedicated"`` (the paper's
        platform, default) or ``"shared-bus"`` (see
        :class:`~repro.sched.list_scheduler.ListScheduler`).
    """

    def __init__(
        self,
        graph: TaskGraph,
        platform: MPSoC,
        ser_model: Optional[SERModel] = None,
        power_model: Optional[PowerModel] = None,
        deadline_s: Optional[float] = None,
        cache_size: int = 4096,
        comm_model: str = "dedicated",
    ) -> None:
        graph.validate()
        self.graph = graph
        self.platform = platform
        self.ser_model = ser_model or SERModel()
        if power_model is None:
            # Heterogeneous platforms fall back to each core's own spec
            # capacitance; homogeneous ones pin the shared value (the
            # seed construction, same float everywhere).
            power_model = (
                PowerModel()
                if platform.is_heterogeneous
                else PowerModel(platform.core_spec.switched_capacitance_f)
            )
        self.power_model = power_model
        self.deadline_s = deadline_s
        self.comm_model = comm_model
        self._cache: "OrderedDict[SignatureKey, DesignPoint]" = OrderedDict()
        self._cache_size = max(cache_size, 0)
        self.evaluations = 0  # total evaluate() calls, cache hits included
        self.cache_hits = 0
        self.cache_misses = 0
        # Per-scaling memos: (frequencies, voltages, rates) and the
        # ListScheduler built for them.  A search sweep revisits the
        # same handful of scaling vectors hundreds of thousands of
        # times; rebuilding the scheduler (and its bottom-level
        # priority templates) each call was pure waste.
        self._operating_points: Dict[
            Tuple[int, ...], Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]
        ] = {}
        self._schedulers: Dict[Tuple[int, ...], ListScheduler] = {}
        self._batched_schedulers: Dict[Tuple[int, ...], BatchedListScheduler] = {}
        self._power_terms_memo: Dict[Tuple[int, ...], object] = {}
        self._scaling_memo: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        # Per-core cycle-scale factors for heterogeneous platforms;
        # None keeps every scheduler on the base-cycle seed path.
        self._cycle_scales = (
            None if platform.uniform_unit_cycles else platform.cycle_scales()
        )
        self._compiled = graph.compiled()

    def _sync_compiled(self):
        """Refresh graph-derived memos if the graph mutated.

        The scheduler memo and the design-point cache both snapshot
        graph structure; a mutation (new task/edge/registers) renews
        the graph's compiled view, and stale entries would silently
        return wrong results.
        """
        compiled = self.graph.compiled()
        if compiled is not self._compiled:
            self._compiled = compiled
            self._schedulers.clear()
            self._batched_schedulers.clear()
            self._cache.clear()
        return compiled

    # -- main entry point -----------------------------------------------------

    def _resolve_scaling(self, scaling: Optional[Sequence[int]]) -> Tuple[int, ...]:
        """Validate a scaling vector (``None`` means the platform's).

        Memoized per distinct input — search loops resolve the same
        handful of vectors hundreds of thousands of times.
        """
        if scaling is None:
            return self.platform.scaling_vector()
        key = tuple(scaling)
        cached = self._scaling_memo.get(key)
        if cached is not None:
            return cached
        scaling_vector = self.platform.validate_assignment(key)
        if len(scaling_vector) != self.platform.num_cores:
            raise ValueError(
                f"scaling vector has {len(scaling_vector)} entries for "
                f"{self.platform.num_cores} cores"
            )
        self._scaling_memo[key] = scaling_vector
        return scaling_vector

    def _cache_key(
        self, compiled, mapping: Mapping, scaling: Tuple[int, ...]
    ) -> SignatureKey:
        # num_cores is part of the key: two mappings with the same
        # per-task assignment but different platform widths must
        # not alias (the narrower one may be valid, the wider not).
        signature, sig_hash = mapping.signature_info(compiled)
        return SignatureKey(signature, mapping.num_cores, scaling, sig_hash)

    def _cache_lookup(self, key) -> Optional[DesignPoint]:
        """LRU get: counts the hit and refreshes recency on success."""
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(key)
        return cached

    def _cache_store(self, key, point: DesignPoint) -> None:
        """LRU put: inserts and evicts the oldest entry past capacity."""
        self._cache[key] = point
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)  # true LRU: evict the oldest

    def _probe_cache(
        self, key: "SignatureKey", scaling_vector: Tuple[int, ...]
    ) -> Optional[DesignPoint]:
        """The shared hit path of :meth:`evaluate` / :meth:`evaluate_signature`.

        A hit on a schedule-less point seeded by the vectorized
        :meth:`evaluate_batch` is rehydrated in place (the schedule is
        bit-identical to the one the miss path would have attached;
        the in-place assignment preserves the LRU position the hit
        just refreshed), keeping the full-schedule guarantee identical
        at both entry points.
        """
        cached = self._cache_lookup(key)
        if cached is None:
            return None
        if cached.schedule is None:
            schedule = self.scheduler_for(scaling_vector).schedule(cached.mapping)
            cached = dataclasses.replace(cached, schedule=schedule)
            self._cache[key] = cached
        return cached

    def evaluate(
        self, mapping: Mapping, scaling: Optional[Sequence[int]] = None
    ) -> DesignPoint:
        """Evaluate a mapping under a scaling vector (defaults to platform's).

        Returned points always carry a full :class:`Schedule`: a cache
        hit on a schedule-less point seeded by the vectorized
        :meth:`evaluate_batch` is rehydrated in place (the schedule is
        bit-identical to the one the miss path would have attached;
        metrics and counters are untouched).
        """
        scaling_vector = self._resolve_scaling(scaling)
        self.evaluations += 1
        compiled = self._sync_compiled()
        if self._cache_size:
            key = self._cache_key(compiled, mapping, scaling_vector)
            cached = self._probe_cache(key, scaling_vector)
            if cached is not None:
                return cached
        self.cache_misses += 1
        point = self._evaluate_uncached(mapping, scaling_vector)
        if self._cache_size:
            self._cache_store(key, point)
        return point

    def evaluate_signature(
        self,
        signature: Tuple[int, ...],
        scaling: Optional[Sequence[int]] = None,
        signature_hash: Optional[int] = None,
        num_cores: Optional[int] = None,
        template: Optional[Mapping] = None,
    ) -> DesignPoint:
        """Evaluate a canonical mapping signature — :meth:`evaluate`'s twin.

        The search inner loop carries ``(signature, hash)`` pairs
        maintained by a :class:`SignatureTracker` instead of
        materialized :class:`Mapping` objects; this entry point probes
        the same LRU cache with the same key content (so the two paths
        interoperate hit-for-hit) without the per-neighbour O(N)
        signature walk.  A ``Mapping`` is only built on a cache miss —
        the authoritative evaluation needs one anyway — with
        ``template`` supplying the task insertion order so rendered
        artifacts match the Mapping-based walk's byte for byte.
        Counters (``evaluations``/``cache_hits``/``cache_misses``),
        LRU traffic and the full-schedule guarantee are exactly
        :meth:`evaluate`'s.

        Parameters
        ----------
        signature:
            Core of every task, in compiled index order.
        scaling:
            Scaling vector (``None`` means the platform's).
        signature_hash:
            The signature's :meth:`CompiledTaskGraph.signature_hash`;
            derived from scratch when omitted.
        num_cores:
            Core count the signature targets (the platform's when
            omitted) — part of the cache key, exactly as
            ``mapping.num_cores`` is for :meth:`evaluate`.
        template:
            Optional mapping whose task insertion order materialized
            mappings reuse (typically the walk's initial mapping).
        """
        scaling_vector = self._resolve_scaling(scaling)
        self.evaluations += 1
        compiled = self._sync_compiled()
        signature = tuple(signature)
        if num_cores is None:
            num_cores = self.platform.num_cores
        if signature_hash is None:
            # Validate before hashing: Python's negative indexing would
            # otherwise wrap a bad entry into a silently-valid table
            # lookup.  Hot callers always supply the hash, so this O(N)
            # scan only runs on the cold path.
            bad = next(
                (c for c in signature if not 0 <= c < num_cores), None
            )
            if bad is not None:
                raise ValueError(
                    f"core index {bad} outside 0..{num_cores - 1}"
                )
            signature_hash = compiled.signature_hash(signature, num_cores)
        key: Optional[SignatureKey] = None
        if self._cache_size:
            key = SignatureKey(signature, num_cores, scaling_vector, signature_hash)
            cached = self._probe_cache(key, scaling_vector)
            if cached is not None:
                return cached
        self.cache_misses += 1
        mapping = Mapping.from_signature(
            compiled.names, signature, num_cores, template=template
        )
        # Seed the new mapping's signature memo — the signature is in
        # hand, and the evaluation body re-reads it.
        mapping._sig_memo = (compiled, signature, signature_hash)
        point = self._evaluate_uncached(mapping, scaling_vector)
        if key is not None:
            self._cache_store(key, point)
        return point

    def evaluate_batch(
        self,
        mappings: Sequence[Mapping],
        scaling: Optional[Sequence[int]] = None,
        include_schedules: bool = False,
    ) -> List[DesignPoint]:
        """Evaluate many mappings under one scaling vector, vectorized.

        Returns one :class:`DesignPoint` per mapping, in input order,
        with results, cache contents and the ``evaluations`` /
        ``cache_hits`` / ``cache_misses`` counters exactly as if
        :meth:`evaluate` had been called per mapping.  Internally the
        whole batch of cache misses is list-scheduled in **one**
        numpy pass through :class:`~repro.sched.batched.
        BatchedListScheduler` — bit-identical metrics (same IEEE-754
        operations, see the module docstring there), several times
        faster than the per-mapping loop, which survives as
        :meth:`evaluate_batch_reference` for parity testing and as the
        fallback when numpy is unavailable.

        ``include_schedules=False`` (the default) skips materializing
        per-mapping :class:`Schedule` objects — the bulk consumers
        (fig3's sample study, batched candidate screening in the
        searchers) never look at them.  Points produced this way carry
        ``schedule=None`` (also into the cache; a later
        :meth:`evaluate` hit rehydrates the schedule in place, so
        evaluate()'s full-schedule guarantee is preserved).  Pass
        ``include_schedules=True`` when the batch results themselves
        feed schedule consumers (recovery slack, Gantt rendering) —
        the rows come straight from the batch arrays and remain
        bit-identical.
        """
        scaling_vector = self._resolve_scaling(scaling)
        compiled = self._sync_compiled()
        mappings = list(mappings)
        if not mappings:
            return []
        batched = self.batched_scheduler_for(scaling_vector)
        if batched is None:  # numpy unavailable: the loop path is exact
            return self.evaluate_batch_reference(mappings, scaling_vector)
        num_cores = self.platform.num_cores
        cache_size = self._cache_size
        # Phase 1 — replay the per-call cache sequence (lookups, hit
        # counting, LRU stores and evictions) with placeholder points,
        # so cache state and counters end up exactly as a loop of
        # evaluate() calls would leave them; only the evaluation work
        # itself is deferred to one vectorized shot.
        pending: "OrderedDict[Tuple[int, ...], _PendingPoint]" = OrderedDict()
        slots: List[object] = []
        stored: List[Tuple[object, "_PendingPoint"]] = []
        try:
            for mapping in mappings:
                self.evaluations += 1
                if cache_size:
                    key = self._cache_key(compiled, mapping, scaling_vector)
                    cached = self._cache_lookup(key)
                    if cached is not None:
                        slots.append(cached)
                        continue
                    signature = key.signature
                    self.cache_misses += 1
                else:
                    self.cache_misses += 1
                    signature = compiled.signature(mapping)
                if mapping.num_cores != num_cores:
                    raise ValueError(
                        f"mapping targets {mapping.num_cores} cores, scheduler "
                        f"has {num_cores}"
                    )
                placeholder = pending.get(signature)
                if placeholder is None:
                    placeholder = _PendingPoint(mapping, signature)
                    pending[signature] = placeholder
                if cache_size:
                    self._cache_store(key, placeholder)
                    stored.append((key, placeholder))
                slots.append(placeholder)
            # Phase 2 — one vectorized scheduling pass over the misses.
            if pending:
                self._evaluate_pending(
                    pending, scaling_vector, batched, include_schedules
                )
        except Exception:
            # Leave no placeholder behind: the cache must only ever
            # hand out real design points.
            for key, placeholder in stored:
                if self._cache.get(key) is placeholder:
                    del self._cache[key]
            raise
        # Phase 3 — swap computed points in under their keys without
        # touching LRU order (in-place assignment preserves position).
        for key, placeholder in stored:
            if self._cache.get(key) is placeholder:
                self._cache[key] = placeholder.point
        return [
            slot.point if isinstance(slot, _PendingPoint) else slot
            for slot in slots
        ]

    def _evaluate_pending(
        self,
        pending: "OrderedDict[Tuple[int, ...], _PendingPoint]",
        scaling: Tuple[int, ...],
        batched: BatchedListScheduler,
        include_schedules: bool,
    ) -> None:
        """Schedule all pending signatures in one shot and build points.

        The per-row assembly replays :meth:`_evaluate_with`'s float
        operations exactly (same expressions, same core order, power
        through the precomputed Eq. (5) terms) so batched points are
        bit-identical to the loop path's.
        """
        frequencies, _, rates = self._operating_point(scaling)
        platform = self.platform
        compiled = self._compiled
        mask_bits = compiled.mask_bits
        deadline = self.deadline_s
        num_cores = platform.num_cores
        power_model = self.power_model
        power_terms = self._power_terms(scaling)
        result = batched.run(list(pending.keys()))
        # One bulk conversion to Python scalars for the whole batch —
        # exact, and far cheaper than per-row numpy scalar reads.
        makespans = result.makespans.tolist()
        busy_cycles_rows = result.busy_cycles.tolist()
        max_frequency = max(frequencies)
        idle_activities = (0.0,) * num_cores
        # Activities vectorize batch-wide (same divide and min ops as
        # Schedule.activities); rows with an empty span fall back.
        if min(makespans) > 0.0:
            activity_rows = _np.minimum(
                result.busy_s / result.makespans[:, None], 1.0
            ).tolist()
        else:
            activity_rows = None
            busy_s_rows = result.busy_s.tolist()
        # Per-core register unions vectorize when every mask fits an
        # int64 lane (<= 63 distinct registers); the bitwise ORs are
        # the same ones core_masks performs, in any order.
        mask_rows = None
        if 0 < len(compiled.registers) <= 63:
            task_masks = _np.asarray(
                compiled.task_register_masks, dtype=_np.int64
            )
            cores_array = result.cores
            mask_rows = _np.stack(
                [
                    _np.bitwise_or.reduce(
                        _np.where(cores_array == core, task_masks, 0), axis=1
                    )
                    for core in range(num_cores)
                ],
                axis=1,
            ).tolist()
        for row, placeholder in enumerate(pending.values()):
            makespan_s = makespans[row]
            if activity_rows is not None:
                activities = tuple(activity_rows[row])
            elif makespan_s <= 0.0:
                activities = idle_activities
            else:
                activities = tuple(
                    min(busy / makespan_s, 1.0) for busy in busy_s_rows[row]
                )
            if mask_rows is not None:
                core_masks = mask_rows[row]
            else:
                core_masks = compiled.core_masks(placeholder.signature, num_cores)
            register_bits = tuple(mask_bits(mask) for mask in core_masks)
            # Inlined Eq. (3) under full-window exposure: identical
            # term order and float ops as exposure tuple + expected_seus.
            gamma = 0.0
            for bits, frequency, rate in zip(register_bits, frequencies, rates):
                if bits:
                    gamma += bits * (makespan_s * frequency) * rate
            power_mw = power_model.platform_power_mw_from_terms(
                power_terms, activities
            )
            meets = None
            if deadline is not None:
                meets = makespan_s <= deadline + 1e-12
            placeholder.point = DesignPoint(
                mapping=placeholder.mapping,
                scaling=scaling,
                power_mw=power_mw,
                register_bits_per_core=register_bits,
                register_bits_total=sum(register_bits),
                execution_cycles_per_core=tuple(busy_cycles_rows[row]),
                makespan_s=makespan_s,
                makespan_cycles=int(round(makespan_s * max_frequency)),
                expected_seus=gamma,
                activities=activities,
                meets_deadline=meets,
                schedule=result.schedule(row) if include_schedules else None,
            )

    def evaluate_batch_reference(
        self, mappings: Sequence[Mapping], scaling: Optional[Sequence[int]] = None
    ) -> List[DesignPoint]:
        """The per-mapping loop path (one compiled evaluation per entry).

        Behaviourally identical to calling :meth:`evaluate` in a loop
        (results, cache traffic and counters), with the per-call fixed
        costs amortized.  Kept as the behavioural reference for the
        vectorized :meth:`evaluate_batch` — the parity suite asserts
        bit-identical points and counter parity between the two — and
        as the fallback when numpy is unavailable.  Points carry full
        schedules, exactly like :meth:`evaluate`'s.
        """
        scaling_vector = self._resolve_scaling(scaling)
        compiled = self._sync_compiled()
        frequencies, _, rates = self._operating_point(scaling_vector)
        scheduler = self.scheduler_for(scaling_vector)
        cache_size = self._cache_size
        points: List[DesignPoint] = []
        for mapping in mappings:
            self.evaluations += 1
            if cache_size:
                key = self._cache_key(compiled, mapping, scaling_vector)
                cached = self._cache_lookup(key)
                if cached is not None:
                    points.append(cached)
                    continue
            self.cache_misses += 1
            point = self._evaluate_with(
                mapping, scaling_vector, frequencies, rates, scheduler
            )
            if cache_size:
                self._cache_store(key, point)
            points.append(point)
        return points

    def _operating_point(
        self, scaling: Tuple[int, ...]
    ) -> Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]:
        """Memoized (frequencies, voltages, lambda rates) for a scaling."""
        cached = self._operating_points.get(scaling)
        if cached is None:
            # Per-core tables: one shared object on homogeneous
            # platforms, so the floats are exactly the seed path's.
            tables = self.platform.core_tables
            frequencies = tuple(
                table.frequency_hz(coefficient)
                for table, coefficient in zip(tables, scaling)
            )
            voltages = tuple(
                table.vdd_v(coefficient)
                for table, coefficient in zip(tables, scaling)
            )
            rates = tuple(self.ser_model.rate(vdd) for vdd in voltages)
            cached = (frequencies, voltages, rates)
            self._operating_points[scaling] = cached
        return cached

    def scheduler_for(self, scaling: Tuple[int, ...]) -> ListScheduler:
        """The (memoized) list scheduler for one scaling vector."""
        self._sync_compiled()
        scheduler = self._schedulers.get(scaling)
        if scheduler is None:
            frequencies, _, _ = self._operating_point(scaling)
            scheduler = ListScheduler(
                self.graph,
                frequencies,
                comm_model=self.comm_model,
                cycle_scales=self._cycle_scales,
            )
            self._schedulers[scaling] = scheduler
        return scheduler

    def _power_terms(self, scaling: Tuple[int, ...]):
        """Memoized Eq. (5) invariants (platform-only, graph-independent)."""
        terms = self._power_terms_memo.get(scaling)
        if terms is None:
            terms = self.power_model.platform_terms(self.platform, scaling)
            self._power_terms_memo[scaling] = terms
        return terms

    def batched_scheduler_for(
        self, scaling: Tuple[int, ...]
    ) -> Optional[BatchedListScheduler]:
        """The (memoized) vectorized batch scheduler for one scaling.

        ``None`` when numpy is unavailable — callers fall back to the
        per-mapping loop path.
        """
        if not numpy_available():
            return None
        self._sync_compiled()
        batched = self._batched_schedulers.get(scaling)
        if batched is None:
            frequencies, _, _ = self._operating_point(scaling)
            batched = BatchedListScheduler(
                self.graph,
                frequencies,
                comm_model=self.comm_model,
                cycle_scales=self._cycle_scales,
            )
            self._batched_schedulers[scaling] = batched
        return batched

    def _evaluate_uncached(
        self, mapping: Mapping, scaling: Tuple[int, ...]
    ) -> DesignPoint:
        frequencies, _, rates = self._operating_point(scaling)
        scheduler = self.scheduler_for(scaling)
        return self._evaluate_with(mapping, scaling, frequencies, rates, scheduler)

    def _evaluate_with(
        self,
        mapping: Mapping,
        scaling: Tuple[int, ...],
        frequencies: Tuple[float, ...],
        rates: Tuple[float, ...],
        scheduler: ListScheduler,
    ) -> DesignPoint:
        """The evaluation body, with the per-scaling lookups prefetched."""
        platform = self.platform
        schedule = scheduler.schedule(mapping)  # validates mapping coverage
        makespan_s = schedule.makespan_s()
        activities = schedule.activities()

        compiled = self._compiled
        mask_bits = compiled.mask_bits
        core_masks = compiled.core_masks(
            mapping.core_index_list(compiled.names), platform.num_cores
        )
        register_bits = tuple(mask_bits(mask) for mask in core_masks)
        execution_cycles = tuple(
            schedule.busy_cycles(core) for core in range(platform.num_cores)
        )
        # Full-window exposure in each core's own cycles (see module
        # docstring): registers stay live from start to T_M.
        exposure_cycles = tuple(
            makespan_s * frequency if bits else 0.0
            for frequency, bits in zip(frequencies, register_bits)
        )
        gamma = expected_seus(register_bits, exposure_cycles, rates)

        power_mw = self.power_model.platform_power_mw(
            platform, scaling=scaling, activities=activities
        )
        meets = None
        if self.deadline_s is not None:
            meets = makespan_s <= self.deadline_s + 1e-12

        return DesignPoint(
            mapping=mapping,
            scaling=scaling,
            power_mw=power_mw,
            register_bits_per_core=register_bits,
            register_bits_total=sum(register_bits),
            execution_cycles_per_core=execution_cycles,
            makespan_s=makespan_s,
            makespan_cycles=schedule.makespan_cycles(),
            expected_seus=gamma,
            activities=activities,
            meets_deadline=meets,
            schedule=schedule,
        )

    def evaluate_reference(
        self, mapping: Mapping, scaling: Optional[Sequence[int]] = None
    ) -> DesignPoint:
        """The original (seed) evaluation path, uncached and uncompiled.

        Schedules with :meth:`ListScheduler.schedule_reference` and
        computes register bits through a fresh :class:`RegisterMap` —
        exactly the seed implementation.  The parity suite asserts
        :meth:`evaluate` reproduces every field bit-for-bit.
        """
        if scaling is None:
            scaling = self.platform.scaling_vector()
        scaling = self.platform.validate_assignment(scaling)
        graph, platform = self.graph, self.platform
        mapping.validate_against(graph)
        tables = platform.core_tables
        frequencies = [
            table.frequency_hz(coefficient)
            for table, coefficient in zip(tables, scaling)
        ]
        voltages = [
            table.vdd_v(coefficient)
            for table, coefficient in zip(tables, scaling)
        ]

        scheduler = ListScheduler(
            graph,
            frequencies,
            comm_model=self.comm_model,
            cycle_scales=self._cycle_scales,
        )
        schedule = scheduler.schedule_reference(mapping)
        makespan_s = schedule.makespan_s()
        activities = schedule.activities()

        register_bits = per_core_register_bits(graph, mapping)
        execution_cycles = tuple(
            schedule.busy_cycles(core) for core in range(platform.num_cores)
        )
        exposure_cycles = tuple(
            makespan_s * frequency if bits else 0.0
            for frequency, bits in zip(frequencies, register_bits)
        )
        rates = [self.ser_model.rate(vdd) for vdd in voltages]
        gamma = expected_seus(register_bits, exposure_cycles, rates)

        power_mw = self.power_model.platform_power_mw(
            platform, scaling=scaling, activities=activities
        )
        meets = None
        if self.deadline_s is not None:
            meets = makespan_s <= self.deadline_s + 1e-12

        return DesignPoint(
            mapping=mapping,
            scaling=scaling,
            power_mw=power_mw,
            register_bits_per_core=register_bits,
            register_bits_total=sum(register_bits),
            execution_cycles_per_core=execution_cycles,
            makespan_s=makespan_s,
            makespan_cycles=schedule.makespan_cycles(),
            expected_seus=gamma,
            activities=activities,
            meets_deadline=meets,
            schedule=schedule,
        )

    # -- cache control ----------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop all cached design points (the hit/miss counters persist)."""
        self._cache.clear()

    @property
    def cache_entries(self) -> int:
        """Number of cached design points."""
        return len(self._cache)

    @property
    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters, ``functools.lru_cache`` style."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
            "max_size": self._cache_size,
        }
