"""Design optimization: the paper's contribution plus baselines.

* :mod:`~repro.optim.scaling_algorithm` — the ``nextScaling`` voltage
  scaling enumerator of Fig. 5(a)/(b).
* :mod:`~repro.optim.initial_mapping` — ``InitialSEAMapping`` (Fig. 6),
  the constructive soft error-aware mapping heuristic.
* :mod:`~repro.optim.optimized_mapping` — ``OptimizedMapping``
  (Fig. 7), local search with list scheduling under a deadline.
* :mod:`~repro.optim.annealing` — the simulated-annealing task mapper
  (Orsila et al. [13]) used by the soft error-unaware baselines
  Exp:1-3.
* :mod:`~repro.optim.objectives` — optimization objectives (register
  usage, makespan, their product, SEUs, power).
* :mod:`~repro.optim.design_optimizer` — the joint Fig. 4 loop
  combining power minimization, mapping and iterative assessment.
"""

from repro.optim.scaling_algorithm import (
    next_scaling,
    num_platform_scaling_combinations,
    num_scaling_combinations,
    platform_scaling_combinations,
    scaling_combinations,
)
from repro.optim.objectives import (
    MakespanObjective,
    Objective,
    PowerObjective,
    RegisterTimeProductObjective,
    RegisterUsageObjective,
    SEUObjective,
    deadline_penalized,
)
from repro.optim.moves import (
    InnerLoopStats,
    Move,
    MoveSampler,
    Swap,
    neighbor_mappings,
    random_neighbor,
)
from repro.optim.initial_mapping import initial_sea_mapping
from repro.optim.optimized_mapping import OptimizedMappingSearch, SearchResult
from repro.optim.annealing import AnnealingConfig, SimulatedAnnealingMapper
from repro.optim.design_optimizer import (
    BaselineMapper,
    DesignOptimizer,
    OptimizationOutcome,
    ScalingAssessment,
    SEAMapper,
    baseline_mapper,
    sea_mapper,
)
from repro.optim.pareto import explore_pareto, hypervolume_2d, pareto_front

__all__ = [
    "AnnealingConfig",
    "BaselineMapper",
    "DesignOptimizer",
    "InnerLoopStats",
    "Move",
    "MoveSampler",
    "SEAMapper",
    "Swap",
    "MakespanObjective",
    "Objective",
    "OptimizationOutcome",
    "OptimizedMappingSearch",
    "PowerObjective",
    "RegisterTimeProductObjective",
    "RegisterUsageObjective",
    "SEUObjective",
    "ScalingAssessment",
    "SearchResult",
    "SimulatedAnnealingMapper",
    "baseline_mapper",
    "deadline_penalized",
    "explore_pareto",
    "hypervolume_2d",
    "pareto_front",
    "initial_sea_mapping",
    "neighbor_mappings",
    "next_scaling",
    "num_platform_scaling_combinations",
    "num_scaling_combinations",
    "platform_scaling_combinations",
    "random_neighbor",
    "scaling_combinations",
    "sea_mapper",
]
