"""Simulated-annealing task mapper — the soft error-unaware baseline.

The paper's Exp:1-3 obtain their mappings "through simulated
annealing [13]" (Orsila et al.) with three different objectives:
register usage, parallelism (makespan) and their product.  This module
is that baseline: a classic SA over the move/swap neighbourhood with
geometric cooling, seeded and iteration-budgeted for reproducibility.

The objective is any :data:`~repro.optim.objectives.Objective`;
deadline handling uses :func:`~repro.optim.objectives.
deadline_penalized` so the walk is drawn back into the feasible region
rather than bouncing off a hard wall.

The inner loop is **allocation-free**: neighbours are
:class:`~repro.optim.moves.Move` / :class:`~repro.optim.moves.Swap`
descriptors drawn by a :class:`~repro.optim.moves.MoveSampler` from
the same RNG stream as the historical Mapping-based walk, previewed
for screening through the O(degree) index paths of
:class:`~repro.mapping.incremental.IncrementalMappingState`, keyed
into the evaluator cache via an incrementally maintained
:class:`~repro.mapping.metrics.SignatureTracker`, and a
:class:`~repro.mapping.mapping.Mapping` is only materialized on a
cache miss (where the full list-scheduled evaluation needs one).
Same seed ⇒ bit-identical accepted points, RNG consumption,
evaluation counts and cache hit/miss traffic as the Mapping-based
loop, which survives verbatim as :meth:`SimulatedAnnealingMapper.
run_reference` for the parity suite.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.arch.mpsoc import MPSoC
from repro.arch.power import PowerModel
from repro.exec.backends import (
    BACKEND_NAMES,
    BackendSpec,
    SerialBackend,
    resolve_backend,
)
from repro.faults.ser import SERModel
from repro.mapping.incremental import (
    IncrementalMappingState,
    resolve_screening,
    screen_lower_bound,
)
from repro.mapping.mapping import Mapping
from repro.mapping.metrics import DesignPoint, MappingEvaluator, SignatureTracker
from repro.optim.moves import InnerLoopStats, Move, MoveSampler, random_neighbor
from repro.optim.objectives import Objective, deadline_penalized
from repro.taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class AnnealingConfig:
    """Simulated-annealing hyper-parameters.

    Attributes
    ----------
    max_iterations:
        Total annealing steps.
    initial_temperature:
        Starting temperature, in units of *relative* objective change
        (0.1 accepts ~10% degradations readily at the start).
    cooling:
        Geometric cooling factor per step (0 < cooling < 1).
    restarts:
        Independent annealing runs; the best result wins.
    deadline_penalty_weight:
        Weight of the deadline-violation penalty.
    restart_backend:
        Execution backend the restarts are dispatched through
        (``None``/``"serial"``, ``"thread"``, ``"process"`` or
        ``"auto"``).  Restarts are independent seeded runs (restart
        *r* draws from ``seed + r``), and the serial best-of ranking
        is replayed over the restart-ordered results, so every backend
        selects the bit-identical design point; only wall-clock
        changes.  Kept as a plain string so the config itself stays
        picklable (restart jobs ship their config to workers).
    """

    max_iterations: int = 3000
    initial_temperature: float = 0.1
    cooling: float = 0.999
    restarts: int = 1
    deadline_penalty_weight: float = 10.0
    restart_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if self.restarts <= 0:
            raise ValueError("restarts must be positive")
        if self.restart_backend is not None and self.restart_backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown restart_backend {self.restart_backend!r}; "
                f"choose from {BACKEND_NAMES}"
            )


@dataclass(frozen=True)
class _RestartJob:
    """One worker-side annealing restart, self-contained and picklable.

    Rebuilds a private evaluator and mapper in the worker; the restart
    result is a pure function of ``(graph, platform, objective,
    config, seed + restart)``, so a worker restart returns exactly
    what the same restart of a serial :meth:`run` loop would.
    """

    graph: TaskGraph
    platform: MPSoC
    deadline_s: Optional[float]
    ser_model: SERModel
    power_model: PowerModel
    comm_model: str
    objective: Objective
    config: AnnealingConfig
    seed: Optional[int]
    deadline_penalty: bool
    require_all_cores: bool
    screening: bool
    screen_threshold: float
    batch_size: int
    initial: Mapping
    scaling: Tuple[int, ...]
    restart: int
    reference: bool = False

    def run(self) -> Tuple[DesignPoint, int, int, int, int, InnerLoopStats]:
        """Run the restart.

        Returns ``(point, screened moves, evaluations, cache hits,
        cache misses, inner-loop stats)`` — the full evaluator and
        inner-loop traffic, so the parent can fold worker stats back
        into its shared evaluator and per-restart aggregates.
        """
        evaluator = MappingEvaluator(
            self.graph,
            self.platform,
            ser_model=self.ser_model,
            power_model=self.power_model,
            deadline_s=self.deadline_s,
            comm_model=self.comm_model,
        )
        mapper = SimulatedAnnealingMapper(
            evaluator,
            self.objective,
            config=self.config,
            seed=self.seed,
            deadline_penalty=self.deadline_penalty,
            require_all_cores=self.require_all_cores,
            screening=self.screening,
            screen_threshold=self.screen_threshold,
            batch_size=self.batch_size,
        )
        loop = mapper._run_once_reference if self.reference else mapper._run_once
        point = loop(self.initial, self.scaling, self.restart)
        return (
            point,
            mapper.screened_moves,
            evaluator.evaluations,
            evaluator.cache_hits,
            evaluator.cache_misses,
            mapper._last_inner_stats,
        )


def _run_restart_job(
    job: _RestartJob,
) -> Tuple[DesignPoint, int, int, int, int, InnerLoopStats]:
    """Module-level trampoline so process pools can pickle the call."""
    return job.run()


@dataclass(frozen=True)
class RestartPlan:
    """A mapping search decomposed into restart-level leaf tasks.

    Produced by :meth:`SimulatedAnnealingMapper.restart_plan` (and the
    ``restart_plan`` hooks of the design-optimizer mappers) so the DAG
    executor can dispatch *individual restarts* of many scalings and
    cells through one shared queue instead of treating each scaling's
    whole search as an opaque unit.

    ``jobs`` are ordinary :class:`_RestartJob` items in restart order
    — run them through any ordered ``map`` — and :meth:`reduce` folds
    their ordered results back into the single
    :class:`~repro.mapping.metrics.DesignPoint` the corresponding
    serial ``run()`` call would return, replaying the serial best-of
    ranking (strict ``<`` keeps the earliest restart on ties) so the
    selection is bit-identical.
    """

    jobs: Tuple[_RestartJob, ...]
    mapper: "SimulatedAnnealingMapper"

    def reduce(
        self,
        results: Sequence[Tuple[DesignPoint, int, int, int, int, InnerLoopStats]],
    ) -> Tuple[DesignPoint, int]:
        """Fold ordered restart results into ``(best point, evaluations)``.

        ``evaluations`` totals the private evaluators' ``evaluate``
        calls — hits and misses alike — which is exactly what the same
        restarts cost a serial run on a shared evaluator, so evaluator
        totals keep matching serial runs (the hit/miss *split* may
        differ; workers start cold).
        """
        if len(results) != len(self.jobs):
            raise ValueError(
                f"restart plan expects {len(self.jobs)} results, got {len(results)}"
            )
        best = self.mapper.select_best([result[0] for result in results])
        evaluations = sum(result[2] for result in results)
        return best, evaluations


class SimulatedAnnealingMapper:
    """SA mapping optimizer for a fixed objective.

    Parameters
    ----------
    evaluator:
        Design-point evaluator.
    objective:
        Score to minimize (see :mod:`repro.optim.objectives`).
    config:
        Annealing hyper-parameters.
    seed:
        Seed for move generation and acceptance draws.
    screening:
        Opt-in incremental move screening: neighbours whose certified
        objective lower bound (register bits exactly; makespan / SEUs
        / their product bounded via
        :class:`~repro.mapping.incremental.IncrementalMappingState`)
        already proves a near-zero acceptance probability are skipped
        without a full list-scheduled evaluation.  Accepted designs
        are always authoritatively re-evaluated, but the pruning does
        change which neighbours a run visits (and its RNG stream), so
        results differ from an unscreened run with the same seed.
        Off by default — the paper artifacts use unscreened search.
        ``"auto"`` screens only on graphs with at least
        :data:`~repro.mapping.incremental.SCREENING_MIN_TASKS` tasks,
        where the preview cost pays for itself (sub-100-task compiled
        evaluations are so cheap that screening loses wall-clock).
    screen_threshold:
        Acceptance-probability cutoff below which a bounded-worse
        neighbour is pruned.
    batch_size:
        Opt-in batched candidate screening: when positive, neighbours
        are drawn ``batch_size`` at a time from the then-current
        mapping and evaluated in one vectorized
        :meth:`~repro.mapping.metrics.MappingEvaluator.evaluate_batch`
        call; the Metropolis acceptance then replays over the batch in
        draw order.  ``batch_size=1`` is bit-identical to the serial
        walk (same RNG stream, same evaluations); larger batches draw
        every candidate of a chunk from the chunk-start mapping, which
        changes the visit sequence (like ``screening``, with which it
        is mutually exclusive) but stays fully deterministic under a
        seed.  0 (default) keeps the serial loop.
    backend:
        Execution backend for dispatching the restarts; overrides
        ``config.restart_backend`` when given.  Any choice returns the
        bit-identical best design (see
        :attr:`AnnealingConfig.restart_backend`).
    max_workers:
        Pool size cap when the restart backend is pooled.
    """

    def __init__(
        self,
        evaluator: MappingEvaluator,
        objective: Objective,
        config: Optional[AnnealingConfig] = None,
        seed: Optional[int] = None,
        deadline_penalty: bool = True,
        require_all_cores: bool = False,
        screening: object = False,
        screen_threshold: float = 1e-3,
        batch_size: int = 0,
        backend: BackendSpec = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.evaluator = evaluator
        self.raw_objective = objective
        self.config = config or AnnealingConfig()
        self.seed = seed
        self.deadline_penalty = deadline_penalty
        self.require_all_cores = require_all_cores
        self.screening = resolve_screening(screening, evaluator.graph.num_tasks)
        if not 0.0 <= screen_threshold < 1.0:
            raise ValueError("screen_threshold must be in [0, 1)")
        self.screen_threshold = screen_threshold
        if batch_size < 0:
            raise ValueError("batch_size must be non-negative")
        if batch_size and self.screening:
            raise ValueError(
                "batched candidate evaluation and incremental screening "
                "are mutually exclusive"
            )
        self.batch_size = batch_size
        self.backend: BackendSpec = backend
        self.max_workers = max_workers
        self.screened_moves = 0  # neighbours pruned without evaluation
        self.screened_moves_per_restart: List[int] = []  # per run(), in restart order
        self.restart_evaluations: List[int] = []  # evaluate() calls per restart
        # Inner-loop instrumentation (descriptor walks; the reference
        # and batched loops report zeros): aggregate + per restart.
        self.inner_stats = InnerLoopStats()
        self.inner_stats_per_restart: List[InnerLoopStats] = []
        self._last_inner_stats = InnerLoopStats()  # set by each _run_once*
        deadline = evaluator.deadline_s
        if deadline is not None and deadline_penalty:
            self.objective = deadline_penalized(
                objective, deadline, self.config.deadline_penalty_weight
            )
        else:
            self.objective = objective

    def run(
        self,
        initial: Mapping,
        scaling: Optional[Sequence[int]] = None,
    ) -> DesignPoint:
        """Anneal from ``initial``; return the best design point found.

        Feasible points dominate infeasible ones regardless of raw
        score; among feasible points the raw objective decides.

        Restarts are independent seeded runs (restart *r* draws from
        ``seed + r``), so they can be dispatched through an execution
        backend; the serial best-of ranking is replayed over the
        restart-ordered results, making the selection bit-identical to
        a serial loop whatever backend runs the restarts.  Stats reset
        on every call: ``screened_moves`` totals this run's pruned
        neighbours, ``screened_moves_per_restart`` /
        ``restart_evaluations`` / ``inner_stats_per_restart`` break
        the work down per restart and ``inner_stats`` aggregates the
        descriptor inner-loop counters.
        """
        return self._run(initial, scaling, reference=False)

    def run_reference(
        self,
        initial: Mapping,
        scaling: Optional[Sequence[int]] = None,
    ) -> DesignPoint:
        """:meth:`run` on the historical Mapping-based inner loop.

        Bit-identical results by the descriptor determinism contract —
        same accepted points, RNG stream, evaluation counts and cache
        hit/miss traffic — kept as the behavioural reference for the
        parity suite and the ``sa_inner_loop`` benchmark pair.  Inner-
        loop stats stay zero (the instrumentation belongs to the
        descriptor walk); ``screened_moves`` counters work as always.
        """
        return self._run(initial, scaling, reference=True)

    def _run(
        self,
        initial: Mapping,
        scaling: Optional[Sequence[int]],
        reference: bool,
    ) -> DesignPoint:
        scaling_tuple = (
            tuple(scaling) if scaling is not None else self.evaluator.platform.scaling_vector()
        )
        restarts = self.config.restarts
        self.screened_moves = 0
        self.screened_moves_per_restart = []
        self.restart_evaluations = []
        self.inner_stats = InnerLoopStats()
        self.inner_stats_per_restart = []
        loop = self._run_once_reference if reference else self._run_once
        spec = self.backend if self.backend is not None else self.config.restart_backend
        resolved = resolve_backend(
            spec,
            task_count=restarts,
            probe_factory=lambda: self._restart_job(
                initial, scaling_tuple, 0, reference
            ),
            max_workers=self.max_workers,
        )
        if restarts == 1 or isinstance(resolved, SerialBackend):
            candidates = []
            for restart in range(restarts):
                screened_before = self.screened_moves
                evaluations_before = self.evaluator.evaluations
                candidates.append(loop(initial, scaling_tuple, restart))
                self.screened_moves_per_restart.append(
                    self.screened_moves - screened_before
                )
                self.restart_evaluations.append(
                    self.evaluator.evaluations - evaluations_before
                )
                self.inner_stats_per_restart.append(self._last_inner_stats)
        else:
            jobs = [
                self._restart_job(initial, scaling_tuple, restart, reference)
                for restart in range(restarts)
            ]
            try:
                results = resolved.map(_run_restart_job, jobs)
            finally:
                if resolved is not spec:  # close pools we created here
                    resolved.close()
            candidates = [result[0] for result in results]
            self.screened_moves_per_restart = [result[1] for result in results]
            self.restart_evaluations = [result[2] for result in results]
            self.screened_moves = sum(self.screened_moves_per_restart)
            # Fold the workers' evaluator traffic back into the shared
            # evaluator so ``evaluations == cache_hits + cache_misses``
            # keeps holding and totals match a serial run.  The
            # hit/miss *split* can still differ from serial — serial
            # restarts share one cache while workers each start cold —
            # but the evaluation totals agree (evaluate() counts hits
            # and misses alike).
            self.evaluator.evaluations += sum(self.restart_evaluations)
            self.evaluator.cache_hits += sum(result[3] for result in results)
            self.evaluator.cache_misses += sum(result[4] for result in results)
            self.inner_stats_per_restart = [result[5] for result in results]
        for stats in self.inner_stats_per_restart:
            self.inner_stats.merge(stats)
        best = self.select_best(candidates)
        assert best is not None
        return best

    def select_best(
        self, candidates: Sequence[DesignPoint]
    ) -> Optional[DesignPoint]:
        """Replay of the serial best-of ranking over ordered candidates.

        Candidates must arrive in restart order whatever the
        completion order; strict ``<`` keeps the earliest restart on
        rank ties — exactly the serial loop's choice.  Shared by
        :meth:`run` and :meth:`RestartPlan.reduce` so the two replays
        can never drift apart.
        """
        best: Optional[DesignPoint] = None
        best_key: Optional[Tuple[int, float]] = None
        for candidate in candidates:
            key = self._rank_key(candidate)
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        return best

    def restart_plan(
        self,
        initial: Mapping,
        scaling: Optional[Sequence[int]] = None,
    ) -> RestartPlan:
        """Decompose this search into restart-level leaf tasks.

        The returned plan's jobs are exactly the jobs the parallel
        branch of :meth:`run` would dispatch; running them through any
        ordered ``map`` and folding with
        :meth:`RestartPlan.reduce` returns the bit-identical design
        point :meth:`run` would.  Used by the DAG executor to flatten
        scalings x restarts into one shared queue — a single-restart
        search still becomes one leaf, so even restart-free scalings
        ship to the pool instead of serializing their cell.
        """
        scaling_tuple = (
            tuple(scaling)
            if scaling is not None
            else self.evaluator.platform.scaling_vector()
        )
        jobs = tuple(
            self._restart_job(initial, scaling_tuple, restart, False)
            for restart in range(self.config.restarts)
        )
        return RestartPlan(jobs=jobs, mapper=self)

    def _restart_job(
        self,
        initial: Mapping,
        scaling: Tuple[int, ...],
        restart: int,
        reference: bool = False,
    ) -> _RestartJob:
        evaluator = self.evaluator
        return _RestartJob(
            graph=evaluator.graph,
            platform=evaluator.platform,
            deadline_s=evaluator.deadline_s,
            ser_model=evaluator.ser_model,
            power_model=evaluator.power_model,
            comm_model=evaluator.comm_model,
            objective=self.raw_objective,
            config=self.config,
            seed=self.seed,
            deadline_penalty=self.deadline_penalty,
            require_all_cores=self.require_all_cores,
            screening=self.screening,
            screen_threshold=self.screen_threshold,
            batch_size=self.batch_size,
            initial=initial,
            scaling=scaling,
            restart=restart,
            reference=reference,
        )

    def _rank_key(self, point: DesignPoint) -> Tuple[int, float]:
        if not self.deadline_penalty:
            # Deadline-unaware mode (the paper's [13] baseline): rank
            # purely on the raw objective.
            return (0, self.raw_objective(point))
        feasible = point.meets_deadline
        feasibility_rank = 0 if feasible or feasible is None else 1
        return (feasibility_rank, self.raw_objective(point))

    def _run_once(
        self, initial: Mapping, scaling: Tuple[int, ...], restart: int
    ) -> DesignPoint:
        """One descriptor-based annealing walk (the default inner loop).

        Neighbours live as :class:`Move`/:class:`Swap` tokens drawn by
        a :class:`MoveSampler` from the same RNG stream as the
        Mapping-based loop; cache probes ride the incrementally
        maintained signature of a :class:`SignatureTracker`, and a
        ``Mapping`` is only materialized inside the evaluator on a
        cache miss.  Bit-identical to :meth:`_run_once_reference` by
        construction — the parity suite asserts it.
        """
        if self.batch_size:
            return self._run_once_batched(initial, scaling, restart)
        rng = random.Random(None if self.seed is None else self.seed + restart)
        evaluator = self.evaluator
        stats = InnerLoopStats()
        self._last_inner_stats = stats

        current = evaluator.evaluate(initial, scaling)
        current_score = self.objective(current)
        best = current
        best_key = self._rank_key(current)
        compiled = evaluator._sync_compiled()
        num_cores = initial.num_cores
        num_tasks = compiled.num_tasks
        min_used = min(num_cores, num_tasks)
        signature, signature_hash = current.mapping.signature_info(compiled)
        tracker = SignatureTracker(compiled, signature, num_cores, signature_hash)
        sampler = MoveSampler(compiled, signature, num_cores)
        state: Optional[IncrementalMappingState] = None
        if self.screening:
            state = IncrementalMappingState(evaluator, current.mapping, scaling)

        temperature = self.config.initial_temperature
        cooling = self.config.cooling
        for _ in range(self.config.max_iterations):
            descriptor = sampler.draw(rng)
            if descriptor is None:
                temperature *= cooling
                continue
            stats.moves_drawn += 1
            if (
                self.require_all_cores
                and sampler.used_cores_after(descriptor) < min_used
            ):
                temperature *= cooling
                continue
            if state is not None:
                stats.previews += 1
                if isinstance(descriptor, Move):
                    estimate = state.estimate_move_index(
                        descriptor.task, descriptor.core
                    )
                else:
                    estimate = state.estimate_swap_index(
                        descriptor.task_a, descriptor.task_b
                    )
                bound = screen_lower_bound(self.raw_objective, estimate)
                if bound is not None and bound > current_score:
                    # The bound is also a lower bound on the penalized
                    # score (the deadline penalty only inflates), so
                    # the Metropolis odds at the bound overestimate
                    # the real acceptance odds.
                    scale = max(abs(current_score), 1e-30)
                    delta = (bound - current_score) / scale
                    odds = math.exp(-delta / max(temperature, 1e-12))
                    if odds < self.screen_threshold:
                        self.screened_moves += 1
                        stats.screened_moves += 1
                        temperature *= cooling
                        continue
            if isinstance(descriptor, Move):
                neighbor_signature, neighbor_hash = tracker.preview_move(
                    descriptor.task, descriptor.core
                )
            else:
                neighbor_signature, neighbor_hash = tracker.preview_swap(
                    descriptor.task_a, descriptor.task_b
                )
            misses_before = evaluator.cache_misses
            candidate = evaluator.evaluate_signature(
                neighbor_signature,
                scaling,
                signature_hash=neighbor_hash,
                num_cores=num_cores,
                template=initial,
            )
            if evaluator.cache_misses != misses_before:
                stats.materialized_mappings += 1
            candidate_score = self.objective(candidate)

            if candidate_score <= current_score:
                accept = True
            else:
                scale = max(abs(current_score), 1e-30)
                delta = (candidate_score - current_score) / scale
                accept = rng.random() < math.exp(-delta / max(temperature, 1e-12))
            if accept:
                current, current_score = candidate, candidate_score
                tracker.commit(neighbor_signature, neighbor_hash)
                if state is not None:
                    if isinstance(descriptor, Move):
                        state.apply_move_index(descriptor.task, descriptor.core)
                    else:
                        state.apply_swap_index(
                            descriptor.task_a, descriptor.task_b
                        )
                sampler.apply(descriptor)
                key = self._rank_key(candidate)
                if key < best_key:
                    best, best_key = candidate, key
            temperature *= cooling
        stats.signature_rebuilds += tracker.rebuilds
        return best

    def _run_once_reference(
        self, initial: Mapping, scaling: Tuple[int, ...], restart: int
    ) -> DesignPoint:
        """The historical Mapping-per-neighbour loop (parity reference).

        Kept verbatim from before the descriptor rewrite: every
        neighbour is a materialized ``Mapping`` (O(N) copy), screened
        via the O(N) ``estimate_mapping`` diff and keyed into the
        cache through the full signature walk.  :meth:`_run_once`
        reproduces its results bit for bit.
        """
        if self.batch_size:
            return self._run_once_batched(initial, scaling, restart)
        rng = random.Random(None if self.seed is None else self.seed + restart)
        evaluator = self.evaluator
        graph = evaluator.graph
        self._last_inner_stats = InnerLoopStats()

        current = evaluator.evaluate(initial, scaling)
        current_score = self.objective(current)
        best = current
        best_key = self._rank_key(current)
        state: Optional[IncrementalMappingState] = None
        if self.screening:
            state = IncrementalMappingState(evaluator, current.mapping, scaling)

        temperature = self.config.initial_temperature
        for _ in range(self.config.max_iterations):
            neighbor = random_neighbor(current.mapping, graph, rng)
            if neighbor == current.mapping:
                temperature *= self.config.cooling
                continue
            if self.require_all_cores and len(neighbor.used_cores()) < min(
                neighbor.num_cores, graph.num_tasks
            ):
                temperature *= self.config.cooling
                continue
            if state is not None:
                bound = screen_lower_bound(
                    self.raw_objective, state.estimate_mapping(neighbor)
                )
                if bound is not None and bound > current_score:
                    # See _run_once: the bound under-estimates the
                    # penalized score, so these odds overestimate.
                    scale = max(abs(current_score), 1e-30)
                    delta = (bound - current_score) / scale
                    odds = math.exp(-delta / max(temperature, 1e-12))
                    if odds < self.screen_threshold:
                        self.screened_moves += 1
                        temperature *= self.config.cooling
                        continue
            candidate = evaluator.evaluate(neighbor, scaling)
            candidate_score = self.objective(candidate)

            if candidate_score <= current_score:
                accept = True
            else:
                scale = max(abs(current_score), 1e-30)
                delta = (candidate_score - current_score) / scale
                accept = rng.random() < math.exp(-delta / max(temperature, 1e-12))
            if accept:
                current, current_score = candidate, candidate_score
                if state is not None:
                    state.apply_mapping(neighbor)
                key = self._rank_key(candidate)
                if key < best_key:
                    best, best_key = candidate, key
            temperature *= self.config.cooling
        return best

    def _run_once_batched(
        self, initial: Mapping, scaling: Tuple[int, ...], restart: int
    ) -> DesignPoint:
        """The batched candidate-screening variant of :meth:`_run_once`.

        Neighbours are drawn ``batch_size`` at a time from the
        chunk-start mapping and evaluated in one vectorized
        ``evaluate_batch`` call; the Metropolis walk then replays over
        the chunk in draw order (acceptance updates ``current``
        mid-chunk, later candidates of the same chunk still derive
        from the chunk-start mapping).  With ``batch_size=1`` the RNG
        stream, evaluator traffic and returned point are bit-identical
        to the serial loop — the parity suite asserts it.
        """
        rng = random.Random(None if self.seed is None else self.seed + restart)
        evaluator = self.evaluator
        graph = evaluator.graph
        self._last_inner_stats = InnerLoopStats()

        current = evaluator.evaluate(initial, scaling)
        current_score = self.objective(current)
        best = current
        best_key = self._rank_key(current)
        temperature = self.config.initial_temperature
        cooling = self.config.cooling
        remaining = self.config.max_iterations
        while remaining > 0:
            draw = min(self.batch_size, remaining)
            remaining -= draw
            chunk: List[Optional[Mapping]] = []
            for _ in range(draw):
                neighbor = random_neighbor(current.mapping, graph, rng)
                if neighbor == current.mapping:
                    chunk.append(None)
                elif self.require_all_cores and len(neighbor.used_cores()) < min(
                    neighbor.num_cores, graph.num_tasks
                ):
                    chunk.append(None)
                else:
                    chunk.append(neighbor)
            evaluated = iter(
                evaluator.evaluate_batch(
                    [mapping for mapping in chunk if mapping is not None],
                    scaling,
                )
            )
            for neighbor in chunk:
                if neighbor is None:
                    temperature *= cooling
                    continue
                candidate = next(evaluated)
                candidate_score = self.objective(candidate)
                if candidate_score <= current_score:
                    accept = True
                else:
                    scale = max(abs(current_score), 1e-30)
                    delta = (candidate_score - current_score) / scale
                    accept = rng.random() < math.exp(-delta / max(temperature, 1e-12))
                if accept:
                    current, current_score = candidate, candidate_score
                    key = self._rank_key(candidate)
                    if key < best_key:
                        best, best_key = candidate, key
                temperature *= cooling
        return best
