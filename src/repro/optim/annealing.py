"""Simulated-annealing task mapper — the soft error-unaware baseline.

The paper's Exp:1-3 obtain their mappings "through simulated
annealing [13]" (Orsila et al.) with three different objectives:
register usage, parallelism (makespan) and their product.  This module
is that baseline: a classic SA over the move/swap neighbourhood with
geometric cooling, seeded and iteration-budgeted for reproducibility.

The objective is any :data:`~repro.optim.objectives.Objective`;
deadline handling uses :func:`~repro.optim.objectives.
deadline_penalized` so the walk is drawn back into the feasible region
rather than bouncing off a hard wall.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.mapping.incremental import IncrementalMappingState, screen_lower_bound
from repro.mapping.mapping import Mapping
from repro.mapping.metrics import DesignPoint, MappingEvaluator
from repro.optim.moves import random_neighbor
from repro.optim.objectives import Objective, deadline_penalized


@dataclass(frozen=True)
class AnnealingConfig:
    """Simulated-annealing hyper-parameters.

    Attributes
    ----------
    max_iterations:
        Total annealing steps.
    initial_temperature:
        Starting temperature, in units of *relative* objective change
        (0.1 accepts ~10% degradations readily at the start).
    cooling:
        Geometric cooling factor per step (0 < cooling < 1).
    restarts:
        Independent annealing runs; the best result wins.
    deadline_penalty_weight:
        Weight of the deadline-violation penalty.
    """

    max_iterations: int = 3000
    initial_temperature: float = 0.1
    cooling: float = 0.999
    restarts: int = 1
    deadline_penalty_weight: float = 10.0

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if self.restarts <= 0:
            raise ValueError("restarts must be positive")


class SimulatedAnnealingMapper:
    """SA mapping optimizer for a fixed objective.

    Parameters
    ----------
    evaluator:
        Design-point evaluator.
    objective:
        Score to minimize (see :mod:`repro.optim.objectives`).
    config:
        Annealing hyper-parameters.
    seed:
        Seed for move generation and acceptance draws.
    screening:
        Opt-in incremental move screening: neighbours whose certified
        objective lower bound (register bits exactly; makespan / SEUs
        / their product bounded via
        :class:`~repro.mapping.incremental.IncrementalMappingState`)
        already proves a near-zero acceptance probability are skipped
        without a full list-scheduled evaluation.  Accepted designs
        are always authoritatively re-evaluated, but the pruning does
        change which neighbours a run visits (and its RNG stream), so
        results differ from an unscreened run with the same seed.
        Off by default — the paper artifacts use unscreened search.
    screen_threshold:
        Acceptance-probability cutoff below which a bounded-worse
        neighbour is pruned.
    """

    def __init__(
        self,
        evaluator: MappingEvaluator,
        objective: Objective,
        config: Optional[AnnealingConfig] = None,
        seed: Optional[int] = None,
        deadline_penalty: bool = True,
        require_all_cores: bool = False,
        screening: bool = False,
        screen_threshold: float = 1e-3,
    ) -> None:
        self.evaluator = evaluator
        self.raw_objective = objective
        self.config = config or AnnealingConfig()
        self.seed = seed
        self.deadline_penalty = deadline_penalty
        self.require_all_cores = require_all_cores
        self.screening = screening
        if not 0.0 <= screen_threshold < 1.0:
            raise ValueError("screen_threshold must be in [0, 1)")
        self.screen_threshold = screen_threshold
        self.screened_moves = 0  # neighbours pruned without evaluation
        deadline = evaluator.deadline_s
        if deadline is not None and deadline_penalty:
            self.objective = deadline_penalized(
                objective, deadline, self.config.deadline_penalty_weight
            )
        else:
            self.objective = objective

    def run(
        self,
        initial: Mapping,
        scaling: Optional[Sequence[int]] = None,
    ) -> DesignPoint:
        """Anneal from ``initial``; return the best design point found.

        Feasible points dominate infeasible ones regardless of raw
        score; among feasible points the raw objective decides.
        """
        best: Optional[DesignPoint] = None
        best_key: Optional[Tuple[int, float]] = None
        scaling_tuple = (
            tuple(scaling) if scaling is not None else self.evaluator.platform.scaling_vector()
        )
        for restart in range(self.config.restarts):
            candidate = self._run_once(initial, scaling_tuple, restart)
            key = self._rank_key(candidate)
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        assert best is not None
        return best

    def _rank_key(self, point: DesignPoint) -> Tuple[int, float]:
        if not self.deadline_penalty:
            # Deadline-unaware mode (the paper's [13] baseline): rank
            # purely on the raw objective.
            return (0, self.raw_objective(point))
        feasible = point.meets_deadline
        feasibility_rank = 0 if feasible or feasible is None else 1
        return (feasibility_rank, self.raw_objective(point))

    def _run_once(
        self, initial: Mapping, scaling: Tuple[int, ...], restart: int
    ) -> DesignPoint:
        rng = random.Random(None if self.seed is None else self.seed + restart)
        evaluator = self.evaluator
        graph = evaluator.graph

        current = evaluator.evaluate(initial, scaling)
        current_score = self.objective(current)
        best = current
        best_key = self._rank_key(current)
        state: Optional[IncrementalMappingState] = None
        if self.screening:
            state = IncrementalMappingState(evaluator, current.mapping, scaling)

        temperature = self.config.initial_temperature
        for _ in range(self.config.max_iterations):
            neighbor = random_neighbor(current.mapping, graph, rng)
            if neighbor == current.mapping:
                temperature *= self.config.cooling
                continue
            if self.require_all_cores and len(neighbor.used_cores()) < min(
                neighbor.num_cores, graph.num_tasks
            ):
                temperature *= self.config.cooling
                continue
            if state is not None:
                bound = screen_lower_bound(
                    self.raw_objective, state.estimate_mapping(neighbor)
                )
                if bound is not None and bound > current_score:
                    # The bound is also a lower bound on the penalized
                    # score (the deadline penalty only inflates), so
                    # the Metropolis odds at the bound overestimate
                    # the real acceptance odds.
                    scale = max(abs(current_score), 1e-30)
                    delta = (bound - current_score) / scale
                    odds = math.exp(-delta / max(temperature, 1e-12))
                    if odds < self.screen_threshold:
                        self.screened_moves += 1
                        temperature *= self.config.cooling
                        continue
            candidate = evaluator.evaluate(neighbor, scaling)
            candidate_score = self.objective(candidate)

            if candidate_score <= current_score:
                accept = True
            else:
                scale = max(abs(current_score), 1e-30)
                delta = (candidate_score - current_score) / scale
                accept = rng.random() < math.exp(-delta / max(temperature, 1e-12))
            if accept:
                current, current_score = candidate, candidate_score
                if state is not None:
                    state.apply_mapping(neighbor)
                key = self._rank_key(candidate)
                if key < best_key:
                    best, best_key = candidate, key
            temperature *= self.config.cooling
        return best
