"""The joint design-optimization loop (Fig. 4 of the paper).

For each voltage-scaling combination produced by ``nextScaling``
(step 1 — power minimization; deepest scaling first, i.e. lowest
power), a task-mapping optimizer is run (step 2) and the resulting
design is assessed against the real-time constraint (step 3).  The
optimizer returns the design minimizing power consumption among
feasible designs, breaking near-ties in power (within
``power_tolerance``) by the expected SEU count — "minimized power
consumption and minimized SEUs experienced, meeting the real-time
constraint".

The mapping stage is pluggable so the same loop drives both the
proposed optimization (:func:`sea_mapper` — Exp:4) and the soft
error-unaware baselines (:func:`baseline_mapper` with a register /
makespan / product objective — Exp:1-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, is_dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.arch.mpsoc import MPSoC
from repro.arch.power import PowerModel
from repro.exec.backends import (
    BackendSpec,
    ExecutionBackend,
    SerialBackend,
    resolve_backend,
)
from repro.exec.dag import SharedExecutorBackend
from repro.faults.ser import SERModel
from repro.mapping.mapping import Mapping
from repro.mapping.metrics import DesignPoint, MappingEvaluator
from repro.optim.annealing import (
    AnnealingConfig,
    RestartPlan,
    SimulatedAnnealingMapper,
)
from repro.optim.initial_mapping import initial_sea_mapping
from repro.optim.objectives import Objective, SEUObjective
from repro.optim.optimized_mapping import OptimizedMappingSearch
from repro.optim.scaling_algorithm import platform_scaling_combinations
from repro.store.checkpoint import CellCheckpoint, current_checkpoint
from repro.taskgraph.graph import TaskGraph

#: A mapping strategy: (evaluator, scaling, seed) -> best design point.
Mapper = Callable[[MappingEvaluator, Tuple[int, ...], Optional[int]], DesignPoint]


@dataclass(frozen=True)
class SEAMapper:
    """The proposed two-stage soft error-aware mapper (Exp:4).

    A picklable callable (the process execution backend ships mappers
    to workers); build via :func:`sea_mapper` for the documented
    defaults.

    ``restarts`` overrides the size-derived restart count of the
    stage-2 annealer; ``restart_backend`` dispatches those restarts
    through an execution backend (any choice selects the bit-identical
    design — see :class:`~repro.optim.annealing.AnnealingConfig`).
    """

    search_iterations: int = 1500
    walk_probability: float = 0.15
    time_limit_s: Optional[float] = None
    engine: str = "anneal"
    screen_moves: object = False
    restarts: Optional[int] = None
    restart_backend: Optional[str] = None
    batch_size: int = 0

    def __post_init__(self) -> None:
        if self.engine not in ("anneal", "walk"):
            raise ValueError(f"unknown stage-2 engine {self.engine!r}")
        if self.restarts is not None and self.restarts <= 0:
            raise ValueError("restarts must be positive")
        if self.batch_size < 0:
            raise ValueError("batch_size must be non-negative")

    def _stage2_annealer(
        self, evaluator: MappingEvaluator, scaling: Tuple[int, ...], seed: Optional[int]
    ) -> Tuple[SimulatedAnnealingMapper, Mapping]:
        """The stage-2 annealer and its stage-1 warm start.

        Shared by :meth:`__call__` and :meth:`restart_plan` so the
        direct and DAG-decomposed paths can never configure the search
        differently (which would break bit-identical selection).
        """
        initial = initial_sea_mapping(
            evaluator.graph,
            evaluator.platform,
            deadline_s=evaluator.deadline_s,
            scaling=scaling,
            ser_model=evaluator.ser_model,
        )
        # The budget scales with the application size (the paper's
        # wall-clock budgets grow from 40 to 130 minutes between 11
        # and 100 tasks).  Two restarts when the per-run budget is
        # moderate — the Gamma landscape has a few near-optimal
        # basins and best-of-two is markedly more reliable — and a
        # single longer run once the budget is already large.
        iterations = max(self.search_iterations, 100 * evaluator.graph.num_tasks)
        restarts = (
            self.restarts
            if self.restarts is not None
            else (2 if 1000 <= iterations <= 4000 else 1)
        )
        config = AnnealingConfig(
            max_iterations=iterations,
            restarts=restarts,
            restart_backend=self.restart_backend,
        )
        mapper = SimulatedAnnealingMapper(
            evaluator,
            SEUObjective(),
            config=config,
            seed=seed,
            deadline_penalty=True,
            require_all_cores=True,
            screening=self.screen_moves,
            batch_size=self.batch_size,
        )
        return mapper, initial

    def restart_plan(
        self, evaluator: MappingEvaluator, scaling: Tuple[int, ...], seed: Optional[int]
    ) -> Optional[RestartPlan]:
        """Restart-level decomposition for the DAG executor.

        ``None`` when stage 2 is not restart-shaped (the ``"walk"``
        engine) — the caller then ships the whole search as one
        scaling leaf instead.
        """
        if self.engine != "anneal":
            return None
        mapper, initial = self._stage2_annealer(evaluator, scaling, seed)
        return mapper.restart_plan(initial, scaling)

    def __call__(
        self, evaluator: MappingEvaluator, scaling: Tuple[int, ...], seed: Optional[int]
    ) -> DesignPoint:
        if self.engine == "anneal":
            mapper, initial = self._stage2_annealer(evaluator, scaling, seed)
            return mapper.run(initial, scaling)
        initial = initial_sea_mapping(
            evaluator.graph,
            evaluator.platform,
            deadline_s=evaluator.deadline_s,
            scaling=scaling,
            ser_model=evaluator.ser_model,
        )
        search = OptimizedMappingSearch(
            evaluator,
            max_iterations=self.search_iterations,
            time_limit_s=self.time_limit_s,
            walk_probability=self.walk_probability,
            seed=seed,
            screen_moves=self.screen_moves,
            batch_size=self.batch_size,
        )
        return search.run(initial, scaling).best


def sea_mapper(
    search_iterations: int = 1500,
    walk_probability: float = 0.15,
    time_limit_s: Optional[float] = None,
    engine: str = "anneal",
    screen_moves: object = False,
    restarts: Optional[int] = None,
    restart_backend: Optional[str] = None,
    batch_size: int = 0,
) -> Mapper:
    """The proposed two-stage soft error-aware mapper (Exp:4).

    Stage 1 builds the constructive ``InitialSEAMapping``; stage 2
    refines it under the evaluator's deadline, minimizing the expected
    SEU count.

    Parameters
    ----------
    engine:
        Stage-2 search engine.  ``"anneal"`` (default) anneals on the
        SEU objective from the stage-1 warm start — empirically the
        stronger searcher on this landscape.  ``"walk"`` is the
        paper-faithful ``OptimizedMapping`` improving random walk
        (Fig. 7); both respect the deadline and keep all cores
        populated.
    screen_moves:
        Enable incremental move screening in the stage-2 engine (see
        :mod:`repro.mapping.incremental`).  Faster, but a screened run
        visits different neighbours than an unscreened one; the paper
        artifacts keep it off.  ``"auto"`` screens only on graphs with
        >= 100 tasks, where the preview pays for itself.
    restarts / restart_backend:
        Stage-2 annealer restart count (``None`` keeps the
        size-derived default) and the execution backend its restarts
        run on; any backend selects the bit-identical design.
    batch_size:
        Batched candidate screening in the stage-2 engine: neighbours
        are drawn in chunks of this size and evaluated through the
        vectorized ``evaluate_batch``.  ``1`` is bit-identical to the
        serial walk; larger chunks change the visit sequence (like
        ``screen_moves``, with which it is mutually exclusive) but
        stay deterministic under a seed.  0 keeps the serial loops.
    """
    return SEAMapper(
        search_iterations=search_iterations,
        walk_probability=walk_probability,
        time_limit_s=time_limit_s,
        engine=engine,
        screen_moves=screen_moves,
        restarts=restarts,
        restart_backend=restart_backend,
        batch_size=batch_size,
    )


@dataclass(frozen=True)
class BaselineMapper:
    """A soft error-unaware SA mapper for one objective (Exp:1-3).

    Picklable callable counterpart of :func:`baseline_mapper`.
    """

    objective: Objective
    config: Optional[AnnealingConfig] = None
    deadline_penalty: bool = False
    require_all_cores: bool = True
    screen_moves: object = False
    restarts: Optional[int] = None
    restart_backend: Optional[str] = None
    batch_size: int = 0

    def __post_init__(self) -> None:
        if self.restarts is not None and self.restarts <= 0:
            raise ValueError("restarts must be positive")
        if self.batch_size < 0:
            raise ValueError("batch_size must be non-negative")

    def _annealer(
        self, evaluator: MappingEvaluator, seed: Optional[int]
    ) -> Tuple[SimulatedAnnealingMapper, Mapping]:
        """The baseline annealer and its round-robin start (see SEAMapper)."""
        initial = Mapping.round_robin(evaluator.graph, evaluator.platform.num_cores)
        # Match the proposed flow's size-scaled budget for fairness.
        base = self.config or AnnealingConfig()
        config = replace(
            base,
            max_iterations=max(base.max_iterations, 100 * evaluator.graph.num_tasks),
            restarts=self.restarts if self.restarts is not None else base.restarts,
            restart_backend=(
                self.restart_backend
                if self.restart_backend is not None
                else base.restart_backend
            ),
        )
        mapper = SimulatedAnnealingMapper(
            evaluator,
            self.objective,
            config=config,
            seed=seed,
            deadline_penalty=self.deadline_penalty,
            require_all_cores=self.require_all_cores,
            screening=self.screen_moves,
            batch_size=self.batch_size,
        )
        return mapper, initial

    def restart_plan(
        self, evaluator: MappingEvaluator, scaling: Tuple[int, ...], seed: Optional[int]
    ) -> Optional[RestartPlan]:
        """Restart-level decomposition for the DAG executor."""
        mapper, initial = self._annealer(evaluator, seed)
        return mapper.restart_plan(initial, scaling)

    def __call__(
        self, evaluator: MappingEvaluator, scaling: Tuple[int, ...], seed: Optional[int]
    ) -> DesignPoint:
        mapper, initial = self._annealer(evaluator, seed)
        return mapper.run(initial, scaling)


def baseline_mapper(
    objective: Objective,
    config: Optional[AnnealingConfig] = None,
    deadline_penalty: bool = False,
    require_all_cores: bool = True,
    screen_moves: object = False,
    restarts: Optional[int] = None,
    restart_backend: Optional[str] = None,
    batch_size: int = 0,
) -> Mapper:
    """A soft error-unaware SA mapper for ``objective`` (Exp:1-3).

    Defaults follow the paper's baseline [13]: the annealer optimizes
    its objective without deadline awareness (the scaling sweep
    handles timing) and keeps every core populated.  ``restarts`` /
    ``restart_backend`` override the annealing config's restart count
    and dispatch backend (results stay bit-identical across backends).
    """
    return BaselineMapper(
        objective=objective,
        config=config,
        deadline_penalty=deadline_penalty,
        require_all_cores=require_all_cores,
        screen_moves=screen_moves,
        restarts=restarts,
        restart_backend=restart_backend,
        batch_size=batch_size,
    )


def _expected_seus_tiebreak(point: DesignPoint) -> float:
    """Default step-3 tie-break: the expected SEU count (picklable)."""
    return point.expected_seus


@dataclass(frozen=True)
class _ScalingJob:
    """One worker-side scaling assessment, self-contained and picklable.

    Rebuilds a private :class:`MappingEvaluator` in the worker — the
    points it produces are a pure function of ``(graph, platform,
    mapper, scaling, seed)``, so a fresh evaluator returns exactly
    what the shared serial evaluator would.
    """

    graph: TaskGraph
    platform: MPSoC
    deadline_s: float
    ser_model: SERModel
    power_model: PowerModel
    comm_model: str
    mapper: Optional[Mapper]  # ``None``: re-time ``fixed_mapping`` instead
    fixed_mapping: Optional[Mapping]
    scaling: Tuple[int, ...]
    seed: Optional[int]

    def run(self) -> Tuple[DesignPoint, int]:
        """Assess the scaling; returns (point, evaluations spent)."""
        evaluator = MappingEvaluator(
            self.graph,
            self.platform,
            ser_model=self.ser_model,
            power_model=self.power_model,
            deadline_s=self.deadline_s,
            comm_model=self.comm_model,
        )
        if self.mapper is not None:
            point = self.mapper(evaluator, self.scaling, self.seed)
        else:
            assert self.fixed_mapping is not None
            point = evaluator.evaluate(self.fixed_mapping, self.scaling)
        return point, evaluator.evaluations


def _run_scaling_job(job: _ScalingJob) -> Tuple[DesignPoint, int]:
    """Module-level trampoline so process pools can pickle the call."""
    return job.run()


def _run_dag_leaf(job) -> tuple:
    """Trampoline for heterogeneous DAG leaves (restart or scaling jobs).

    Both job kinds are self-contained frozen dataclasses with a
    ``run()`` returning their result tuple; a single module-level
    entry point lets one executor batch mix them freely.
    """
    return job.run()


def _checkpoint_restore(
    checkpoint: Optional[CellCheckpoint], position: int, sweep: int = 0
) -> Optional[Tuple[object, int]]:
    """A checkpointed ``(value, evaluations spent)`` pair, or ``None``.

    Checkpoints are scratch state: any failure — no ambient
    checkpoint, unreadable file, a payload of the wrong shape —
    degrades to "re-run the position", never to an error.
    """
    if checkpoint is None:
        return None
    try:
        restored = checkpoint.restore(position, sweep)
    except Exception:
        return None
    if (
        isinstance(restored, tuple)
        and len(restored) == 2
        and isinstance(restored[1], int)
    ):
        return restored
    return None


def _checkpoint_record(
    checkpoint: Optional[CellCheckpoint],
    position: int,
    value: object,
    spent: int,
    sweep: int = 0,
) -> None:
    """Best-effort append of one completed position (see restore)."""
    if checkpoint is None:
        return
    try:
        checkpoint.record(position, (value, spent), sweep)
    except Exception:
        pass


def _serial_restart_mapper(mapper: Optional[Mapper]) -> Optional[Mapper]:
    """A copy of ``mapper`` with its restart dispatch forced serial.

    A scaling job shipped to a parallel backend must not open a second
    pool for its annealing restarts — the outer sweep already owns the
    machine's parallelism, and nested pools would only oversubscribe
    it.  By the restart determinism contract this changes wall-clock
    only, never the selected design.  Mappers without the knob
    (arbitrary callables) pass through unchanged.

    Forced unconditionally on mappers that have the field: a
    ``BaselineMapper`` may carry the backend inside its ``config``
    with the field itself ``None``, and the field override always
    wins in ``__call__``.
    """
    if is_dataclass(mapper) and hasattr(mapper, "restart_backend"):
        return replace(mapper, restart_backend="serial")
    return mapper


@dataclass(frozen=True)
class ScalingAssessment:
    """Step-3 record for one scaling combination."""

    scaling: Tuple[int, ...]
    point: DesignPoint
    feasible: bool


@dataclass
class OptimizationOutcome:
    """Result of the full Fig. 4 loop.

    Attributes
    ----------
    best:
        The selected design (min power, SEU tie-break), or ``None``
        when no scaling met the deadline.
    assessments:
        One record per scaling combination visited, in visit order.
    evaluations:
        Total design-point evaluations spent.
    """

    best: Optional[DesignPoint]
    assessments: List[ScalingAssessment] = field(default_factory=list)
    evaluations: int = 0

    @property
    def feasible_points(self) -> List[DesignPoint]:
        """Design points that met the real-time constraint."""
        return [record.point for record in self.assessments if record.feasible]

    def best_within_power(
        self, budget_mw: float, tolerance: float = 0.05
    ) -> Optional[DesignPoint]:
        """Min-SEU feasible design with power <= ``budget_mw * (1+tolerance)``.

        Used for power-parity comparisons against a baseline design
        (Fig. 10 reports the proposed design at a small power premium
        over Exp:3, not at its own power minimum).  Returns ``None``
        when no feasible design fits the budget.
        """
        candidates = [
            point
            for point in self.feasible_points
            if point.power_mw <= budget_mw * (1.0 + tolerance) + 1e-12
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda point: (point.expected_seus, point.power_mw))


class DesignOptimizer:
    """Joint power + reliability design optimizer (Fig. 4).

    Parameters
    ----------
    graph:
        Application task graph.
    platform:
        The MPSoC.
    deadline_s:
        Real-time constraint ``T_Mref``.
    ser_model / power_model:
        Reliability and power models (paper defaults when omitted).
    mapper:
        Mapping strategy per scaling; defaults to the proposed
        soft error-aware two-stage mapper.
    power_tolerance:
        Relative band above the minimum feasible power within which
        designs compete on the tie-break objective instead (step 3's
        joint criterion).
    tiebreak:
        Secondary objective deciding among near-minimum-power designs.
        Defaults to expected SEUs (the proposed flow); baselines pass
        their own objective so their selection stays soft
        error-unaware.
    stop_after_feasible:
        When set, stop exploring after this many *consecutive
        unhelpful* assessments — scalings that were feasible but whose
        power exceeds the selection band over the minimum feasible
        power seen so far (they can never be selected).  Infeasible
        scalings reset the counter (they mark a transition region of
        the sweep).  ``None`` explores every combination, like the
        paper's fixed search-time budget per scaling.
    seed:
        Base seed; each scaling gets an offset seed for determinism.
    remap_per_scaling:
        ``True`` (the proposed Fig. 4 flow) re-runs the mapping stage
        for every scaling combination.  ``False`` reproduces the
        baseline flow of Section V: the mapping is optimized once for
        its objective at nominal scaling, then the scaling sweep only
        re-times that fixed mapping.
    backend:
        Execution backend for the scaling sweep: ``None``/``"serial"``
        (default), ``"thread"``, ``"process"``, ``"auto"`` or an
        :class:`~repro.exec.backends.ExecutionBackend` instance.
        Scalings are independent (per-scaling seeds, private
        evaluators), and the serial early-exit policy is replayed
        over the ordered parallel results, so every backend selects
        the **identical** design; only wall-clock changes.  The
        ``"dag"`` spec resolves to the shared work-stealing executor
        of the active ``executor_scope`` (serial outside one) and
        additionally decomposes each scaling into restart-level
        leaves via the mapper's ``restart_plan`` hook.
    max_workers:
        Pool size cap for pooled backends resolved from a string spec
        (``None`` sizes pools from the machine).  Ignored when
        ``backend`` is already an :class:`ExecutionBackend` instance.
    """

    def __init__(
        self,
        graph: TaskGraph,
        platform: MPSoC,
        deadline_s: float,
        ser_model: Optional[SERModel] = None,
        power_model: Optional[PowerModel] = None,
        mapper: Optional[Mapper] = None,
        power_tolerance: float = 0.02,
        stop_after_feasible: Optional[int] = None,
        seed: Optional[int] = 0,
        tiebreak: Optional[Objective] = None,
        remap_per_scaling: bool = True,
        backend: BackendSpec = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if power_tolerance < 0:
            raise ValueError("power_tolerance must be non-negative")
        self.graph = graph
        self.platform = platform
        self.deadline_s = deadline_s
        self.evaluator = MappingEvaluator(
            graph,
            platform,
            ser_model=ser_model,
            power_model=power_model,
            deadline_s=deadline_s,
        )
        self.mapper = mapper or sea_mapper()
        self.tiebreak: Objective = tiebreak or _expected_seus_tiebreak
        self.power_tolerance = power_tolerance
        self.stop_after_feasible = stop_after_feasible
        self.seed = seed
        self.remap_per_scaling = remap_per_scaling
        self.backend: BackendSpec = backend
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers

    def power_proxy(self, scaling: Tuple[int, ...]) -> float:
        """Cheap analytic power estimate for ordering the sweep.

        Assumes work is spread proportionally to core speeds and the
        makespan is the larger of the critical-path bound and the
        pooled-throughput bound; then ``P ~ sum_i cycles_i * V_i^2 /
        T_M``.  Only the *ordering* matters: assessing scalings
        cheapest-first makes the unhelpful-streak early exit safe.
        """
        tables = self.platform.core_tables
        frequencies = [
            table.frequency_hz(coefficient)
            for table, coefficient in zip(tables, scaling)
        ]
        voltages = [
            table.vdd_v(coefficient)
            for table, coefficient in zip(tables, scaling)
        ]
        work = float(self.graph.total_cycles())
        pooled = sum(frequencies)
        makespan = max(
            self.graph.critical_path_cycles() / max(frequencies), work / pooled
        )
        power = sum(
            (work * frequency / pooled) * voltage * voltage
            for frequency, voltage in zip(frequencies, voltages)
        )
        return power / makespan

    def optimize(
        self,
        scalings: Optional[Sequence[Tuple[int, ...]]] = None,
        backend: BackendSpec = None,
    ) -> OptimizationOutcome:
        """Run the loop over ``scalings``.

        Defaults to the full ``nextScaling`` enumeration, assessed in
        ascending order of :meth:`power_proxy` — the same set the
        paper sweeps, but ordered so the earliest feasible designs are
        also the cheapest, which both matches the paper's
        lowest-power-first intent and makes early stopping sound.

        ``backend`` overrides the optimizer's configured execution
        backend for this call.  Parallel runs assess scalings
        concurrently in ordered waves (each job with the same
        per-scaling deterministic seed and a private evaluator), then
        replay the serial early-exit policy over the ordered results,
        so the returned assessments and the selected design are
        identical to a serial run; ``evaluations`` additionally counts
        the bounded tail of work (at most one wave past the serial
        stop point) that an early-exiting serial sweep would have
        skipped.
        """
        platform = self.platform
        if scalings is None:
            scalings = list(platform_scaling_combinations(platform))
            scalings.sort(key=self.power_proxy)
        scalings = [tuple(scaling) for scaling in scalings]
        # Ambient per-scaling checkpoint (set by the store-backed cell
        # runner): completed sweep positions restore instead of
        # re-searching, keyed by run fingerprint + cell key + sweep
        # number + position (the sweep order above is a pure function
        # of the profile, so a position names the same scaling in
        # every run of the cell; the sweep number distinguishes
        # back-to-back optimizations inside one cell — claimed here,
        # once per invocation, in deterministic cell order).
        checkpoint = current_checkpoint()
        sweep = 0
        if checkpoint is not None:
            try:
                sweep = checkpoint.next_sweep()
            except Exception:
                checkpoint = None
        restored_evaluations = 0
        fixed_mapping = None
        if not self.remap_per_scaling:
            # Baseline flow: optimize the mapping once at nominal
            # scaling, deadline-free, then only re-time it below.
            # Checkpointed at position -1 — the precompute is often the
            # most expensive single search of a baseline cell.
            restored = _checkpoint_restore(checkpoint, -1, sweep)
            if restored is not None:
                fixed_mapping, spent = restored
                restored_evaluations += spent
            else:
                nominal = (1,) * platform.num_cores
                before = self.evaluator.evaluations
                fixed_mapping = self.mapper(self.evaluator, nominal, self.seed).mapping
                _checkpoint_record(
                    checkpoint,
                    -1,
                    fixed_mapping,
                    self.evaluator.evaluations - before,
                    sweep,
                )

        spec = backend if backend is not None else self.backend
        # The probe is only built if the "auto" branch needs to pickle
        # one — constructing a full _ScalingJob for a serial run (or a
        # spec that never probes) would be pure waste.
        resolved = resolve_backend(
            spec,
            task_count=len(scalings),
            probe_factory=(
                (lambda: self._scaling_job(scalings[0], fixed_mapping))
                if scalings
                else None
            ),
            max_workers=self.max_workers,
        )
        if isinstance(resolved, SerialBackend):
            outcome = self._optimize_serial(scalings, fixed_mapping, checkpoint, sweep)
        elif isinstance(resolved, SharedExecutorBackend):
            # The unified DAG executor: flatten scalings x restarts
            # into leaf tasks on the shared queue.  Nothing to close —
            # the executor belongs to whoever opened the scope.
            outcome = self._optimize_dag(
                scalings, fixed_mapping, resolved, checkpoint, sweep
            )
        else:
            try:
                outcome = self._optimize_parallel(
                    scalings, fixed_mapping, resolved, checkpoint, sweep
                )
            finally:
                if resolved is not spec:  # close pools we created here
                    resolved.close()
        # Evaluations restored from checkpoints were counted by the
        # interrupted run's evaluators; adding them back keeps the
        # total identical to an uninterrupted sweep (the counter is
        # call-based, so the recorded deltas are state-independent).
        outcome.evaluations += restored_evaluations
        outcome.best = self._select(outcome)
        return outcome

    def _optimize_serial(
        self,
        scalings: Sequence[Tuple[int, ...]],
        fixed_mapping: Optional[Mapping],
        checkpoint: Optional[CellCheckpoint] = None,
        sweep: int = 0,
    ) -> OptimizationOutcome:
        """The reference sweep: assess in order, stop on a futile streak.

        With an ambient checkpoint, each completed position is durably
        recorded as ``(point, evaluations spent)`` and a resumed sweep
        restores recorded positions instead of re-searching — the
        points (and therefore the streak replay and the selection) are
        byte-identical either way, because searches are pure functions
        of ``(graph, platform, scaling, seed)``.
        """
        outcome = OptimizationOutcome(best=None)
        restored_evaluations = 0
        unhelpful_streak = 0
        min_feasible_power: Optional[float] = None
        for position, scaling in enumerate(scalings):
            restored = _checkpoint_restore(checkpoint, position, sweep)
            if restored is not None:
                point, spent = restored
                restored_evaluations += spent
            else:
                seed = (
                    None
                    if self.seed is None
                    else self.seed + self._scaling_seed(scaling)
                )
                before = self.evaluator.evaluations
                if fixed_mapping is None:
                    point = self.mapper(self.evaluator, scaling, seed)
                else:
                    point = self.evaluator.evaluate(fixed_mapping, scaling)
                _checkpoint_record(
                    checkpoint,
                    position,
                    point,
                    self.evaluator.evaluations - before,
                    sweep,
                )
            feasible = point.makespan_s <= self.deadline_s + 1e-12
            outcome.assessments.append(
                ScalingAssessment(scaling=scaling, point=point, feasible=feasible)
            )
            stop, unhelpful_streak, min_feasible_power = self._streak_step(
                point, feasible, unhelpful_streak, min_feasible_power
            )
            if stop:
                break
        outcome.evaluations = self.evaluator.evaluations + restored_evaluations
        return outcome

    def _optimize_parallel(
        self,
        scalings: Sequence[Tuple[int, ...]],
        fixed_mapping: Optional[Mapping],
        backend: ExecutionBackend,
        checkpoint: Optional[CellCheckpoint] = None,
        sweep: int = 0,
    ) -> OptimizationOutcome:
        """Assess scalings concurrently, then replay the serial policy.

        Each job carries its own deterministic seed and rebuilds a
        private evaluator, so the produced design points match the
        serial sweep's exactly; replaying the ordered results through
        the same unhelpful-streak rule yields the identical
        assessment list — and therefore the identical selection.

        Jobs are dispatched in ordered *waves* (not all at once) when
        the early exit is armed: once the replay stops inside a wave,
        later waves are never dispatched, bounding the extra work a
        parallel sweep spends past the serial stop point to one wave.

        Checkpointed positions are restored instead of dispatched —
        interchangeably with the serial sweep's records, because a
        job's private evaluator counts exactly the calls the shared
        serial evaluator would — and fresh results are recorded as
        each wave completes (wave granularity, not per-scaling: the
        pool returns a wave at a time).
        """
        outcome = OptimizationOutcome(best=None)
        child_evaluations = 0
        unhelpful_streak = 0
        min_feasible_power: Optional[float] = None
        stopped = False
        if self.stop_after_feasible is None:
            wave_size = len(scalings)  # no early exit: one full wave
        else:
            wave_size = max(2 * self.stop_after_feasible, 8)
        cursor = 0
        while cursor < len(scalings) and not stopped:
            wave = scalings[cursor : cursor + wave_size]
            wave_start = cursor
            cursor += len(wave)
            wave_results: List[Optional[Tuple[DesignPoint, int]]] = [
                _checkpoint_restore(checkpoint, wave_start + offset, sweep)
                for offset in range(len(wave))
            ]
            misses = [
                offset for offset, result in enumerate(wave_results) if result is None
            ]
            jobs = [
                self._scaling_job(wave[offset], fixed_mapping, serial_restarts=True)
                for offset in misses
            ]
            computed = backend.map(_run_scaling_job, jobs) if jobs else []
            for offset, (point, spent) in zip(misses, computed):
                wave_results[offset] = (point, spent)
                _checkpoint_record(
                    checkpoint, wave_start + offset, point, spent, sweep
                )
            for scaling, (point, spent) in zip(wave, wave_results):
                child_evaluations += spent
                if stopped:
                    continue  # tail of the wave the serial sweep would skip
                feasible = point.makespan_s <= self.deadline_s + 1e-12
                outcome.assessments.append(
                    ScalingAssessment(scaling=scaling, point=point, feasible=feasible)
                )
                stopped, unhelpful_streak, min_feasible_power = self._streak_step(
                    point, feasible, unhelpful_streak, min_feasible_power
                )
        outcome.evaluations = self.evaluator.evaluations + child_evaluations
        return outcome

    def _optimize_dag(
        self,
        scalings: Sequence[Tuple[int, ...]],
        fixed_mapping: Optional[Mapping],
        backend: ExecutionBackend,
        checkpoint: Optional[CellCheckpoint] = None,
        sweep: int = 0,
    ) -> OptimizationOutcome:
        """The unified-executor sweep: restart-level leaves, shared queue.

        Like :meth:`_optimize_parallel` — ordered waves, then the
        serial streak replay over ordered results — but each scaling
        whose mapper exposes a ``restart_plan`` is decomposed into
        individual restart leaves (reassembled by the plan's ranking
        replay), and *all* leaves of a wave go out in one ordered
        batch on the shared executor.  Two consequences the per-cut
        fan-out cannot offer: a scaling's restarts from different
        cells interleave on the same workers, and even single-restart
        scalings ship to the pool instead of pinning a coordinator.

        Determinism is untouched: leaf seeds, the per-plan best-of
        replay and the streak replay are verbatim the serial policies
        over results reassembled in canonical scaling/restart order.
        """
        outcome = OptimizationOutcome(best=None)
        child_evaluations = 0
        unhelpful_streak = 0
        min_feasible_power: Optional[float] = None
        stopped = False
        if self.stop_after_feasible is None:
            wave_size = len(scalings)  # no early exit: one full wave
        else:
            wave_size = max(2 * self.stop_after_feasible, 8)
        plan_method = getattr(self.mapper, "restart_plan", None)
        cursor = 0
        while cursor < len(scalings) and not stopped:
            wave = scalings[cursor : cursor + wave_size]
            wave_start = cursor
            cursor += len(wave)
            # Expand the wave into leaves: (plan, start, end) slices
            # keep the canonical scaling/restart order for reassembly.
            # Checkpointed positions (restored as (point, spent), the
            # same records the other sweeps write) ship no leaves.
            leaves: List[object] = []
            slices: List[Optional[Tuple[Optional[RestartPlan], int, int]]] = []
            restored_wave: List[Optional[Tuple[DesignPoint, int]]] = []
            for offset, scaling in enumerate(wave):
                restored = _checkpoint_restore(
                    checkpoint, wave_start + offset, sweep
                )
                restored_wave.append(restored)
                if restored is not None:
                    slices.append(None)
                    continue
                plan: Optional[RestartPlan] = None
                if fixed_mapping is None and plan_method is not None:
                    seed = (
                        None
                        if self.seed is None
                        else self.seed + self._scaling_seed(scaling)
                    )
                    plan = plan_method(self.evaluator, scaling, seed)
                start = len(leaves)
                if plan is not None:
                    leaves.extend(plan.jobs)
                else:
                    leaves.append(
                        self._scaling_job(scaling, fixed_mapping, serial_restarts=True)
                    )
                slices.append((plan, start, len(leaves)))
            results = backend.map(_run_dag_leaf, leaves) if leaves else []
            for offset, (scaling, piece) in enumerate(zip(wave, slices)):
                if piece is None:
                    point, spent = restored_wave[offset]
                else:
                    plan, start, end = piece
                    if plan is not None:
                        point, spent = plan.reduce(results[start:end])
                    else:
                        point, spent = results[start]
                    _checkpoint_record(
                        checkpoint, wave_start + offset, point, spent, sweep
                    )
                child_evaluations += spent
                if stopped:
                    continue  # tail of the wave the serial sweep would skip
                feasible = point.makespan_s <= self.deadline_s + 1e-12
                outcome.assessments.append(
                    ScalingAssessment(scaling=scaling, point=point, feasible=feasible)
                )
                stopped, unhelpful_streak, min_feasible_power = self._streak_step(
                    point, feasible, unhelpful_streak, min_feasible_power
                )
        outcome.evaluations = self.evaluator.evaluations + child_evaluations
        return outcome

    def _scaling_job(
        self,
        scaling: Tuple[int, ...],
        fixed_mapping: Optional[Mapping],
        serial_restarts: bool = False,
    ) -> _ScalingJob:
        evaluator = self.evaluator
        mapper = self.mapper if fixed_mapping is None else None
        if serial_restarts:
            mapper = _serial_restart_mapper(mapper)
        return _ScalingJob(
            graph=self.graph,
            platform=self.platform,
            deadline_s=self.deadline_s,
            ser_model=evaluator.ser_model,
            power_model=evaluator.power_model,
            comm_model=evaluator.comm_model,
            mapper=mapper,
            fixed_mapping=fixed_mapping,
            scaling=scaling,
            seed=None if self.seed is None else self.seed + self._scaling_seed(scaling),
        )

    def _streak_step(
        self,
        point: DesignPoint,
        feasible: bool,
        unhelpful_streak: int,
        min_feasible_power: Optional[float],
    ) -> Tuple[bool, int, Optional[float]]:
        """One step of the early-exit bookkeeping (see class docstring).

        Shared verbatim between the serial sweep and the parallel
        replay so the two can never drift apart.
        """
        if feasible:
            band = (
                min_feasible_power * (1.0 + self.power_tolerance)
                if min_feasible_power is not None
                else None
            )
            if band is not None and point.power_mw > band:
                unhelpful_streak += 1  # cannot be selected
            else:
                unhelpful_streak = 0
            if min_feasible_power is None or point.power_mw < min_feasible_power:
                min_feasible_power = point.power_mw
            stop = (
                self.stop_after_feasible is not None
                and unhelpful_streak >= self.stop_after_feasible
            )
        else:
            unhelpful_streak = 0
            stop = False
        return stop, unhelpful_streak, min_feasible_power

    def _scaling_seed(self, scaling: Tuple[int, ...]) -> int:
        """A stable seed derived from the *physical* operating points.

        Two scaling vectors that select the same (frequency, voltage)
        per core — even from different tables, e.g. (2,..,1) in the
        3-level table and (3,..,2) in the 4-level one — get the same
        seed, so the stochastic mapping stage produces the same design
        and cross-preset comparisons (Fig. 11) are apples-to-apples.
        """
        tables = self.platform.core_tables
        value = 0
        for table, coefficient in zip(tables, scaling):
            level = table.level(coefficient)
            value = (
                value * 1_000_003
                + int(round(level.frequency_mhz * 1000)) * 31
                + int(round(level.vdd_v * 1000)) * 17
            ) % 2_147_483_647
        return value

    def _select(self, outcome: OptimizationOutcome) -> Optional[DesignPoint]:
        """Step 3: min power, tie-break within the tolerance band."""
        feasible = outcome.feasible_points
        if not feasible:
            return None
        min_power = min(point.power_mw for point in feasible)
        band = min_power * (1.0 + self.power_tolerance)
        contenders = [point for point in feasible if point.power_mw <= band + 1e-12]
        return min(contenders, key=lambda point: (self.tiebreak(point), point.power_mw))
