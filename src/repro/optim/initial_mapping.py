"""``InitialSEAMapping`` — the constructive stage-1 heuristic (Fig. 6).

The algorithm builds a first soft error-aware mapping cheaply so the
stage-2 local search starts close to good designs:

1. Begin with an entry task (no predecessors) on the first core.
2. Repeatedly extend the current core with the *dependent* (direct
   successor) whose addition increases the expected SEU count the
   least (ties broken by execution time) — dependents share data with
   the current task, so co-locating the cheapest one both avoids
   register duplication and saves communication time.
3. Stop growing a core when its accumulated execution time would
   reach the real-time constraint, or when the remaining unmapped
   tasks are only just enough to populate the remaining cores (the
   paper requires every core to receive work).
4. Tasks discovered but not chosen are parked in a FIFO queue ``Q``
   and seed the following cores.
5. Any tasks left after the per-core passes are placed on the core
   whose expected-SEU increase is smallest ("the same criteria").

The function is deterministic for a given graph and platform state.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.arch.mpsoc import MPSoC
from repro.faults.ser import SERModel
from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.registers import Register


class _CoreState:
    """Incremental per-core accounting for the constructive pass."""

    __slots__ = ("tasks", "registers", "bits", "cycles", "rate", "frequency_hz")

    def __init__(self, frequency_hz: float, rate: float) -> None:
        self.tasks: List[str] = []
        self.registers: Set[Register] = set()
        self.bits = 0
        self.cycles = 0
        self.rate = rate
        self.frequency_hz = frequency_hz

    def time_s(self) -> float:
        return self.cycles / self.frequency_hz

    def gamma(self) -> float:
        # Constructive proxy for Eq. (3): the core's own busy cycles
        # stand in for the still-unknown final T_M window.
        return self.rate * self.bits * self.cycles

    def added_cycles(self, graph: TaskGraph, name: str, core_of: Dict[str, int], core_index: int) -> int:
        cycles = graph.task(name).cycles
        for producer in graph.predecessors(name):
            owner = core_of.get(producer)
            if owner is not None and owner != core_index:
                cycles += graph.comm_cycles(producer, name)
        return cycles

    def gamma_if_added(
        self, graph: TaskGraph, name: str, core_of: Dict[str, int], core_index: int
    ) -> float:
        new_registers = graph.registers_of(name) - self.registers
        new_bits = self.bits + sum(register.bits for register in new_registers)
        new_cycles = self.cycles + self.added_cycles(graph, name, core_of, core_index)
        return self.rate * new_bits * new_cycles

    def add(self, graph: TaskGraph, name: str, core_of: Dict[str, int], core_index: int) -> None:
        self.cycles += self.added_cycles(graph, name, core_of, core_index)
        for register in graph.registers_of(name):
            if register not in self.registers:
                self.registers.add(register)
                self.bits += register.bits
        self.tasks.append(name)
        core_of[name] = core_index


def initial_sea_mapping(
    graph: TaskGraph,
    platform: MPSoC,
    deadline_s: float,
    scaling: Optional[Sequence[int]] = None,
    ser_model: Optional[SERModel] = None,
) -> Mapping:
    """Build the stage-1 soft error-aware mapping (Fig. 6).

    Parameters
    ----------
    graph:
        Application task graph.
    platform:
        The MPSoC; supplies core count and the scaling table.
    deadline_s:
        The real-time constraint ``T_Mref`` that bounds each core's
        accumulated execution time during construction.
    scaling:
        Per-core scaling coefficients (defaults to the platform's).
    ser_model:
        Voltage-dependent SER used for the min-SEU selection.

    Returns
    -------
    Mapping
        A complete mapping with every core populated whenever the
        graph has at least as many tasks as cores.
    """
    graph.validate()
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    ser_model = ser_model or SERModel()
    if scaling is None:
        scaling = platform.scaling_vector()
    else:
        scaling = platform.validate_assignment(scaling)
        if len(scaling) != platform.num_cores:
            raise ValueError(
                f"scaling vector has {len(scaling)} entries for "
                f"{platform.num_cores} cores"
            )

    num_cores = platform.num_cores
    tables = platform.core_tables
    cores = [
        _CoreState(
            frequency_hz=table.frequency_hz(coefficient),
            rate=ser_model.rate(table.vdd_v(coefficient)),
        )
        for table, coefficient in zip(tables, scaling)
    ]

    core_of: Dict[str, int] = {}
    mapped: Set[str] = set()
    queue: Deque[str] = deque()
    enqueued: Set[str] = set()

    for entry in graph.entry_tasks():  # line 1 (generalized to multi-entry)
        queue.append(entry)
        enqueued.add(entry)

    def _unmapped_count() -> int:
        return graph.num_tasks - len(mapped)

    def _dependents_by_seus(name: str, core: _CoreState, core_index: int) -> List[str]:
        """Unmapped direct successors, sorted by SEUs-if-co-mapped then time."""
        dependents = [
            successor
            for successor in graph.successors(name)
            if successor not in mapped
        ]
        dependents.sort(
            key=lambda dep: (
                core.gamma_if_added(graph, dep, core_of, core_index),
                graph.task(dep).cycles,
                dep,
            )
        )
        return dependents

    def _map_task(name: str, core_index: int) -> None:
        cores[core_index].add(graph, name, core_of, core_index)
        mapped.add(name)
        enqueued.discard(name)

    def _next_from_queue() -> Optional[str]:
        while queue:
            candidate = queue.popleft()
            if candidate not in mapped:
                return candidate
        return None

    for core_index in range(num_cores - 1):  # line 2: cores 1..C-1
        if _unmapped_count() == 0:
            break
        current = _next_from_queue()
        if current is None:
            break
        core = cores[core_index]
        _map_task(current, core_index)  # line 3

        # lines 4-13: grow the core while the time budget and the
        # all-cores-populated guard allow.
        while (
            core.time_s() < deadline_s
            and _unmapped_count() > (num_cores - core_index - 1)
        ):
            dependents = _dependents_by_seus(current, core, core_index)  # line 5
            if dependents:
                chosen = dependents[0]  # line 9: min-SEU dependent
                _map_task(chosen, core_index)  # line 10
                for leftover in dependents[1:]:
                    if leftover not in enqueued:
                        queue.append(leftover)
                        enqueued.add(leftover)
                current = chosen
            else:
                # line 6-7: no dependents to extend with; continue from
                # the queue on the same core while budget remains.
                fallback = _next_from_queue()
                if fallback is None:
                    break
                _map_task(fallback, core_index)
                current = fallback

        # Discover successors of everything mapped so far so later
        # cores have seeds even when this core stopped early.
        for name in list(mapped):
            for successor in graph.successors(name):
                if successor not in mapped and successor not in enqueued:
                    queue.append(successor)
                    enqueued.add(successor)

    # Remaining tasks: the last core takes queue order, but each task
    # goes to the core with the smallest SEU increase among those that
    # still respect the populate-all-cores guard ("same criteria").
    remaining = [name for name in graph.topological_order() if name not in mapped]
    for name in remaining:
        empty_cores = [index for index, core in enumerate(cores) if not core.tasks]
        if empty_cores:
            candidates = empty_cores
        else:
            candidates = list(range(num_cores))
        best_index = min(
            candidates,
            key=lambda index: (
                cores[index].gamma_if_added(graph, name, core_of, index),
                cores[index].cycles,
                index,
            ),
        )
        _map_task(name, best_index)

    mapping = Mapping(core_of, num_cores)
    mapping.validate_against(graph)
    return mapping
