"""Neighbourhood moves for mapping search.

The paper's ``OptimizedMapping`` explores "neighbouring task
movements" (Fig. 7, step C): relocating a task to another core or
exchanging two tasks between cores.  Each iteration performs at most
two task movements (a swap is two), matching the complexity analysis
in Section IV-B.

:func:`random_neighbor` draws one such move; :func:`neighbor_mappings`
iterates a deterministic neighbourhood (used by exhaustive local
search and by tests).  Moves favour *dependent* tasks — predecessors
and successors of recently moved tasks — because relocating a task
relative to its neighbours in the graph is what changes both the
communication time and the register duplication.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Sequence

from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph


def random_neighbor(
    mapping: Mapping,
    graph: TaskGraph,
    rng: random.Random,
    swap_probability: float = 0.4,
    focus_task: Optional[str] = None,
) -> Mapping:
    """One random move or swap away from ``mapping``.

    Parameters
    ----------
    mapping:
        Current mapping.
    graph:
        The task graph (supplies the dependent-task bias).
    rng:
        Seeded random source.
    swap_probability:
        Probability of a two-task swap instead of a single move.
    focus_task:
        Bias: when given, the moved task is drawn from this task's
        direct neighbourhood (predecessors/successors, itself) when
        possible.
    """
    names: Sequence[str] = graph.task_names()
    if mapping.num_cores < 2 or len(names) < 2:
        return mapping

    candidates: Sequence[str] = names
    if focus_task is not None and focus_task in mapping:
        related = (
            (focus_task,)
            + graph.predecessors(focus_task)
            + graph.successors(focus_task)
        )
        if related:
            candidates = related

    task = candidates[rng.randrange(len(candidates))]
    if rng.random() < swap_probability:
        partner_pool = [
            name for name in names if mapping.core_of(name) != mapping.core_of(task)
        ]
        if partner_pool:
            partner = partner_pool[rng.randrange(len(partner_pool))]
            return mapping.swap(task, partner)
    current_core = mapping.core_of(task)
    other_cores = [core for core in range(mapping.num_cores) if core != current_core]
    return mapping.move(task, other_cores[rng.randrange(len(other_cores))])


def neighbor_mappings(mapping: Mapping, graph: TaskGraph) -> Iterator[Mapping]:
    """Deterministically iterate the single-move neighbourhood.

    Yields every mapping obtained by relocating one task to a
    different core, in task/core order.  Size is ``N * (C - 1)``.
    """
    for name in graph.task_names():
        current = mapping.core_of(name)
        for core in range(mapping.num_cores):
            if core != current:
                yield mapping.move(name, core)


def swap_neighborhood(mapping: Mapping, graph: TaskGraph) -> Iterator[Mapping]:
    """Deterministically iterate all cross-core pairwise swaps."""
    names = graph.task_names()
    for index, task_a in enumerate(names):
        for task_b in names[index + 1 :]:
            if mapping.core_of(task_a) != mapping.core_of(task_b):
                yield mapping.swap(task_a, task_b)
