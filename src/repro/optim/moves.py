"""Neighbourhood moves for mapping search.

The paper's ``OptimizedMapping`` explores "neighbouring task
movements" (Fig. 7, step C): relocating a task to another core or
exchanging two tasks between cores.  Each iteration performs at most
two task movements (a swap is two), matching the complexity analysis
in Section IV-B.

:func:`random_neighbor` draws one such move as a fresh
:class:`~repro.mapping.mapping.Mapping`; :func:`neighbor_mappings`
iterates a deterministic neighbourhood (used by exhaustive local
search and by tests).  Moves favour *dependent* tasks — predecessors
and successors of recently moved tasks — because relocating a task
relative to its neighbours in the graph is what changes both the
communication time and the register duplication.

The search inner loops, however, no longer materialize a mapping per
neighbour: :class:`MoveSampler` draws lightweight :class:`Move` /
:class:`Swap` **descriptors** (compiled task index + target core) from
the *identical* RNG stream — same calls, same order, same selections —
so a descriptor walk reproduces the Mapping-based walk bit for bit
while paying O(log N) per draw instead of O(N).  The O(N) component of
:func:`random_neighbor` is its swap-partner pool (every task on a
different core, in task order); the sampler answers the same k-th-
element query from per-core Fenwick trees over task membership.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Union

from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph


def random_neighbor(
    mapping: Mapping,
    graph: TaskGraph,
    rng: random.Random,
    swap_probability: float = 0.4,
    focus_task: Optional[str] = None,
) -> Mapping:
    """One random move or swap away from ``mapping``.

    Parameters
    ----------
    mapping:
        Current mapping.
    graph:
        The task graph (supplies the dependent-task bias).
    rng:
        Seeded random source.
    swap_probability:
        Probability of a two-task swap instead of a single move.
    focus_task:
        Bias: when given, the moved task is drawn from this task's
        direct neighbourhood (predecessors/successors, itself) when
        possible.
    """
    names: Sequence[str] = graph.task_names()
    if mapping.num_cores < 2 or len(names) < 2:
        return mapping

    candidates: Sequence[str] = names
    if focus_task is not None and focus_task in mapping:
        related = (
            (focus_task,)
            + graph.predecessors(focus_task)
            + graph.successors(focus_task)
        )
        if related:
            candidates = related

    task = candidates[rng.randrange(len(candidates))]
    if rng.random() < swap_probability:
        partner_pool = [
            name for name in names if mapping.core_of(name) != mapping.core_of(task)
        ]
        if partner_pool:
            partner = partner_pool[rng.randrange(len(partner_pool))]
            return mapping.swap(task, partner)
    current_core = mapping.core_of(task)
    other_cores = [core for core in range(mapping.num_cores) if core != current_core]
    return mapping.move(task, other_cores[rng.randrange(len(other_cores))])


def neighbor_mappings(mapping: Mapping, graph: TaskGraph) -> Iterator[Mapping]:
    """Deterministically iterate the single-move neighbourhood.

    Yields every mapping obtained by relocating one task to a
    different core, in task/core order.  Size is ``N * (C - 1)``.
    """
    for name in graph.task_names():
        current = mapping.core_of(name)
        for core in range(mapping.num_cores):
            if core != current:
                yield mapping.move(name, core)


def swap_neighborhood(mapping: Mapping, graph: TaskGraph) -> Iterator[Mapping]:
    """Deterministically iterate all cross-core pairwise swaps."""
    names = graph.task_names()
    for index, task_a in enumerate(names):
        for task_b in names[index + 1 :]:
            if mapping.core_of(task_a) != mapping.core_of(task_b):
                yield mapping.swap(task_a, task_b)


# ---------------------------------------------------------------------------
# Move descriptors — the allocation-free search inner loop
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Move:
    """Relocate one task: ``task`` (compiled index) to ``core``.

    The target always differs from the task's current core — the
    sampler never emits identity moves (matching
    :func:`random_neighbor`, whose move branch excludes the current
    core).
    """

    task: int
    core: int


@dataclass(frozen=True)
class Swap:
    """Exchange the cores of two tasks (compiled indices).

    The two tasks are guaranteed to sit on different cores at draw
    time; the target cores are implied by the current assignment when
    the descriptor is applied/previewed, which is why descriptors must
    be consumed against the state they were drawn from.
    """

    task_a: int
    task_b: int


#: What :meth:`MoveSampler.draw` yields: a move, a swap, or ``None``
#: for the degenerate graphs where :func:`random_neighbor` returns the
#: input mapping unchanged (fewer than two cores or two tasks).
MoveDescriptor = Union[Move, Swap]


@dataclass
class InnerLoopStats:
    """Instrumentation counters for one descriptor search walk.

    Attributes
    ----------
    moves_drawn:
        Candidate descriptors produced by the sampler (degenerate
        ``None`` draws excluded).
    previews:
        Incremental screening previews computed (0 with screening off).
    screened_moves:
        Candidates pruned by a certified bound without evaluation.
    materialized_mappings:
        Neighbour evaluations that missed the cache and therefore
        built a real :class:`~repro.mapping.mapping.Mapping` — the
        only point of the inner loop that still allocates one.
    signature_rebuilds:
        Full signature recomputations (re-anchors such as
        intensification pulls; 0 for a pure forward walk).
    """

    moves_drawn: int = 0
    previews: int = 0
    screened_moves: int = 0
    materialized_mappings: int = 0
    signature_rebuilds: int = 0

    def merge(self, other: "InnerLoopStats") -> None:
        """Fold another walk's counters into this aggregate."""
        self.moves_drawn += other.moves_drawn
        self.previews += other.previews
        self.screened_moves += other.screened_moves
        self.materialized_mappings += other.materialized_mappings
        self.signature_rebuilds += other.signature_rebuilds


class MoveSampler:
    """Draws move descriptors RNG-identically to :func:`random_neighbor`.

    Maintains the walk's current core assignment as a dense list plus
    per-core task counts and per-core Fenwick trees over membership,
    so one draw costs O(log N): the swap branch's "k-th task not on
    core *c*, in task order" query — the O(N) pool scan of the
    Mapping-based path — becomes a Fenwick select over the complement.

    The RNG contract is exact: for any ``(assignment, focus, rng
    state)``, :meth:`draw` consumes the same ``randrange``/``random``
    calls in the same order as :func:`random_neighbor` and selects the
    same task(s) and target core, so a descriptor walk and a Mapping
    walk sharing a seed visit identical neighbours.  The parity suite
    asserts this over randomized graphs.

    Parameters
    ----------
    compiled:
        The graph's :class:`~repro.taskgraph.compiled.CompiledTaskGraph`
        (supplies task count and the dependent-task bias adjacency).
    cores:
        Current core of every task, in compiled index order.
    num_cores:
        Platform width (may exceed ``max(cores) + 1``).
    swap_probability:
        Probability of a two-task swap instead of a single move.
    """

    __slots__ = (
        "_compiled",
        "_num_tasks",
        "_num_cores",
        "_swap_probability",
        "_cores",
        "_counts",
        "_used",
        "_trees",
        "_top_bit",
    )

    def __init__(
        self,
        compiled,
        cores: Sequence[int],
        num_cores: int,
        swap_probability: float = 0.4,
    ) -> None:
        self._compiled = compiled
        self._num_tasks = compiled.num_tasks
        self._num_cores = num_cores
        self._swap_probability = swap_probability
        self._top_bit = (
            1 << (self._num_tasks.bit_length() - 1) if self._num_tasks else 0
        )
        self.rebuild(cores)

    # -- anchoring -----------------------------------------------------------

    def rebuild(self, cores: Sequence[int]) -> None:
        """Re-anchor on an arbitrary core assignment (O(N log N))."""
        cores = list(cores)
        if len(cores) != self._num_tasks:
            raise ValueError(
                f"assignment covers {len(cores)} tasks, graph has "
                f"{self._num_tasks}"
            )
        counts = [0] * self._num_cores
        for core in cores:
            counts[core] += 1
        self._cores = cores
        self._counts = counts
        self._used = sum(1 for count in counts if count)
        self._trees = [[0] * (self._num_tasks + 1) for _ in range(self._num_cores)]
        for task, core in enumerate(cores):
            self._tree_add(core, task, 1)

    # -- queries -------------------------------------------------------------

    @property
    def cores(self) -> List[int]:
        """Current core of every task (copy)."""
        return list(self._cores)

    @property
    def used_cores(self) -> int:
        """Number of cores holding at least one task."""
        return self._used

    def core_of(self, task: int) -> int:
        return self._cores[task]

    def used_cores_after(self, descriptor: MoveDescriptor) -> int:
        """Non-empty core count after ``descriptor`` — O(1).

        Matches ``len(neighbor.used_cores())`` of the materialized
        neighbour exactly (swaps never change occupancy; a move can
        drain its source and/or populate its target).
        """
        if isinstance(descriptor, Swap):
            return self._used
        old_core = self._cores[descriptor.task]
        new_core = descriptor.core
        if new_core == old_core:
            return self._used
        used = self._used
        if self._counts[old_core] == 1:
            used -= 1
        if self._counts[new_core] == 0:
            used += 1
        return used

    def first_moved(self, descriptor: MoveDescriptor) -> int:
        """Lowest-index task the descriptor moves (the focus-bias pick).

        The Mapping-based walk derives its focus task as the first
        entry of the moved-task list in task order; for a move that is
        the task itself, for a swap the smaller index.
        """
        if isinstance(descriptor, Move):
            return descriptor.task
        return min(descriptor.task_a, descriptor.task_b)

    # -- drawing -------------------------------------------------------------

    def draw(
        self, rng: random.Random, focus: Optional[int] = None
    ) -> Optional[MoveDescriptor]:
        """One random move or swap — :func:`random_neighbor`'s twin.

        ``None`` mirrors the degenerate case where the reference
        returns the input mapping unchanged (no RNG consumed).
        """
        num_tasks = self._num_tasks
        if self._num_cores < 2 or num_tasks < 2:
            return None
        if focus is None:
            task = rng.randrange(num_tasks)
        else:
            compiled = self._compiled
            pred_lo = compiled.pred_ptr[focus]
            pred_degree = compiled.pred_ptr[focus + 1] - pred_lo
            succ_lo = compiled.succ_ptr[focus]
            succ_degree = compiled.succ_ptr[focus + 1] - succ_lo
            # Candidate order matches the reference's tuple concat:
            # (focus,) + predecessors + successors, edge order.
            pick = rng.randrange(1 + pred_degree + succ_degree)
            if pick == 0:
                task = focus
            elif pick <= pred_degree:
                task = compiled.pred_idx[pred_lo + pick - 1]
            else:
                task = compiled.succ_idx[succ_lo + pick - 1 - pred_degree]
        core = self._cores[task]
        if rng.random() < self._swap_probability:
            pool_size = num_tasks - self._counts[core]
            if pool_size:
                partner = self._select_absent(core, rng.randrange(pool_size))
                return Swap(task, partner)
        target = rng.randrange(self._num_cores - 1)
        return Move(task, target if target < core else target + 1)

    # -- committed updates ---------------------------------------------------

    def apply(self, descriptor: MoveDescriptor) -> None:
        """Commit a descriptor drawn from the current state (O(log N))."""
        cores = self._cores
        if isinstance(descriptor, Move):
            moves = ((descriptor.task, descriptor.core),)
        else:
            task_a, task_b = descriptor.task_a, descriptor.task_b
            moves = ((task_a, cores[task_b]), (task_b, cores[task_a]))
        counts = self._counts
        for task, new_core in moves:
            old_core = cores[task]
            if new_core == old_core:
                continue
            cores[task] = new_core
            counts[old_core] -= 1
            counts[new_core] += 1
            if counts[old_core] == 0:
                self._used -= 1
            if counts[new_core] == 1:
                self._used += 1
            self._tree_add(old_core, task, -1)
            self._tree_add(new_core, task, 1)

    # -- Fenwick internals ---------------------------------------------------

    def _tree_add(self, core: int, task: int, delta: int) -> None:
        tree = self._trees[core]
        position = task + 1
        size = self._num_tasks
        while position <= size:
            tree[position] += delta
            position += position & -position

    def _select_absent(self, core: int, k: int) -> int:
        """The (k+1)-th task index *not* on ``core``, in index order.

        Fenwick select over the membership complement: descend the
        implicit tree, at each node comparing ``k`` against the count
        of absent tasks in the node's span.
        """
        tree = self._trees[core]
        size = self._num_tasks
        remaining = k + 1
        position = 0
        span = self._top_bit
        while span:
            probe = position + span
            if probe <= size:
                absent = span - tree[probe]
                if absent < remaining:
                    remaining -= absent
                    position = probe
            span >>= 1
        return position
