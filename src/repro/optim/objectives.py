"""Optimization objectives over design points.

The paper compares four design objectives (Table II):

* Exp:1 — minimize register usage ``R``
  (:class:`RegisterUsageObjective`);
* Exp:2 — maximize parallelism, i.e. minimize the multiprocessor
  execution time ``T_M`` (:class:`MakespanObjective`);
* Exp:3 — minimize the product ``T_M * R``
  (:class:`RegisterTimeProductObjective`);
* Exp:4 — the proposed soft error-aware objective: minimize the
  expected SEUs ``Gamma`` (:class:`SEUObjective`).

An :class:`Objective` maps a
:class:`~repro.mapping.metrics.DesignPoint` to a scalar score, lower
is better.  :func:`deadline_penalized` wraps any objective with a
smooth deadline-violation penalty so unconstrained searchers
(simulated annealing) are pulled back into the feasible region.
"""

from __future__ import annotations

from typing import Callable

from repro.mapping.metrics import DesignPoint

#: An objective: design point -> score, lower is better.
Objective = Callable[[DesignPoint], float]


class RegisterUsageObjective:
    """Exp:1 — total register usage ``R`` in bits."""

    name = "register-usage"

    def __call__(self, point: DesignPoint) -> float:
        return float(point.register_bits_total)


class MakespanObjective:
    """Exp:2 — multiprocessor execution time ``T_M`` in seconds."""

    name = "makespan"

    def __call__(self, point: DesignPoint) -> float:
        return point.makespan_s


class RegisterTimeProductObjective:
    """Exp:3 — the joint ``T_M * R`` product (seconds * bits)."""

    name = "tm-x-r"

    def __call__(self, point: DesignPoint) -> float:
        return point.makespan_s * point.register_bits_total


class SEUObjective:
    """Exp:4 — expected SEUs experienced ``Gamma`` (Eq. 3)."""

    name = "seus"

    def __call__(self, point: DesignPoint) -> float:
        return point.expected_seus


class PowerObjective:
    """Dynamic power ``P`` in milliwatts (Eq. 5)."""

    name = "power"

    def __call__(self, point: DesignPoint) -> float:
        return point.power_mw


def deadline_penalized(
    objective: Objective, deadline_s: float, penalty_weight: float = 10.0
) -> Objective:
    """Wrap ``objective`` with a relative deadline-violation penalty.

    Feasible points keep their score; an infeasible point's score is
    scaled by ``1 + penalty_weight * overrun_fraction``, which keeps
    the search gradient pointing back toward feasibility without a
    hard wall (useful for annealing through tight deadlines).
    """
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    if penalty_weight < 0:
        raise ValueError("penalty weight must be non-negative")

    def _penalized(point: DesignPoint) -> float:
        score = objective(point)
        overrun = point.makespan_s - deadline_s
        if overrun <= 0:
            return score
        fraction = overrun / deadline_s
        return abs(score) * (1.0 + penalty_weight * fraction) + penalty_weight * fraction

    return _penalized
