"""``OptimizedMapping`` — the stage-2 local search (Fig. 7).

Starting from the stage-1 mapping, the search repeatedly generates a
neighbouring task movement (step C), list-schedules it (step D) and
keeps it as the best solution when it lowers the expected SEU count
while meeting the real-time constraint (steps E-F), until the search
budget is exhausted (step B).

The paper's budget is wall-clock time (40-130 minutes on a 2 GHz
machine); ours is an iteration count by default, with an optional
wall-clock cap, so runs are fast and deterministic (DESIGN.md §2).

Acceptance policy: the *current* point follows an improving random
walk — a neighbour replaces it when it is feasible and strictly
better, when the current point is itself infeasible and the neighbour
is closer to feasibility, or (with probability ``walk_probability``)
unconditionally, which lets the search traverse plateaus the way
repeated "neighbouring task movements" do in the paper's flowchart.
The *best* point only ever improves.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.mapping.incremental import IncrementalMappingState, resolve_screening
from repro.mapping.mapping import Mapping
from repro.mapping.metrics import DesignPoint, MappingEvaluator, SignatureTracker
from repro.optim.moves import InnerLoopStats, Move, MoveSampler, random_neighbor


@dataclass
class SearchResult:
    """Outcome of one ``OptimizedMapping`` run.

    Attributes
    ----------
    best:
        Best feasible design point found (lowest Gamma under the
        deadline), or the least-infeasible point when nothing met the
        constraint.
    feasible:
        Whether ``best`` meets the real-time constraint.
    iterations:
        Neighbour evaluations performed.
    improvements:
        Times the best point improved.
    history:
        Optional (iteration, Gamma of best) checkpoints.
    screened_moves:
        Neighbours pruned by incremental screening during *this* run
        (0 when screening is off).
    inner_stats:
        Descriptor inner-loop instrumentation (moves drawn, previews,
        screens, materialized mappings, signature rebuilds); zeros for
        the reference and batched loops.
    """

    best: DesignPoint
    feasible: bool
    iterations: int
    improvements: int
    history: List[Tuple[int, float]] = field(default_factory=list)
    screened_moves: int = 0
    inner_stats: InnerLoopStats = field(default_factory=InnerLoopStats)


class OptimizedMappingSearch:
    """Stage-2 search-based mapping optimization (Fig. 7).

    Parameters
    ----------
    evaluator:
        Design-point evaluator (holds graph, platform, SER and power
        models and the deadline).
    max_iterations:
        Search budget in neighbour evaluations.
    time_limit_s:
        Optional wall-clock cap (the paper's notion of budget).
    walk_probability:
        Probability of accepting a non-improving neighbour as the
        current point (plateau traversal).
    intensify_every:
        Pull the current point back to the best-so-far after this many
        iterations without improvement (0 disables).  Keeps the random
        walk from drifting into poor regions late in the search.
    require_all_cores:
        Reject neighbours that leave a core empty (the paper's
        ``InitialSEAMapping`` guarantees every core receives work and
        the worked example preserves that through stage 2).
    seed:
        Seed for the move generator.
    record_history:
        Keep (iteration, best Gamma) checkpoints in the result.
    screen_moves:
        Opt-in incremental move screening: once a feasible best is
        known, neighbours whose certified makespan lower bound
        (:class:`~repro.mapping.incremental.IncrementalMappingState`)
        already exceeds the deadline are skipped without the full
        step-D list scheduling — they can neither become the best
        point nor (except through the rare random-walk draw) the
        current one.  Pruning changes which neighbours a run visits,
        so results can differ from an unscreened run with the same
        seed; the paper artifacts use unscreened search.  ``"auto"``
        screens only on graphs with at least
        :data:`~repro.mapping.incremental.SCREENING_MIN_TASKS` tasks,
        where the preview beats the (cheap) compiled evaluation.
    batch_size:
        Opt-in batched candidate screening: when positive, step-C
        neighbours are drawn ``batch_size`` at a time and step-D
        scheduled in one vectorized ``evaluate_batch`` call, with the
        step-E/F acceptance replayed over the chunk in draw order.
        ``batch_size=1`` is bit-identical to the serial walk; larger
        chunks draw every candidate from the chunk-start point (and
        focus), which changes the visit sequence but stays
        deterministic under a seed.  Mutually exclusive with
        ``screen_moves``; 0 (default) keeps the serial loop.
    """

    def __init__(
        self,
        evaluator: MappingEvaluator,
        max_iterations: int = 2000,
        time_limit_s: Optional[float] = None,
        walk_probability: float = 0.15,
        intensify_every: int = 150,
        require_all_cores: bool = True,
        seed: Optional[int] = None,
        record_history: bool = False,
        screen_moves: object = False,
        batch_size: int = 0,
    ) -> None:
        if evaluator.deadline_s is None:
            raise ValueError("OptimizedMapping needs an evaluator with a deadline")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if not 0.0 <= walk_probability <= 1.0:
            raise ValueError("walk_probability must be in [0, 1]")
        self.evaluator = evaluator
        self.max_iterations = max_iterations
        self.time_limit_s = time_limit_s
        self.walk_probability = walk_probability
        self.intensify_every = intensify_every
        self.require_all_cores = require_all_cores
        self.seed = seed
        self.record_history = record_history
        self.screen_moves = resolve_screening(
            screen_moves, evaluator.graph.num_tasks
        )
        if batch_size < 0:
            raise ValueError("batch_size must be non-negative")
        if batch_size and self.screen_moves:
            raise ValueError(
                "batched candidate evaluation and incremental screening "
                "are mutually exclusive"
            )
        self.batch_size = batch_size
        self.screened_moves = 0  # neighbours pruned without evaluation
        self.inner_stats = InnerLoopStats()  # descriptor-loop counters, per run()

    def run(
        self, initial: Mapping, scaling: Optional[Tuple[int, ...]] = None
    ) -> SearchResult:
        """Optimize from ``initial`` under ``scaling`` (defaults to platform's).

        The inner loop is the allocation-free descriptor walk (see
        :mod:`repro.optim.moves`); :meth:`run_reference` keeps the
        historical Mapping-per-neighbour loop, which this reproduces
        bit for bit (same RNG stream, accepted points, evaluator
        traffic) — asserted by the parity suite.
        """
        if self.batch_size:
            return self._run_batched(initial, scaling)
        return self._run_descriptors(initial, scaling)

    def run_reference(
        self, initial: Mapping, scaling: Optional[Tuple[int, ...]] = None
    ) -> SearchResult:
        """:meth:`run` on the historical Mapping-based inner loop.

        Kept verbatim for parity testing and the inner-loop benchmark
        pair; ``inner_stats`` stays zero on this path.
        """
        if self.batch_size:
            return self._run_batched(initial, scaling)
        return self._run_reference_loop(initial, scaling)

    def _run_descriptors(
        self, initial: Mapping, scaling: Optional[Tuple[int, ...]] = None
    ) -> SearchResult:
        rng = random.Random(self.seed)
        # Per-run stats: a second run() must not inherit the first's.
        self.screened_moves = 0
        stats = InnerLoopStats()
        self.inner_stats = stats
        evaluator = self.evaluator
        deadline = evaluator.deadline_s

        current = evaluator.evaluate(initial, scaling)  # step A: list schedule M
        best = current
        best_feasible = bool(current.meets_deadline)
        compiled = evaluator._sync_compiled()
        num_cores = initial.num_cores
        num_tasks = compiled.num_tasks
        min_used = min(num_cores, num_tasks)
        signature, signature_hash = current.mapping.signature_info(compiled)
        tracker = SignatureTracker(compiled, signature, num_cores, signature_hash)
        sampler = MoveSampler(compiled, signature, num_cores)
        state: Optional[IncrementalMappingState] = None
        if self.screen_moves:
            state = IncrementalMappingState(evaluator, current.mapping, scaling)
        improvements = 0
        history: List[Tuple[int, float]] = []
        focus: Optional[int] = None  # compiled task index
        stale = 0  # iterations since the last best-point improvement

        start_time = time.monotonic()
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            if (
                self.time_limit_s is not None
                and time.monotonic() - start_time >= self.time_limit_s
            ):
                iterations -= 1
                break

            # Step C: neighbouring task movement, as a descriptor.
            descriptor = sampler.draw(rng, focus=focus)
            if descriptor is None:
                continue
            stats.moves_drawn += 1
            if (
                self.require_all_cores
                and sampler.used_cores_after(descriptor) < min_used
            ):
                continue
            if state is not None and best_feasible:
                stats.previews += 1
                if isinstance(descriptor, Move):
                    estimate = state.estimate_move_index(
                        descriptor.task, descriptor.core
                    )
                else:
                    estimate = state.estimate_swap_index(
                        descriptor.task_a, descriptor.task_b
                    )
                if estimate.feasible_possible is False:
                    # Provably over deadline: cannot improve the best.
                    self.screened_moves += 1
                    stats.screened_moves += 1
                    continue
            # Step D: list scheduling of the neighbour.
            if isinstance(descriptor, Move):
                neighbor_signature, neighbor_hash = tracker.preview_move(
                    descriptor.task, descriptor.core
                )
            else:
                neighbor_signature, neighbor_hash = tracker.preview_swap(
                    descriptor.task_a, descriptor.task_b
                )
            misses_before = evaluator.cache_misses
            candidate = evaluator.evaluate_signature(
                neighbor_signature,
                scaling,
                signature_hash=neighbor_hash,
                num_cores=num_cores,
                template=initial,
            )
            if evaluator.cache_misses != misses_before:
                stats.materialized_mappings += 1

            # Step E/F: best-so-far update under the constraint.
            candidate_feasible = candidate.makespan_s <= deadline + 1e-12
            stale += 1
            if candidate_feasible and (
                not best_feasible or candidate.expected_seus < best.expected_seus
            ):
                best = candidate
                best_feasible = True
                improvements += 1
                stale = 0
                if self.record_history:
                    history.append((iterations, best.expected_seus))
            elif not best_feasible and candidate.makespan_s < best.makespan_s:
                # Nothing feasible yet: track the least-infeasible point.
                best = candidate
                improvements += 1
                stale = 0

            # Random-walk acceptance for the current point.
            accept = False
            if candidate_feasible and (
                current.meets_deadline is False
                or candidate.expected_seus <= current.expected_seus
            ):
                accept = True
            elif not candidate_feasible and not current.meets_deadline:
                accept = candidate.makespan_s < current.makespan_s
            if not accept and rng.random() < self.walk_probability:
                accept = True
            if accept:
                # Remember one moved task to bias the next move toward
                # its graph neighbourhood (the first moved task in
                # compiled order — the Mapping walk's moved[0]).
                focus = sampler.first_moved(descriptor)
                tracker.commit(neighbor_signature, neighbor_hash)
                if state is not None:
                    if isinstance(descriptor, Move):
                        state.apply_move_index(descriptor.task, descriptor.core)
                    else:
                        state.apply_swap_index(
                            descriptor.task_a, descriptor.task_b
                        )
                sampler.apply(descriptor)
                current = candidate

            # Intensification: return to the best point after a long
            # improvement drought.
            if self.intensify_every and stale >= self.intensify_every:
                current = best
                focus = None
                stale = 0
                best_signature, _ = best.mapping.signature_info(compiled)
                tracker.rebuild(best_signature)
                sampler.rebuild(best_signature)
                if state is not None:
                    state.rebuild(best.mapping)

        stats.signature_rebuilds += tracker.rebuilds
        return SearchResult(
            best=best,
            feasible=best_feasible,
            iterations=iterations,
            improvements=improvements,
            history=history,
            screened_moves=self.screened_moves,
            inner_stats=stats,
        )

    def _run_reference_loop(
        self, initial: Mapping, scaling: Optional[Tuple[int, ...]] = None
    ) -> SearchResult:
        rng = random.Random(self.seed)
        # Per-run stat: a second run() must not inherit the first's count.
        self.screened_moves = 0
        self.inner_stats = InnerLoopStats()
        evaluator = self.evaluator
        deadline = evaluator.deadline_s
        graph = evaluator.graph

        current = evaluator.evaluate(initial, scaling)  # step A: list schedule M
        best = current
        best_feasible = bool(current.meets_deadline)
        state: Optional[IncrementalMappingState] = None
        if self.screen_moves:
            state = IncrementalMappingState(evaluator, current.mapping, scaling)
        improvements = 0
        history: List[Tuple[int, float]] = []
        focus: Optional[str] = None
        stale = 0  # iterations since the last best-point improvement

        start_time = time.monotonic()
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            if (
                self.time_limit_s is not None
                and time.monotonic() - start_time >= self.time_limit_s
            ):
                iterations -= 1
                break

            # Step C: neighbouring task movement.
            neighbor = random_neighbor(
                current.mapping, graph, rng, focus_task=focus
            )
            if neighbor == current.mapping:
                continue
            if self.require_all_cores and len(neighbor.used_cores()) < min(
                neighbor.num_cores, graph.num_tasks
            ):
                continue
            if (
                state is not None
                and best_feasible
                and state.estimate_mapping(neighbor).feasible_possible is False
            ):
                # Provably over deadline: cannot improve the best point.
                self.screened_moves += 1
                continue
            # Step D: list scheduling of the neighbour.
            candidate = evaluator.evaluate(neighbor, scaling)

            # Step E/F: best-so-far update under the constraint.
            candidate_feasible = candidate.makespan_s <= deadline + 1e-12
            stale += 1
            if candidate_feasible and (
                not best_feasible or candidate.expected_seus < best.expected_seus
            ):
                best = candidate
                best_feasible = True
                improvements += 1
                stale = 0
                if self.record_history:
                    history.append((iterations, best.expected_seus))
            elif not best_feasible and candidate.makespan_s < best.makespan_s:
                # Nothing feasible yet: track the least-infeasible point.
                best = candidate
                improvements += 1
                stale = 0

            # Random-walk acceptance for the current point.
            accept = False
            if candidate_feasible and (
                current.meets_deadline is False
                or candidate.expected_seus <= current.expected_seus
            ):
                accept = True
            elif not candidate_feasible and not current.meets_deadline:
                accept = candidate.makespan_s < current.makespan_s
            if not accept and rng.random() < self.walk_probability:
                accept = True
            if accept:
                # Remember one moved task to bias the next move toward
                # its graph neighbourhood.
                moved = [
                    name
                    for name in graph.task_names()
                    if neighbor.core_of(name) != current.mapping.core_of(name)
                ]
                focus = moved[0] if moved else None
                if state is not None:
                    state.apply_mapping(neighbor)
                current = candidate

            # Intensification: return to the best point after a long
            # improvement drought.
            if self.intensify_every and stale >= self.intensify_every:
                current = best
                focus = None
                stale = 0
                if state is not None:
                    state.rebuild(best.mapping)

        return SearchResult(
            best=best,
            feasible=best_feasible,
            iterations=iterations,
            improvements=improvements,
            history=history,
            screened_moves=self.screened_moves,
        )

    def _run_batched(
        self, initial: Mapping, scaling: Optional[Tuple[int, ...]] = None
    ) -> SearchResult:
        """The batched candidate-screening variant of :meth:`run`.

        Step-C neighbours are drawn ``batch_size`` at a time from the
        chunk-start current point and step-D scheduled through one
        vectorized ``evaluate_batch`` call; the step-E/F bookkeeping
        and random-walk acceptance then replay over the chunk in draw
        order.  ``batch_size=1`` reproduces the serial walk
        bit-for-bit (asserted by the parity suite).
        """
        rng = random.Random(self.seed)
        self.screened_moves = 0
        self.inner_stats = InnerLoopStats()
        evaluator = self.evaluator
        deadline = evaluator.deadline_s
        graph = evaluator.graph

        current = evaluator.evaluate(initial, scaling)  # step A
        best = current
        best_feasible = bool(current.meets_deadline)
        improvements = 0
        history: List[Tuple[int, float]] = []
        focus: Optional[str] = None
        stale = 0

        start_time = time.monotonic()
        iterations = 0
        while iterations < self.max_iterations:
            if (
                self.time_limit_s is not None
                and time.monotonic() - start_time >= self.time_limit_s
            ):
                break
            draw = min(self.batch_size, self.max_iterations - iterations)
            chunk: List[Optional[Mapping]] = []
            for _ in range(draw):
                neighbor = random_neighbor(
                    current.mapping, graph, rng, focus_task=focus
                )
                if neighbor == current.mapping:
                    chunk.append(None)
                elif self.require_all_cores and len(neighbor.used_cores()) < min(
                    neighbor.num_cores, graph.num_tasks
                ):
                    chunk.append(None)
                else:
                    chunk.append(neighbor)
            evaluated = iter(
                evaluator.evaluate_batch(
                    [mapping for mapping in chunk if mapping is not None],
                    scaling,
                )
            )
            for neighbor in chunk:
                iterations += 1
                if neighbor is None:
                    continue
                candidate = next(evaluated)

                # Step E/F: best-so-far update under the constraint.
                candidate_feasible = candidate.makespan_s <= deadline + 1e-12
                stale += 1
                if candidate_feasible and (
                    not best_feasible
                    or candidate.expected_seus < best.expected_seus
                ):
                    best = candidate
                    best_feasible = True
                    improvements += 1
                    stale = 0
                    if self.record_history:
                        history.append((iterations, best.expected_seus))
                elif not best_feasible and candidate.makespan_s < best.makespan_s:
                    best = candidate
                    improvements += 1
                    stale = 0

                # Random-walk acceptance for the current point.
                accept = False
                if candidate_feasible and (
                    current.meets_deadline is False
                    or candidate.expected_seus <= current.expected_seus
                ):
                    accept = True
                elif not candidate_feasible and not current.meets_deadline:
                    accept = candidate.makespan_s < current.makespan_s
                if not accept and rng.random() < self.walk_probability:
                    accept = True
                if accept:
                    moved = [
                        name
                        for name in graph.task_names()
                        if neighbor.core_of(name) != current.mapping.core_of(name)
                    ]
                    focus = moved[0] if moved else None
                    current = candidate

                if self.intensify_every and stale >= self.intensify_every:
                    current = best
                    focus = None
                    stale = 0

        return SearchResult(
            best=best,
            feasible=best_feasible,
            iterations=iterations,
            improvements=improvements,
            history=history,
            screened_moves=0,
        )
