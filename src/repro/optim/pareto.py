"""Power/reliability Pareto-front exploration.

The paper's step 3 collapses the power/SEU trade-off to a scalar rule
(minimum power, SEU tie-break within a band).  A natural extension —
and a useful design tool — is to expose the whole Pareto front: every
(P, Gamma) point such that no other feasible design is at least as
good on both axes and strictly better on one.

:func:`pareto_front` filters any collection of design points;
:func:`explore_pareto` runs the proposed mapping stage across the full
scaling enumeration and returns the feasible front, which contains the
paper's chosen design by construction.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.arch.mpsoc import MPSoC
from repro.faults.ser import SERModel
from repro.mapping.metrics import DesignPoint, MappingEvaluator
from repro.optim.design_optimizer import Mapper, sea_mapper
from repro.optim.scaling_algorithm import platform_scaling_combinations
from repro.taskgraph.graph import TaskGraph

#: Axis extractor: design point -> objective value (lower is better).
Axis = Callable[[DesignPoint], float]


def _default_axes() -> Tuple[Axis, Axis]:
    return (lambda point: point.power_mw, lambda point: point.expected_seus)


def dominates(
    a: DesignPoint, b: DesignPoint, axes: Optional[Sequence[Axis]] = None
) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (<= on all axes, < on one)."""
    axes = axes or _default_axes()
    at_least_as_good = all(axis(a) <= axis(b) + 1e-15 for axis in axes)
    strictly_better = any(axis(a) < axis(b) - 1e-15 for axis in axes)
    return at_least_as_good and strictly_better


def pareto_front(
    points: Sequence[DesignPoint], axes: Optional[Sequence[Axis]] = None
) -> List[DesignPoint]:
    """The non-dominated subset of ``points``, sorted by the first axis.

    Duplicate coordinates are collapsed to a single representative.
    """
    axes = axes or _default_axes()
    front: List[DesignPoint] = []
    seen_coordinates = set()
    for candidate in points:
        if any(dominates(other, candidate, axes) for other in points):
            continue
        coordinates = tuple(round(axis(candidate), 12) for axis in axes)
        if coordinates in seen_coordinates:
            continue
        seen_coordinates.add(coordinates)
        front.append(candidate)
    front.sort(key=lambda point: tuple(axis(point) for axis in axes))
    return front


def explore_pareto(
    graph: TaskGraph,
    platform: MPSoC,
    deadline_s: float,
    mapper: Optional[Mapper] = None,
    ser_model: Optional[SERModel] = None,
    seed: int = 0,
    axes: Optional[Sequence[Axis]] = None,
) -> List[DesignPoint]:
    """Feasible power/SEU Pareto front over the full scaling enumeration.

    Runs the mapping stage (the proposed soft error-aware mapper by
    default) for *every* scaling combination — no early exit, since
    expensive scalings can still be SEU-optimal — and returns the
    non-dominated feasible designs.

    Parameters
    ----------
    graph / platform / deadline_s:
        The design problem.
    mapper:
        Mapping strategy per scaling (default: proposed two-stage).
    ser_model:
        Reliability model (paper default when omitted).
    seed:
        Determinism seed.
    axes:
        Objectives; defaults to (power mW, expected SEUs).
    """
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    mapper = mapper or sea_mapper()
    evaluator = MappingEvaluator(
        graph, platform, ser_model=ser_model, deadline_s=deadline_s
    )
    feasible: List[DesignPoint] = []
    for index, scaling in enumerate(platform_scaling_combinations(platform)):
        point = mapper(evaluator, scaling, seed + index)
        if point.makespan_s <= deadline_s + 1e-12:
            feasible.append(point)
    return pareto_front(feasible, axes)


def hypervolume_2d(
    front: Sequence[DesignPoint],
    reference: Tuple[float, float],
    axes: Optional[Sequence[Axis]] = None,
) -> float:
    """Dominated hypervolume of a 2-D front w.r.t. ``reference``.

    A standard scalar quality measure for comparing fronts (used by
    the ablation benchmarks).  ``reference`` must be dominated by every
    front point; points beyond it contribute nothing.
    """
    axes = axes or _default_axes()
    if len(axes) != 2:
        raise ValueError("hypervolume_2d needs exactly two axes")
    ordered = sorted(
        (
            (axes[0](point), axes[1](point))
            for point in front
            if axes[0](point) <= reference[0] and axes[1](point) <= reference[1]
        ),
    )
    volume = 0.0
    previous_y = reference[1]
    for x, y in ordered:
        if y < previous_y:
            volume += (reference[0] - x) * (previous_y - y)
            previous_y = y
    return volume
