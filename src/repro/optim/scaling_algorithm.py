"""The ``nextScaling`` voltage-scaling enumerator (Fig. 5 of the paper).

Because the MPSoC cores are identical, only the *multiset* of per-core
scaling coefficients matters; the enumerator therefore visits exactly
the non-increasing coefficient vectors, walking from the deepest
scaling (all cores at the slowest level — lowest power) toward the
nominal one (all cores at level 1).  For four cores and three levels
this yields the 15 unique combinations of Fig. 5(b), against 3^4 = 81
raw assignments.

The successor rule equivalent to the paper's pseudocode on
non-increasing states: find the rightmost core whose coefficient is
above 1, decrement it, and reset every core to its right to the new
value.  Starting from ``(L, .., L)`` this produces the non-increasing
vectors in descending lexicographic order and terminates at
``(1, .., 1)`` — exactly the Fig. 5(b) sequence, which the unit tests
check row by row.
"""

from __future__ import annotations

from itertools import product
from math import comb
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


def next_scaling(prev: Sequence[int], num_levels: Optional[int] = None) -> Optional[Tuple[int, ...]]:
    """The successor of ``prev`` in the Fig. 5(b) order, or ``None`` at the end.

    Parameters
    ----------
    prev:
        Current non-increasing coefficient vector (1-based levels).
    num_levels:
        Number of scaling levels ``L``; defaults to ``max(prev)``.
        Used only for validation.

    Raises
    ------
    ValueError
        If ``prev`` is not a valid non-increasing coefficient vector.
    """
    state = tuple(prev)
    if not state:
        raise ValueError("scaling vector must be non-empty")
    levels = num_levels if num_levels is not None else max(state)
    for value in state:
        if not isinstance(value, int) or not 1 <= value <= levels:
            raise ValueError(
                f"coefficient {value!r} outside valid range 1..{levels}"
            )
    for left, right in zip(state, state[1:]):
        if right > left:
            raise ValueError(
                f"scaling vector must be non-increasing, got {state}"
            )
    # Rightmost coefficient above the nominal level.
    for index in range(len(state) - 1, -1, -1):
        if state[index] > 1:
            new_value = state[index] - 1
            return state[:index] + (new_value,) * (len(state) - index)
    return None  # all cores at nominal: enumeration complete


def scaling_combinations(num_cores: int, num_levels: int) -> Iterator[Tuple[int, ...]]:
    """Yield every combination in the paper's order (deepest first).

    The first vector is ``(L, .., L)`` — lowest power — and the last
    is ``(1, .., 1)``; the walk matches Fig. 5(b) exactly for
    ``num_cores=4, num_levels=3``.
    """
    if num_cores <= 0 or num_levels <= 0:
        raise ValueError("num_cores and num_levels must be positive")
    state: Optional[Tuple[int, ...]] = (num_levels,) * num_cores
    while state is not None:
        yield state
        state = next_scaling(state, num_levels)


def num_scaling_combinations(num_cores: int, num_levels: int) -> int:
    """Count of unique combinations: multisets of size C from L levels.

    ``C(C + L - 1, L - 1)`` — 15 for four cores and three levels, as
    the paper states.
    """
    if num_cores <= 0 or num_levels <= 0:
        raise ValueError("num_cores and num_levels must be positive")
    return comb(num_cores + num_levels - 1, num_levels - 1)


def all_scalings_list(num_cores: int, num_levels: int) -> List[Tuple[int, ...]]:
    """Materialized :func:`scaling_combinations` (convenience)."""
    return list(scaling_combinations(num_cores, num_levels))


def platform_scaling_combinations(platform) -> Iterator[Tuple[int, ...]]:
    """Unique scaling vectors of an :class:`~repro.arch.mpsoc.MPSoC`.

    Single-type platforms delegate verbatim to
    :func:`scaling_combinations` — the paper's Fig. 5(b) walk, bit for
    bit.  On heterogeneous platforms cores of the *same type* remain
    interchangeable (identical tables), so only the per-type multiset
    matters: the enumeration is the cartesian product over type groups
    of each group's own Fig. 5(b) walk, mapped back onto the core
    slots.  Deterministic order: groups sorted by type index, each
    group deepest-first, first group outermost.
    """
    if not platform.is_heterogeneous:
        yield from scaling_combinations(
            platform.num_cores, platform.scaling_table.num_levels
        )
        return
    groups: Dict[int, List[int]] = {}
    for core, type_index in enumerate(platform.type_of_core):
        groups.setdefault(type_index, []).append(core)
    ordered = sorted(groups.items())
    per_group = [
        all_scalings_list(
            len(cores), platform.core_types[type_index].scaling_table.num_levels
        )
        for type_index, cores in ordered
    ]
    for combo in product(*per_group):
        vector = [0] * platform.num_cores
        for (_, cores), assignment in zip(ordered, combo):
            for core, coefficient in zip(cores, assignment):
                vector[core] = coefficient
        yield tuple(vector)


def num_platform_scaling_combinations(platform) -> int:
    """Count of :func:`platform_scaling_combinations` vectors."""
    if not platform.is_heterogeneous:
        return num_scaling_combinations(
            platform.num_cores, platform.scaling_table.num_levels
        )
    counts: Dict[int, int] = {}
    for type_index in platform.type_of_core:
        counts[type_index] = counts.get(type_index, 0) + 1
    total = 1
    for type_index, num_cores in sorted(counts.items()):
        total *= num_scaling_combinations(
            num_cores, platform.core_types[type_index].scaling_table.num_levels
        )
    return total
