"""Scheduling substrate: list scheduling of mapped task graphs.

The paper schedules mapped tasks with list scheduling (Section IV-B,
following Izosimov et al. [8]).  :class:`~repro.sched.list_scheduler.
ListScheduler` produces a :class:`~repro.sched.schedule.Schedule` whose
makespan is the multiprocessor execution time ``T_M`` and whose
per-core busy times are the ``T_i`` of Eq. (7).

Timing model (DESIGN.md §5): a task's occupancy on its core is its
computation cycles plus the communication cycles of every *cross-core*
incoming edge (the receive), all executed at the core's scaled clock.
Same-core edges cost nothing.
"""

from repro.sched.schedule import (
    Schedule,
    ScheduledTask,
    from_arrays_validation_enabled,
    set_from_arrays_validation,
)
from repro.sched.list_scheduler import ListScheduler
from repro.sched.batched import (
    BatchedListScheduler,
    BatchScheduleResult,
    numpy_available,
)

__all__ = [
    "BatchedListScheduler",
    "BatchScheduleResult",
    "ListScheduler",
    "Schedule",
    "ScheduledTask",
    "from_arrays_validation_enabled",
    "numpy_available",
    "set_from_arrays_validation",
]
