"""Vectorized batch list scheduling: B mappings in one numpy shot.

The key structural fact this module exploits: the list scheduler's pop
order is **mapping-independent**.  The ready heap is keyed on
``(-bottom_level, name)`` and readiness only tracks how many
predecessors have been scheduled — neither depends on where tasks are
mapped or on any start/finish time.  Every mapping of one graph is
therefore scheduled in the *same* task order, and that order can be
computed once per compiled graph.

:class:`BatchedListScheduler` turns that into a stacked-array
schedule: per-batch-row ``core_free``/``finish`` state evolves through
one pass over the static order, with every timing update vectorized
across the batch dimension (numpy, float64).  The per-step arithmetic
replays :meth:`~repro.sched.list_scheduler.ListScheduler.schedule`'s
float operations exactly —

* ``earliest`` is a chain of IEEE-754 ``max`` operations (exact and
  order-insensitive),
* receive cycles are int64 sums (exact below 2**53, far above any
  realistic cycle budget),
* ``duration = (compute + receive) / frequency`` and ``finish =
  earliest + duration`` are single float64 operations identical to the
  scalar path,

so the produced makespans, per-core busy sums and (when materialized)
:class:`~repro.sched.schedule.Schedule` objects are **bit-identical**
to scheduling each mapping through the serial compiled path.  Per-core
busy seconds accumulate in scheduling order, which within any single
core coincides with the canonical ``(start, core, name)`` order the
serial ``Schedule`` sums in (starts are non-decreasing per core and a
start tie forces a zero-length span, whose addition is a float
identity), so even those float accumulations agree bitwise.

Both communication models are supported.  ``"dedicated"`` vectorizes
whole predecessor slices per step; ``"shared-bus"`` additionally walks
the step's edges in insertion order (the bus serialization is
order-sensitive) with the per-edge update still vectorized across the
batch.

numpy is an optional dependency: :func:`numpy_available` reports
whether the fast path can run, and callers (see
:meth:`~repro.mapping.metrics.MappingEvaluator.evaluate_batch`) fall
back to the per-mapping loop when it cannot.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.mapping.mapping import Mapping
from repro.sched.schedule import Schedule
from repro.taskgraph.graph import TaskGraph

try:  # gated: the container image may lack numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via numpy_available()
    _np = None


def numpy_available() -> bool:
    """Whether the vectorized batch path can run in this interpreter."""
    return _np is not None


class BatchScheduleResult:
    """Stacked schedules of ``B`` mappings over one graph.

    Arrays are indexed ``[row, task_id]`` (task ids are the compiled
    graph's dense indices) or ``[row, core]``:

    * ``starts`` / ``finishes`` — execution windows in seconds;
    * ``receive`` — cross-core receive cycles charged per task (int64,
      zero under the shared-bus model where transfers occupy the bus);
    * ``makespans`` — per-row ``T_M`` in seconds;
    * ``busy_s`` / ``busy_cycles`` — per-row per-core busy sums, the
      ``T_i`` substrate, accumulated in scheduling order;
    * ``cores`` — the core assignment rows the batch was run with.

    ``order`` is the static pop order shared by every row.  Full
    :class:`Schedule` objects are *not* built here; call
    :meth:`schedule` for the rows that need one.
    """

    __slots__ = (
        "order",
        "names",
        "cycles",
        "cores",
        "starts",
        "finishes",
        "receive",
        "makespans",
        "busy_s",
        "busy_cycles",
        "num_cores",
        "frequencies_hz",
        "core_cycles",
    )

    def __init__(
        self,
        order,
        names,
        cycles,
        cores,
        starts,
        finishes,
        receive,
        makespans,
        busy_s,
        busy_cycles,
        num_cores,
        frequencies_hz,
        core_cycles=None,
    ) -> None:
        self.order = order
        self.names = names
        self.cycles = cycles
        self.cores = cores
        self.starts = starts
        self.finishes = finishes
        self.receive = receive
        self.makespans = makespans
        self.busy_s = busy_s
        self.busy_cycles = busy_cycles
        self.num_cores = num_cores
        self.frequencies_hz = frequencies_hz
        # Per-core cycle rows for heterogeneous platforms; None keeps
        # the homogeneous (base-cycle) materialization path.
        self.core_cycles = core_cycles

    def __len__(self) -> int:
        return len(self.makespans)

    # -- per-row views (plain Python values, hot-path friendly) -----------

    def makespan_s(self, row: int) -> float:
        """``T_M`` of one batch row in seconds."""
        return float(self.makespans[row])

    def makespan_cycles(
        self, row: int, reference_frequency_hz: Optional[float] = None
    ) -> int:
        """``T_M`` in cycles of a reference clock (fastest core default)."""
        frequency = reference_frequency_hz or max(self.frequencies_hz)
        return int(round(self.makespan_s(row) * frequency))

    def busy_cycles_of(self, row: int) -> Tuple[int, ...]:
        """Per-core busy cycles (``T_i`` of Eq. 7) of one row."""
        return tuple(int(value) for value in self.busy_cycles[row])

    def activities(self, row: int) -> Tuple[float, ...]:
        """Per-core activity factors, matching ``Schedule.activities``."""
        makespan = self.makespan_s(row)
        if makespan <= 0.0:
            return (0.0,) * self.num_cores
        return tuple(
            min(float(busy) / makespan, 1.0) for busy in self.busy_s[row]
        )

    def schedule(self, row: int) -> Schedule:
        """Materialize one row as a full :class:`Schedule`.

        Rows are handed to :meth:`Schedule.from_arrays` in pop order —
        the same input order the serial scheduler produces — so the
        resulting object is bit-identical to the serial path's,
        including canonical-sort tie resolution.
        """
        order = self.order
        cores_row = self.cores[row]
        starts_row = self.starts[row]
        finishes_row = self.finishes[row]
        receive_row = self.receive[row]
        names = self.names
        core_cycles = self.core_cycles
        if core_cycles is None:
            cycles = self.cycles
            compute = [cycles[t] for t in order]
        else:
            compute = [core_cycles[int(cores_row[t])][t] for t in order]
        return Schedule.from_arrays(
            [names[t] for t in order],
            [int(cores_row[t]) for t in order],
            [float(starts_row[t]) for t in order],
            [float(finishes_row[t]) for t in order],
            compute,
            [int(receive_row[t]) for t in order],
            self.num_cores,
            self.frequencies_hz,
        )


class BatchedListScheduler:
    """List-schedules a whole batch of mappings over one graph.

    Construction mirrors :class:`~repro.sched.list_scheduler.
    ListScheduler` (same validation, same comm models); the instance
    additionally compiles the static pop order and per-step
    predecessor slices into numpy arrays, shared by every
    :meth:`run` call.

    Raises
    ------
    RuntimeError
        If numpy is not importable; gate call sites on
        :func:`numpy_available`.
    """

    _COMM_MODELS = ("dedicated", "shared-bus")

    def __init__(
        self,
        graph: TaskGraph,
        frequencies_hz: Sequence[float],
        comm_model: str = "dedicated",
        bus_frequency_hz: Optional[float] = None,
        cycle_scales: Optional[Sequence[float]] = None,
    ) -> None:
        if _np is None:
            raise RuntimeError(
                "BatchedListScheduler needs numpy; gate on numpy_available()"
            )
        graph.validate()
        if not frequencies_hz:
            raise ValueError("need at least one core frequency")
        for frequency in frequencies_hz:
            if frequency <= 0:
                raise ValueError(f"frequencies must be positive, got {frequency}")
        if comm_model not in self._COMM_MODELS:
            raise ValueError(
                f"unknown comm model {comm_model!r}; choose from {self._COMM_MODELS}"
            )
        if bus_frequency_hz is not None and bus_frequency_hz <= 0:
            raise ValueError("bus frequency must be positive")
        self._graph = graph
        self._compiled = graph.compiled()
        self._frequencies = tuple(float(f) for f in frequencies_hz)
        if cycle_scales is not None:
            scales = tuple(float(scale) for scale in cycle_scales)
            if len(scales) != len(self._frequencies):
                raise ValueError(
                    f"cycle_scales has {len(scales)} entries for "
                    f"{len(self._frequencies)} cores"
                )
            for scale in scales:
                if scale <= 0.0:
                    raise ValueError(f"cycle scales must be positive, got {scale}")
            # All-unit scales collapse to the homogeneous seed path.
            cycle_scales = None if all(s == 1.0 for s in scales) else scales
        self._cycle_scales: Optional[Sequence[float]] = cycle_scales
        self.comm_model = comm_model
        self._bus_frequency = bus_frequency_hz or max(self._frequencies)
        self._compile_plan()

    # -- static plan -------------------------------------------------------

    def _compile_plan(self) -> None:
        """Pop order + per-step predecessor arrays (mapping-independent)."""
        compiled = self._compiled
        n = compiled.num_tasks
        pred_ptr = compiled.pred_ptr
        succ_ptr = compiled.succ_ptr
        succ_idx = compiled.succ_idx
        names = compiled.names
        priorities = compiled.bottom_levels

        in_degree = [pred_ptr[i + 1] - pred_ptr[i] for i in range(n)]
        ready = [
            (-priorities[i], names[i], i) for i in compiled.entry_indices
        ]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            _, _, i = heapq.heappop(ready)
            order.append(i)
            for e in range(succ_ptr[i], succ_ptr[i + 1]):
                successor = succ_idx[e]
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    heapq.heappush(
                        ready, (-priorities[successor], names[successor], successor)
                    )
        if len(order) != n:
            raise ValueError("scheduling incomplete: graph contains a cycle")
        self._order: Tuple[int, ...] = tuple(order)
        # Per-step predecessor id / comm-cycle arrays, in edge order.
        pred_idx = compiled.pred_idx
        pred_comm = compiled.pred_comm
        self._step_preds = []
        self._step_comm = []
        for i in order:
            begin, end = pred_ptr[i], pred_ptr[i + 1]
            if end > begin:
                self._step_preds.append(_np.array(pred_idx[begin:end], dtype=_np.intp))
                self._step_comm.append(
                    _np.array(pred_comm[begin:end], dtype=_np.int64)
                )
            else:
                self._step_preds.append(None)
                self._step_comm.append(None)
        self._freq_array = _np.array(self._frequencies, dtype=_np.float64)
        self._cycles_array = _np.array(compiled.cycles, dtype=_np.int64)
        # Heterogeneous platforms: a (num_cores, T) cycle matrix so the
        # timing pass can gather per-(core, task) compute costs; None
        # keeps the homogeneous python-int path bit for bit.
        if self._cycle_scales is None:
            self._core_cycles_rows = None
            self._core_cycles_array = None
        else:
            self._core_cycles_rows = compiled.cycles_for_cores(self._cycle_scales)
            self._core_cycles_array = _np.array(
                self._core_cycles_rows, dtype=_np.int64
            )

    @property
    def num_cores(self) -> int:
        """Number of cores the scheduler targets."""
        return len(self._frequencies)

    @property
    def frequencies_hz(self) -> Tuple[float, ...]:
        """Per-core clock frequencies."""
        return self._frequencies

    @property
    def order(self) -> Tuple[int, ...]:
        """The static scheduling order (dense task ids, pop order)."""
        return self._order

    def _sync_compiled(self) -> None:
        compiled = self._graph.compiled()
        if compiled is not self._compiled:
            self._compiled = compiled
            self._compile_plan()

    # -- batch scheduling --------------------------------------------------

    def run(self, core_rows: Sequence[Sequence[int]]) -> BatchScheduleResult:
        """Schedule every row of ``core_rows`` in one vectorized pass.

        ``core_rows[b][t]`` is the core of task ``t`` (compiled dense
        index) in batch row ``b`` — exactly the evaluator's canonical
        mapping signature.  Returns the stacked
        :class:`BatchScheduleResult`; ``B == 0`` yields an empty
        result.
        """
        self._sync_compiled()
        compiled = self._compiled
        n = compiled.num_tasks
        num_cores = self.num_cores
        batch = len(core_rows)
        cores = _np.asarray(core_rows, dtype=_np.int64)
        if cores.size == 0:
            cores = cores.reshape(batch, n if batch == 0 else -1)
        if cores.ndim != 2 or (batch and cores.shape[1] != n):
            raise ValueError(
                f"core rows must each assign all {n} tasks, got shape "
                f"{cores.shape}"
            )
        if batch and (cores.min() < 0 or cores.max() >= num_cores):
            raise ValueError(
                f"core indices must lie in 0..{num_cores - 1}"
            )

        starts = _np.zeros((batch, n), dtype=_np.float64)
        finishes = _np.zeros((batch, n), dtype=_np.float64)
        receive = _np.zeros((batch, n), dtype=_np.int64)
        busy_s = _np.zeros((batch, num_cores), dtype=_np.float64)
        if batch:
            self._run_steps(cores, starts, finishes, receive, busy_s)
            # Integer busy sums are order-insensitive (exact below
            # 2**53), so they vectorize outside the timing loop.
            if self._core_cycles_array is None:
                occupancy = self._cycles_array + receive
            else:
                occupancy = (
                    self._core_cycles_array[cores, _np.arange(n)] + receive
                )
            busy_cycles = _np.stack(
                [
                    _np.where(cores == core, occupancy, 0).sum(axis=1)
                    for core in range(num_cores)
                ],
                axis=1,
            )
        else:
            busy_cycles = _np.zeros((batch, num_cores), dtype=_np.int64)
        makespans = (
            finishes.max(axis=1) if n and batch else _np.zeros(batch)
        )
        return BatchScheduleResult(
            order=self._order,
            names=compiled.names,
            cycles=compiled.cycles,
            core_cycles=self._core_cycles_rows,
            cores=cores,
            starts=starts,
            finishes=finishes,
            receive=receive,
            makespans=makespans,
            busy_s=busy_s,
            busy_cycles=busy_cycles,
            num_cores=num_cores,
            frequencies_hz=self._frequencies,
        )

    def _run_steps(self, cores, starts, finishes, receive, busy_s) -> None:
        """The sequential-over-tasks, vectorized-over-batch timing pass."""
        np = _np
        compiled = self._compiled
        cycles = compiled.cycles
        core_cycles_arr = self._core_cycles_array
        freq = self._freq_array
        batch = cores.shape[0]
        rows = np.arange(batch)
        core_free = np.zeros((batch, self.num_cores), dtype=np.float64)
        dedicated = self.comm_model == "dedicated"
        bus_free = None if dedicated else np.zeros(batch, dtype=np.float64)
        bus_frequency = self._bus_frequency

        for step, task in enumerate(self._order):
            core = cores[:, task]
            earliest = core_free[rows, core]  # fancy indexing copies
            preds = self._step_preds[step]
            if core_cycles_arr is None:
                busy = cycles[task]
            else:
                # Per-(core, task) compute cost: gather the assigned
                # core's cycle row across the batch.
                busy = core_cycles_arr[core, task]
            if preds is not None and dedicated and len(preds) == 1:
                # Single-predecessor fast path: basic-slice views, no
                # axis reductions (most tasks in chain-heavy graphs).
                producer = preds[0]
                np.maximum(earliest, finishes[:, producer], out=earliest)
                cross = cores[:, producer] != core
                recv = cross * int(self._step_comm[step][0])
                receive[:, task] = recv
                busy = busy + recv
            elif preds is not None:
                pred_finish = finishes[:, preds]
                np.maximum(earliest, pred_finish.max(axis=1), out=earliest)
                if dedicated:
                    cross = cores[:, preds] != core[:, None]
                    recv = (cross * self._step_comm[step]).sum(axis=1)
                    receive[:, task] = recv
                    busy = busy + recv
                else:
                    # Shared bus: edges serialize in insertion order;
                    # per-edge update vectorized across the batch.
                    comm = self._step_comm[step]
                    for e in range(len(preds)):
                        producer_finish = pred_finish[:, e]
                        cross = cores[:, preds[e]] != core
                        transfer_start = np.maximum(bus_free, producer_finish)
                        transfer_finish = transfer_start + (
                            int(comm[e]) / bus_frequency
                        )
                        bus_free = np.where(cross, transfer_finish, bus_free)
                        np.maximum(
                            earliest,
                            np.where(cross, transfer_finish, earliest),
                            out=earliest,
                        )
            duration = busy / freq[core]
            finish = earliest + duration
            core_free[rows, core] = finish
            finishes[:, task] = finish
            starts[:, task] = earliest
            # Float busy sums accumulate in scheduling order — per core
            # this is the canonical order the serial Schedule sums in.
            busy_s[rows, core] += finish - earliest

    # -- convenience -------------------------------------------------------

    def run_mappings(self, mappings: Sequence[Mapping]) -> BatchScheduleResult:
        """Validate and schedule a batch of :class:`Mapping` objects."""
        compiled = self._graph.compiled()
        rows = []
        for mapping in mappings:
            if mapping.num_cores != self.num_cores:
                raise ValueError(
                    f"mapping targets {mapping.num_cores} cores, scheduler has "
                    f"{self.num_cores}"
                )
            rows.append(mapping.core_index_list(compiled.names))
        return self.run(rows)

    def schedules(self, mappings: Sequence[Mapping]) -> List[Schedule]:
        """Full :class:`Schedule` objects for a batch of mappings."""
        result = self.run_mappings(mappings)
        return [result.schedule(row) for row in range(len(result))]
