"""List scheduler for mapped task graphs.

Implements the list scheduling used in step A/D of the paper's
``OptimizedMapping`` (Fig. 7, following Izosimov et al. [8]):

1. Compute a static priority for every task — the *bottom level*
   (longest computation+communication path to an exit task).
2. Repeatedly pick the ready task (all predecessors scheduled) with
   the highest priority and place it on its mapped core at the
   earliest feasible time.

Timing model
------------
Cores run at per-core scaled frequencies.  Two communication models
are supported:

* ``"dedicated"`` (default, the paper's platform) — a task ``j``
  mapped on core ``i`` occupies the core for

      (t_j + sum of d_kj over cross-core incoming edges) / f_i  seconds

  i.e. the receive of each cross-core dependency executes on the
  consumer's clock, matching Eq. (7)'s accounting of dependency time
  in ``T_i``.
* ``"shared-bus"`` — cross-core transfers serialize on one global
  bus (clocked at the fastest core frequency by default).  Transfers
  occupy the bus, not the consumer core, so contention stretches the
  makespan of communication-heavy spread mappings — an architecture-
  exploration variant beyond the paper.

Same-core dependencies cost nothing in either model.  A task may start
once its core is free and every predecessor (and, on the bus model,
every incoming transfer) has finished.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from repro.arch.mpsoc import MPSoC
from repro.mapping.mapping import Mapping
from repro.sched.schedule import Schedule, ScheduledTask
from repro.taskgraph.graph import TaskGraph


class ListScheduler:
    """Bottom-level list scheduler.

    Parameters
    ----------
    graph:
        The application task graph.
    frequencies_hz:
        Per-core clock frequencies.  Usually obtained from an
        :class:`~repro.arch.mpsoc.MPSoC` via :meth:`for_platform`.
    """

    _COMM_MODELS = ("dedicated", "shared-bus")

    def __init__(
        self,
        graph: TaskGraph,
        frequencies_hz: Sequence[float],
        comm_model: str = "dedicated",
        bus_frequency_hz: Optional[float] = None,
    ) -> None:
        graph.validate()
        if not frequencies_hz:
            raise ValueError("need at least one core frequency")
        for frequency in frequencies_hz:
            if frequency <= 0:
                raise ValueError(f"frequencies must be positive, got {frequency}")
        if comm_model not in self._COMM_MODELS:
            raise ValueError(
                f"unknown comm model {comm_model!r}; choose from {self._COMM_MODELS}"
            )
        self._graph = graph
        self._frequencies = tuple(float(f) for f in frequencies_hz)
        self._priorities = graph.bottom_levels()
        self.comm_model = comm_model
        if bus_frequency_hz is not None and bus_frequency_hz <= 0:
            raise ValueError("bus frequency must be positive")
        self._bus_frequency = bus_frequency_hz or max(self._frequencies)

    @classmethod
    def for_platform(
        cls,
        graph: TaskGraph,
        platform: MPSoC,
        scaling: Optional[Sequence[int]] = None,
    ) -> "ListScheduler":
        """Build a scheduler from a platform and optional scaling vector."""
        if scaling is None:
            scaling = platform.scaling_vector()
        table = platform.scaling_table
        frequencies = [table.frequency_hz(coefficient) for coefficient in scaling]
        return cls(graph, frequencies)

    @property
    def num_cores(self) -> int:
        """Number of cores the scheduler targets."""
        return len(self._frequencies)

    @property
    def frequencies_hz(self) -> Sequence[float]:
        """Per-core clock frequencies."""
        return self._frequencies

    def schedule(self, mapping: Mapping) -> Schedule:
        """Schedule ``mapping`` and return the resulting timeline.

        Raises
        ------
        ValueError
            If the mapping does not cover the graph or targets a
            different number of cores.
        """
        mapping.validate_against(self._graph)
        if mapping.num_cores != self.num_cores:
            raise ValueError(
                f"mapping targets {mapping.num_cores} cores, scheduler has "
                f"{self.num_cores}"
            )

        graph = self._graph
        in_degree: Dict[str, int] = {
            name: len(graph.predecessors(name)) for name in graph.task_names()
        }
        # Max-heap on priority; tie-break on name for determinism.
        ready: List = [
            (-self._priorities[name], name)
            for name, degree in in_degree.items()
            if degree == 0
        ]
        heapq.heapify(ready)

        core_free_at = [0.0] * self.num_cores
        bus_free_at = 0.0
        finish_at: Dict[str, float] = {}
        entries: List[ScheduledTask] = []

        scheduled_count = 0
        while ready:
            _, name = heapq.heappop(ready)
            core = mapping.core_of(name)
            frequency = self._frequencies[core]
            task = graph.task(name)

            receive_cycles = 0
            earliest = core_free_at[core]
            for producer in graph.predecessors(name):
                earliest = max(earliest, finish_at[producer])
                if mapping.core_of(producer) != core:
                    comm = graph.comm_cycles(producer, name)
                    if self.comm_model == "dedicated":
                        receive_cycles += comm
                    else:  # shared-bus: the transfer serializes on the bus
                        transfer_start = max(bus_free_at, finish_at[producer])
                        transfer_finish = transfer_start + comm / self._bus_frequency
                        bus_free_at = transfer_finish
                        earliest = max(earliest, transfer_finish)

            duration = (task.cycles + receive_cycles) / frequency
            start = earliest
            finish = start + duration
            core_free_at[core] = finish
            finish_at[name] = finish
            entries.append(
                ScheduledTask(
                    name=name,
                    core=core,
                    start_s=start,
                    finish_s=finish,
                    compute_cycles=task.cycles,
                    receive_cycles=receive_cycles,
                )
            )
            scheduled_count += 1

            for successor in graph.successors(name):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    heapq.heappush(ready, (-self._priorities[successor], successor))

        if scheduled_count != graph.num_tasks:
            raise ValueError("scheduling incomplete: graph contains a cycle")
        return Schedule(entries, self.num_cores, self._frequencies)

    def makespan_s(self, mapping: Mapping) -> float:
        """Convenience: the makespan of ``mapping`` in seconds."""
        return self.schedule(mapping).makespan_s()
