"""List scheduler for mapped task graphs.

Implements the list scheduling used in step A/D of the paper's
``OptimizedMapping`` (Fig. 7, following Izosimov et al. [8]):

1. Compute a static priority for every task — the *bottom level*
   (longest computation+communication path to an exit task).
2. Repeatedly pick the ready task (all predecessors scheduled) with
   the highest priority and place it on its mapped core at the
   earliest feasible time.

Timing model
------------
Cores run at per-core scaled frequencies.  Two communication models
are supported:

* ``"dedicated"`` (default, the paper's platform) — a task ``j``
  mapped on core ``i`` occupies the core for

      (t_j + sum of d_kj over cross-core incoming edges) / f_i  seconds

  i.e. the receive of each cross-core dependency executes on the
  consumer's clock, matching Eq. (7)'s accounting of dependency time
  in ``T_i``.
* ``"shared-bus"`` — cross-core transfers serialize on one global
  bus (clocked at the fastest core frequency by default).  Transfers
  occupy the bus, not the consumer core, so contention stretches the
  makespan of communication-heavy spread mappings — an architecture-
  exploration variant beyond the paper.

Same-core dependencies cost nothing in either model.  A task may start
once its core is free and every predecessor (and, on the bus model,
every incoming transfer) has finished.

Implementation
--------------
:meth:`ListScheduler.schedule` runs on the graph's
:class:`~repro.taskgraph.compiled.CompiledTaskGraph` — integer task
ids, CSR adjacency and preallocated per-core arrays — which is several
times faster than the original dict-and-string walk while producing a
bit-for-bit identical :class:`~repro.sched.schedule.Schedule` (the
heap keys, float operations and predecessor iteration order are
preserved exactly).  The original implementation is kept as
:meth:`ListScheduler.schedule_reference` and the parity suite asserts
equality on randomized inputs.

The pop order is mapping-independent (the ready heap is keyed on
``(-bottom_level, name)`` and readiness only counts scheduled
predecessors), which is what lets
:class:`~repro.sched.batched.BatchedListScheduler` schedule a whole
batch of mappings through one static order in a single numpy pass —
bit-identical to calling :meth:`ListScheduler.schedule` per mapping.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from repro.arch.mpsoc import MPSoC
from repro.mapping.mapping import Mapping
from repro.sched.schedule import Schedule, ScheduledTask
from repro.taskgraph.graph import TaskGraph


class ListScheduler:
    """Bottom-level list scheduler.

    Parameters
    ----------
    graph:
        The application task graph.
    frequencies_hz:
        Per-core clock frequencies.  Usually obtained from an
        :class:`~repro.arch.mpsoc.MPSoC` via :meth:`for_platform`.
    cycle_scales:
        Optional per-core cycle-scale factors for heterogeneous
        platforms: a task of ``c`` base cycles costs
        ``max(1, round(c * scale))`` compute cycles on that core.
        ``None`` (or all ones) keeps every core on the base cycle
        tuple — the seed path.  Priorities stay base-cycle-derived
        either way, so the pop order remains mapping-independent.
    """

    _COMM_MODELS = ("dedicated", "shared-bus")

    def __init__(
        self,
        graph: TaskGraph,
        frequencies_hz: Sequence[float],
        comm_model: str = "dedicated",
        bus_frequency_hz: Optional[float] = None,
        cycle_scales: Optional[Sequence[float]] = None,
    ) -> None:
        graph.validate()
        if not frequencies_hz:
            raise ValueError("need at least one core frequency")
        for frequency in frequencies_hz:
            if frequency <= 0:
                raise ValueError(f"frequencies must be positive, got {frequency}")
        if comm_model not in self._COMM_MODELS:
            raise ValueError(
                f"unknown comm model {comm_model!r}; choose from {self._COMM_MODELS}"
            )
        self._graph = graph
        self._compiled = graph.compiled()
        self._frequencies = tuple(float(f) for f in frequencies_hz)
        if cycle_scales is not None:
            scales = tuple(float(scale) for scale in cycle_scales)
            if len(scales) != len(self._frequencies):
                raise ValueError(
                    f"cycle_scales has {len(scales)} entries for "
                    f"{len(self._frequencies)} cores"
                )
            for scale in scales:
                if scale <= 0.0:
                    raise ValueError(f"cycle scales must be positive, got {scale}")
            # All-unit scales collapse to the homogeneous seed path.
            cycle_scales = None if all(s == 1.0 for s in scales) else scales
        self._cycle_scales: Optional[Sequence[float]] = cycle_scales
        self.comm_model = comm_model
        if bus_frequency_hz is not None and bus_frequency_hz <= 0:
            raise ValueError("bus frequency must be positive")
        self._bus_frequency = bus_frequency_hz or max(self._frequencies)
        self._build_templates()

    def _build_templates(self) -> None:
        """Per-call templates: copied (not rebuilt) on every schedule()."""
        compiled = self._compiled
        self._base_in_degree = [
            compiled.pred_ptr[i + 1] - compiled.pred_ptr[i]
            for i in range(compiled.num_tasks)
        ]
        initial_ready = [
            (-compiled.bottom_levels[i], compiled.names[i], i)
            for i in compiled.entry_indices
        ]
        heapq.heapify(initial_ready)
        self._initial_ready = initial_ready
        # Per-core cycle rows.  Homogeneous platforms point every core
        # at the base tuple *object*, so the ints fetched in the hot
        # loop are exactly the seed path's.
        if self._cycle_scales is None:
            self._core_cycles = (compiled.cycles,) * len(self._frequencies)
        else:
            self._core_cycles = compiled.cycles_for_cores(self._cycle_scales)

    @classmethod
    def for_platform(
        cls,
        graph: TaskGraph,
        platform: MPSoC,
        scaling: Optional[Sequence[int]] = None,
        comm_model: str = "dedicated",
        bus_frequency_hz: Optional[float] = None,
    ) -> "ListScheduler":
        """Build a scheduler from a platform and optional scaling vector.

        ``comm_model`` and ``bus_frequency_hz`` are forwarded to the
        constructor, so the shared-bus variant is reachable from the
        platform-level API too.
        """
        if scaling is None:
            scaling = platform.scaling_vector()
        tables = platform.core_tables
        frequencies = [
            table.frequency_hz(coefficient)
            for table, coefficient in zip(tables, scaling)
        ]
        cycle_scales = (
            None if platform.uniform_unit_cycles else platform.cycle_scales()
        )
        return cls(
            graph,
            frequencies,
            comm_model=comm_model,
            bus_frequency_hz=bus_frequency_hz,
            cycle_scales=cycle_scales,
        )

    @property
    def num_cores(self) -> int:
        """Number of cores the scheduler targets."""
        return len(self._frequencies)

    @property
    def frequencies_hz(self) -> Sequence[float]:
        """Per-core clock frequencies."""
        return self._frequencies

    def schedule(self, mapping: Mapping) -> Schedule:
        """Schedule ``mapping`` and return the resulting timeline.

        Raises
        ------
        ValueError
            If the mapping does not cover the graph or targets a
            different number of cores.
        """
        compiled = self._graph.compiled()
        if compiled is not self._compiled:
            # The graph mutated since construction; renew the arrays so
            # we never schedule against stale adjacency (the reference
            # path reads the graph live and stays in step).
            self._compiled = compiled
            self._build_templates()
        names = compiled.names
        cores = mapping.core_index_list(names)  # validates coverage
        if mapping.num_cores != self.num_cores:
            raise ValueError(
                f"mapping targets {mapping.num_cores} cores, scheduler has "
                f"{self.num_cores}"
            )

        n = compiled.num_tasks
        core_cycles = self._core_cycles
        pred_ptr = compiled.pred_ptr
        pred_idx = compiled.pred_idx
        pred_comm = compiled.pred_comm
        succ_ptr = compiled.succ_ptr
        succ_idx = compiled.succ_idx
        priorities = compiled.bottom_levels
        frequencies = self._frequencies
        dedicated = self.comm_model == "dedicated"
        bus_frequency = self._bus_frequency

        in_degree = self._base_in_degree.copy()
        # Max-heap on priority; tie-break on name for determinism (the
        # integer id rides along as the payload).  A copy of a heap is
        # a heap, so the template needs no re-heapify.
        ready = self._initial_ready.copy()
        heappush = heapq.heappush
        heappop = heapq.heappop

        core_free_at = [0.0] * self.num_cores
        bus_free_at = 0.0
        finish_at = [0.0] * n
        entry_names: List[str] = []
        entry_cores: List[int] = []
        entry_starts: List[float] = []
        entry_finishes: List[float] = []
        entry_compute: List[int] = []
        entry_receive: List[int] = []

        scheduled_count = 0
        while ready:
            _, name, i = heappop(ready)
            core = cores[i]
            frequency = frequencies[core]

            receive_cycles = 0
            earliest = core_free_at[core]
            for e in range(pred_ptr[i], pred_ptr[i + 1]):
                producer = pred_idx[e]
                producer_finish = finish_at[producer]
                if producer_finish > earliest:
                    earliest = producer_finish
                if cores[producer] != core:
                    comm = pred_comm[e]
                    if dedicated:
                        receive_cycles += comm
                    else:  # shared-bus: the transfer serializes on the bus
                        transfer_start = (
                            bus_free_at
                            if bus_free_at > producer_finish
                            else producer_finish
                        )
                        transfer_finish = transfer_start + comm / bus_frequency
                        bus_free_at = transfer_finish
                        if transfer_finish > earliest:
                            earliest = transfer_finish
            compute = core_cycles[core][i]
            duration = (compute + receive_cycles) / frequency
            finish = earliest + duration
            core_free_at[core] = finish
            finish_at[i] = finish
            entry_names.append(name)
            entry_cores.append(core)
            entry_starts.append(earliest)
            entry_finishes.append(finish)
            entry_compute.append(compute)
            entry_receive.append(receive_cycles)
            scheduled_count += 1

            for e in range(succ_ptr[i], succ_ptr[i + 1]):
                successor = succ_idx[e]
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    heappush(
                        ready, (-priorities[successor], names[successor], successor)
                    )

        if scheduled_count != n:
            raise ValueError("scheduling incomplete: graph contains a cycle")
        return Schedule.from_arrays(
            entry_names,
            entry_cores,
            entry_starts,
            entry_finishes,
            entry_compute,
            entry_receive,
            self.num_cores,
            self._frequencies,
        )

    def schedule_reference(self, mapping: Mapping) -> Schedule:
        """The original (seed) dict-and-string implementation.

        Kept verbatim as the behavioural reference: the parity test
        suite asserts :meth:`schedule` reproduces it bit-for-bit over
        randomized graphs, mappings and both comm models.  Prefer
        :meth:`schedule` everywhere else — it is several times faster.
        """
        mapping.validate_against(self._graph)
        if mapping.num_cores != self.num_cores:
            raise ValueError(
                f"mapping targets {mapping.num_cores} cores, scheduler has "
                f"{self.num_cores}"
            )

        graph = self._graph
        priorities = graph.bottom_levels()
        in_degree: Dict[str, int] = {
            name: len(graph.predecessors(name)) for name in graph.task_names()
        }
        # Max-heap on priority; tie-break on name for determinism.
        ready: List = [
            (-priorities[name], name)
            for name, degree in in_degree.items()
            if degree == 0
        ]
        heapq.heapify(ready)

        core_free_at = [0.0] * self.num_cores
        bus_free_at = 0.0
        finish_at: Dict[str, float] = {}
        entries: List[ScheduledTask] = []

        scheduled_count = 0
        while ready:
            _, name = heapq.heappop(ready)
            core = mapping.core_of(name)
            frequency = self._frequencies[core]
            task = graph.task(name)

            receive_cycles = 0
            earliest = core_free_at[core]
            for producer in graph.predecessors(name):
                earliest = max(earliest, finish_at[producer])
                if mapping.core_of(producer) != core:
                    comm = graph.comm_cycles(producer, name)
                    if self.comm_model == "dedicated":
                        receive_cycles += comm
                    else:  # shared-bus: the transfer serializes on the bus
                        transfer_start = max(bus_free_at, finish_at[producer])
                        transfer_finish = transfer_start + comm / self._bus_frequency
                        bus_free_at = transfer_finish
                        earliest = max(earliest, transfer_finish)

            compute = task.cycles
            if self._cycle_scales is not None:
                scale = self._cycle_scales[core]
                if scale != 1.0:
                    compute = max(1, round(task.cycles * scale))
            duration = (compute + receive_cycles) / frequency
            start = earliest
            finish = start + duration
            core_free_at[core] = finish
            finish_at[name] = finish
            entries.append(
                ScheduledTask(
                    name=name,
                    core=core,
                    start_s=start,
                    finish_s=finish,
                    compute_cycles=compute,
                    receive_cycles=receive_cycles,
                )
            )
            scheduled_count += 1

            for successor in graph.successors(name):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    heapq.heappush(ready, (-priorities[successor], successor))

        if scheduled_count != graph.num_tasks:
            raise ValueError("scheduling incomplete: graph contains a cycle")
        return Schedule(entries, self.num_cores, self._frequencies)

    def makespan_s(self, mapping: Mapping) -> float:
        """Convenience: the makespan of ``mapping`` in seconds."""
        return self.schedule(mapping).makespan_s()
