"""Schedule data structure.

A :class:`Schedule` is the output of list scheduling: one
:class:`ScheduledTask` per task with start/finish times in seconds and
the cycle counts that produced them.  It answers the timing questions
the metrics and optimizers ask — makespan (``T_M``), per-core busy time
(``T_i``), activity factors (``alpha_i``) — and can verify its own
consistency (precedence respected, no per-core overlap).

Internally the timeline is stored as parallel arrays (names, cores,
starts, finishes, cycle counts) in canonical ``(start, core, name)``
order; the :class:`ScheduledTask` objects are materialized lazily the
first time entries are iterated.  The aggregate queries the evaluation
hot path hammers — makespan, per-core busy sums, activity factors —
are answered from the arrays in a single cached pass, so a
:class:`~repro.mapping.metrics.MappingEvaluator` never pays for entry
objects it does not look at.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.mapping.mapping import Mapping
from repro.taskgraph.graph import TaskGraph

#: Debug-mode row validation for :meth:`Schedule.from_arrays`.  The
#: compiled list scheduler's rows are trusted by construction, but
#: schedules now also cross process boundaries (restart and experiment
#: fan-out jobs) and other producers may appear; flipping this on makes
#: ``from_arrays`` run the same duplicate/core-range/array-shape checks
#: the entry-based constructor performs.  Seed it from the environment
#: (``REPRO_VALIDATE_SCHEDULES=1``) so whole test runs can opt in
#: without code changes.
_VALIDATE_FROM_ARRAYS = os.environ.get(
    "REPRO_VALIDATE_SCHEDULES", ""
).strip().lower() in ("1", "true", "yes", "on")


def set_from_arrays_validation(enabled: bool) -> bool:
    """Toggle debug validation of :meth:`Schedule.from_arrays` rows.

    Returns the previous setting so callers (tests, debug sessions)
    can restore it.

    Per-process only: process-pool workers import this module afresh
    and never see the parent's toggle.  To vet producers that build
    schedules *inside* workers (restart or experiment fan-out jobs on
    the process backend), set ``REPRO_VALIDATE_SCHEDULES=1`` in the
    environment instead — workers inherit the environment, so the
    flag arms validation everywhere.
    """
    global _VALIDATE_FROM_ARRAYS
    previous = _VALIDATE_FROM_ARRAYS
    _VALIDATE_FROM_ARRAYS = bool(enabled)
    return previous


def from_arrays_validation_enabled() -> bool:
    """Whether :meth:`Schedule.from_arrays` currently validates rows."""
    return _VALIDATE_FROM_ARRAYS


@dataclass(frozen=True)
class ScheduledTask:
    """One task instance placed on the timeline.

    Attributes
    ----------
    name:
        Task name.
    core:
        Core index the task runs on.
    start_s / finish_s:
        Execution window in seconds.
    compute_cycles:
        The task's own computation cycles.
    receive_cycles:
        Cross-core communication cycles charged to this task (the
        receives of its cross-core incoming edges, Eq. 7).
    """

    name: str
    core: int
    start_s: float
    finish_s: float
    compute_cycles: int
    receive_cycles: int

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.finish_s < self.start_s:
            raise ValueError(
                f"invalid window [{self.start_s}, {self.finish_s}] for {self.name!r}"
            )
        if self.compute_cycles <= 0 or self.receive_cycles < 0:
            raise ValueError(f"invalid cycle counts for task {self.name!r}")

    @property
    def duration_s(self) -> float:
        """Occupancy duration in seconds."""
        return self.finish_s - self.start_s

    @property
    def busy_cycles(self) -> int:
        """Total core cycles this task occupies (compute + receive)."""
        return self.compute_cycles + self.receive_cycles


class Schedule:
    """A complete schedule of a mapped task graph.

    Parameters
    ----------
    entries:
        One :class:`ScheduledTask` per task.
    num_cores:
        Number of cores in the platform (idle cores are allowed).
    frequencies_hz:
        Per-core clock frequencies used to build the schedule; kept so
        cycle/second conversions stay consistent downstream.
    """

    __slots__ = (
        "_names",
        "_cores",
        "_starts",
        "_finishes",
        "_compute",
        "_receive",
        "_num_cores",
        "_frequencies_hz",
        "_position",
        "_entries_cache",
        "_makespan_cache",
        "_busy_s_cache",
        "_busy_cycles_cache",
    )

    def __init__(
        self,
        entries: Sequence[ScheduledTask],
        num_cores: int,
        frequencies_hz: Sequence[float],
    ) -> None:
        ordered = sorted(
            entries, key=lambda entry: (entry.start_s, entry.core, entry.name)
        )
        self._init_from_arrays(
            [entry.name for entry in ordered],
            [entry.core for entry in ordered],
            [entry.start_s for entry in ordered],
            [entry.finish_s for entry in ordered],
            [entry.compute_cycles for entry in ordered],
            [entry.receive_cycles for entry in ordered],
            num_cores,
            frequencies_hz,
        )
        self._entries_cache = tuple(ordered)

    @classmethod
    def from_arrays(
        cls,
        names: Sequence[str],
        cores: Sequence[int],
        starts: Sequence[float],
        finishes: Sequence[float],
        compute_cycles: Sequence[int],
        receive_cycles: Sequence[int],
        num_cores: int,
        frequencies_hz: Sequence[float],
    ) -> "Schedule":
        """Build a schedule straight from parallel arrays.

        The fast-path constructor used by the compiled list scheduler:
        no :class:`ScheduledTask` objects are created until somebody
        iterates the schedule.  Rows may arrive in any order; they are
        put into canonical ``(start, core, name)`` order here.

        Rows are trusted by default (they come from the scheduler's own
        state); :func:`set_from_arrays_validation` — or
        ``REPRO_VALIDATE_SCHEDULES=1`` in the environment — turns on
        the entry-constructor's duplicate/core-range checks plus an
        array-shape check for debugging new producers.
        """
        validate = _VALIDATE_FROM_ARRAYS
        if validate:
            lengths = {
                len(names),
                len(cores),
                len(starts),
                len(finishes),
                len(compute_cycles),
                len(receive_cycles),
            }
            if len(lengths) != 1:
                raise ValueError(
                    f"parallel schedule arrays disagree on length: {sorted(lengths)}"
                )
        order = sorted(
            range(len(names)), key=lambda i: (starts[i], cores[i], names[i])
        )
        schedule = cls.__new__(cls)
        schedule._init_from_arrays(
            [names[i] for i in order],
            [cores[i] for i in order],
            [starts[i] for i in order],
            [finishes[i] for i in order],
            [compute_cycles[i] for i in order],
            [receive_cycles[i] for i in order],
            num_cores,
            frequencies_hz,
            validate=validate,
        )
        schedule._entries_cache = None
        return schedule

    def _init_from_arrays(
        self,
        names: List[str],
        cores: List[int],
        starts: List[float],
        finishes: List[float],
        compute_cycles: List[int],
        receive_cycles: List[int],
        num_cores: int,
        frequencies_hz: Sequence[float],
        validate: bool = True,
    ) -> None:
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if len(frequencies_hz) != num_cores:
            raise ValueError(
                f"{len(frequencies_hz)} frequencies for {num_cores} cores"
            )
        position: Optional[Dict[str, int]] = None
        if validate:
            position = {}
            for index, name in enumerate(names):
                if name in position:
                    raise ValueError(f"task {name!r} scheduled twice")
                if not 0 <= cores[index] < num_cores:
                    raise ValueError(f"task {name!r} on invalid core {cores[index]}")
                position[name] = index
        self._names = names
        self._cores = cores
        self._starts = starts
        self._finishes = finishes
        self._compute = compute_cycles
        self._receive = receive_cycles
        self._num_cores = num_cores
        self._frequencies_hz = tuple(float(f) for f in frequencies_hz)
        self._position = position
        self._makespan_cache: Optional[float] = None
        self._busy_s_cache: Optional[List[float]] = None
        self._busy_cycles_cache: Optional[List[int]] = None

    def _positions(self) -> Dict[str, int]:
        position = self._position
        if position is None:
            position = {name: index for index, name in enumerate(self._names)}
            self._position = position
        return position

    # -- entry materialization ----------------------------------------------

    @property
    def _entries(self) -> Tuple[ScheduledTask, ...]:
        cached = self._entries_cache
        if cached is None:
            cached = tuple(self._materialize(i) for i in range(len(self._names)))
            self._entries_cache = cached
        return cached

    def _materialize(self, index: int) -> ScheduledTask:
        return ScheduledTask(
            name=self._names[index],
            core=self._cores[index],
            start_s=self._starts[index],
            finish_s=self._finishes[index],
            compute_cycles=self._compute[index],
            receive_cycles=self._receive[index],
        )

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self._entries)

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._positions()

    # -- queries ----------------------------------------------------------

    @property
    def num_cores(self) -> int:
        """Number of cores."""
        return self._num_cores

    @property
    def frequencies_hz(self) -> Tuple[float, ...]:
        """Per-core clock frequencies used for this schedule."""
        return self._frequencies_hz

    def entry(self, task_name: str) -> ScheduledTask:
        """The scheduled instance of ``task_name``."""
        try:
            index = self._positions()[task_name]
        except KeyError:
            raise KeyError(f"task {task_name!r} not in schedule") from None
        if self._entries_cache is not None:
            return self._entries_cache[index]
        return self._materialize(index)

    def core_entries(self, core_index: int) -> Tuple[ScheduledTask, ...]:
        """Entries on ``core_index``, ordered by start time."""
        return tuple(
            entry for entry in self._entries if entry.core == core_index
        )

    def makespan_s(self) -> float:
        """The multiprocessor execution time ``T_M`` in seconds."""
        cached = self._makespan_cache
        if cached is None:
            cached = max(self._finishes) if self._finishes else 0.0
            self._makespan_cache = cached
        return cached

    def makespan_cycles(self, reference_frequency_hz: Optional[float] = None) -> int:
        """``T_M`` expressed in cycles of a reference clock.

        Defaults to the fastest core clock in the schedule.
        """
        frequency = reference_frequency_hz or max(self._frequencies_hz)
        return int(round(self.makespan_s() * frequency))

    def _busy_sums(self) -> Tuple[List[float], List[int]]:
        busy_s = self._busy_s_cache
        busy_cycles = self._busy_cycles_cache
        if busy_s is None or busy_cycles is None:
            busy_s = [0.0] * self._num_cores
            busy_cycles = [0] * self._num_cores
            cores = self._cores
            starts = self._starts
            finishes = self._finishes
            compute = self._compute
            receive = self._receive
            for index in range(len(cores)):
                core = cores[index]
                busy_s[core] += finishes[index] - starts[index]
                busy_cycles[core] += compute[index] + receive[index]
            self._busy_s_cache = busy_s
            self._busy_cycles_cache = busy_cycles
        return busy_s, busy_cycles

    def busy_s(self, core_index: int) -> float:
        """Total busy seconds of ``core_index`` (``T_i`` in wall time)."""
        return self._busy_sums()[0][core_index]

    def busy_cycles(self, core_index: int) -> int:
        """Total busy cycles of ``core_index`` (``T_i`` of Eq. 7)."""
        return self._busy_sums()[1][core_index]

    def activity(self, core_index: int) -> float:
        """Activity factor ``alpha_i = busy_i / T_M`` (0 for empty span)."""
        makespan = self.makespan_s()
        if makespan <= 0.0:
            return 0.0
        return min(self.busy_s(core_index) / makespan, 1.0)

    def activities(self) -> Tuple[float, ...]:
        """Per-core activity factors."""
        makespan = self.makespan_s()
        if makespan <= 0.0:
            return (0.0,) * self._num_cores
        busy_s, _ = self._busy_sums()
        return tuple(
            min(busy / makespan, 1.0) for busy in busy_s
        )

    # -- verification --------------------------------------------------------

    def verify(self, graph: TaskGraph, mapping: Mapping) -> None:
        """Raise ``ValueError`` on any inconsistency.

        Checks: every graph task scheduled exactly once on its mapped
        core; no two tasks overlap on a core; every edge's consumer
        starts at or after its producer finishes.
        """
        graph_tasks = set(graph.task_names())
        scheduled = set(self._positions())
        if graph_tasks != scheduled:
            raise ValueError(
                f"schedule covers {sorted(scheduled)} but graph has "
                f"{sorted(graph_tasks)}"
            )
        for entry in self._entries:
            if mapping.core_of(entry.name) != entry.core:
                raise ValueError(
                    f"task {entry.name!r} scheduled on core {entry.core} but "
                    f"mapped to core {mapping.core_of(entry.name)}"
                )
        tolerance = 1e-9
        for core in range(self._num_cores):
            entries = self.core_entries(core)
            for previous, current in zip(entries, entries[1:]):
                if current.start_s < previous.finish_s - tolerance:
                    raise ValueError(
                        f"tasks {previous.name!r} and {current.name!r} overlap "
                        f"on core {core}"
                    )
        for producer, consumer, _ in graph.edges():
            if self.entry(consumer).start_s < self.entry(producer).finish_s - tolerance:
                raise ValueError(
                    f"edge {producer!r} -> {consumer!r} violated: consumer "
                    f"starts before producer finishes"
                )

    # -- reporting --------------------------------------------------------

    def to_rows(self) -> List[Tuple[str, int, float, float, int, int]]:
        """Tabular export: (task, core, start_s, finish_s, compute, receive).

        Rows are ordered by start time — handy for CSV dumps and for
        driving external Gantt tooling.
        """
        return [
            (
                self._names[i],
                self._cores[i],
                self._starts[i],
                self._finishes[i],
                self._compute[i],
                self._receive[i],
            )
            for i in range(len(self._names))
        ]

    def gantt_text(self, width: int = 72) -> str:
        """A plain-text Gantt chart, one line per core."""
        makespan = self.makespan_s()
        if makespan <= 0.0:
            return "(empty schedule)"
        lines: List[str] = []
        for core in range(self._num_cores):
            cells = ["."] * width
            for entry in self.core_entries(core):
                begin = int(entry.start_s / makespan * (width - 1))
                end = max(int(entry.finish_s / makespan * (width - 1)), begin + 1)
                marker = entry.name[-1] if entry.name else "#"
                for position in range(begin, min(end, width)):
                    cells[position] = marker
            lines.append(f"core{core} |{''.join(cells)}|")
        lines.append(f"T_M = {makespan * 1e3:.3f} ms")
        return "\n".join(lines)
