"""Optimization-as-a-service: the async HTTP job layer over the store.

The service is deliberately thin — every piece of orchestration,
validation, dedup and status logic lives in :mod:`repro.api` (the one
sanctioned programmatic surface); this package only adds the
long-running parts:

- :mod:`repro.service.jobs` — a bounded job queue and worker pool
  feeding one shared :class:`~repro.exec.dag.DagExecutor` through
  ``executor_scope``, with in-flight dedup and cooperative cancel.
- :mod:`repro.service.http` — a stdlib ``ThreadingHTTPServer`` front
  end (no new dependencies, mirroring the numpy-optional policy).
- :mod:`repro.service.client` — a stdlib ``urllib`` client used by
  the examples, the CI service leg and the tests.

See ARCHITECTURE.md §"Service layer" for the dedup contract and the
tenancy model.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.http import RunServiceServer, make_server, serve
from repro.service.jobs import JobManager, QueueFullError, ServiceConfig

__all__ = [
    "JobManager",
    "QueueFullError",
    "RunServiceServer",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "make_server",
    "serve",
]
