"""A stdlib ``urllib`` client for the run service.

Used by the examples, the CI service leg and the tests; kept
dependency-free like everything else in the service.  Errors raised by
the server arrive as :class:`ServiceClientError` carrying the parsed
structured body (``code``/``message``/``field``), so callers branch on
``error.code`` exactly as in-process facade callers branch on
:class:`~repro.api.ApiError` subclasses.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Mapping, Optional

_TERMINAL_STATES = frozenset({"complete", "failed", "cancelled"})


class ServiceClientError(RuntimeError):
    """An HTTP error response, with the server's structured error body."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        field: Optional[str] = None,
    ) -> None:
        detail = f" (field: {field})" if field else ""
        super().__init__(f"HTTP {status} [{code}]: {message}{detail}")
        self.status = status
        self.code = code
        self.message = message
        self.field = field


class ServiceClient:
    """Talk to a :class:`~repro.service.http.RunServiceServer`."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
        query: Optional[Mapping[str, str]] = None,
    ) -> bytes:
        url = self.base_url + path
        if query:
            url += "?" + urllib.parse.urlencode(query)
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            raise self._structured_error(exc.code, body) from None

    @staticmethod
    def _structured_error(status: int, body: bytes) -> ServiceClientError:
        try:
            error = json.loads(body.decode("utf-8"))["error"]
            return ServiceClientError(
                status,
                code=str(error["code"]),
                message=str(error["message"]),
                field=error.get("field"),
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return ServiceClientError(
                status, code="http-error", message=body.decode("utf-8", "replace")
            )

    def _json(self, *args: Any, **kwargs: Any) -> Dict[str, Any]:
        return json.loads(self._request(*args, **kwargs).decode("utf-8"))

    # -- the API ------------------------------------------------------------

    def submit(
        self,
        payload: Mapping[str, Any],
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """POST a run submission; returns the submission document."""
        document = dict(payload)
        if tenant is not None:
            document["tenant"] = tenant
        return self._json("POST", "/v1/runs", payload=document)

    def submit_experiment(
        self,
        experiment: str,
        profile: str = "fast",
        tenant: Optional[str] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        return self.submit(
            {"experiment": experiment, "profile": profile, **extra},
            tenant=tenant,
        )

    def status(self, run_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/runs/{urllib.parse.quote(run_id)}")

    def runs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        query = {"tenant": tenant} if tenant else None
        return list(self._json("GET", "/v1/runs", query=query)["runs"])

    def report(self, run_id: str) -> str:
        raw = self._request(
            "GET", f"/v1/runs/{urllib.parse.quote(run_id)}/report"
        )
        return raw.decode("utf-8")

    def cancel(self, run_id: str) -> Dict[str, Any]:
        return self._json("DELETE", f"/v1/runs/{urllib.parse.quote(run_id)}")

    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/health")

    def wait(
        self,
        run_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the run reaches a terminal state; return its status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(run_id)
            if status.get("state") in _TERMINAL_STATES:
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"run {run_id} still {status.get('state')!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll_interval)
