"""A stdlib ``urllib`` client for the run service.

Used by the examples, the CI service leg and the tests; kept
dependency-free like everything else in the service.  Errors raised by
the server arrive as :class:`ServiceClientError` carrying the parsed
structured body (``code``/``message``/``retryable``/``field``), so
callers branch on ``error.code`` exactly as in-process facade callers
branch on :class:`~repro.api.ApiError` subclasses.

Resilience: every request runs under the client's
:class:`~repro.exec.resilience.RetryPolicy` — connection errors,
timeouts and 5xx responses are retried with capped exponential backoff
(a 503's ``Retry-After`` header overrides the computed delay), while
4xx responses propagate immediately: they describe *this* request and
re-sending it unchanged cannot succeed.  Re-sending a submission on a
5xx is safe because ``POST /v1/runs`` is idempotent by construction —
the run id is a fingerprint of the spec, and a duplicate submission
joins or cache-hits the first.  ``wait()`` polls with deterministic
seeded jitter so a fleet of clients does not thundering-herd the
server in lockstep.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.parse
import urllib.request
from http.client import HTTPException
from typing import Any, Dict, List, Mapping, Optional

from repro.exec.resilience import RetryPolicy

_TERMINAL_STATES = frozenset({"complete", "failed", "cancelled"})

#: Connection-level failures worth retrying: the request may never have
#: reached the server (or died under it), and a healthy listener can
#: appear at any moment (e.g. mid-restart of ``repro-seu serve``).
_CONNECTION_ERRORS = (urllib.error.URLError, HTTPException, ConnectionError, OSError)

#: The client's default request policy: a few quick attempts, capped
#: well under typical request timeouts.
DEFAULT_CLIENT_RETRY = RetryPolicy(
    max_attempts=4, base_delay_s=0.2, max_delay_s=5.0
)


class ServiceClientError(RuntimeError):
    """An HTTP error response, with the server's structured error body."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        field: Optional[str] = None,
        retryable: Optional[bool] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        detail = f" (field: {field})" if field else ""
        super().__init__(f"HTTP {status} [{code}]: {message}{detail}")
        self.status = status
        self.code = code
        self.message = message
        self.field = field
        # The server's own verdict when the body carries one; status
        # class otherwise (5xx: server-side, maybe transient).
        self.retryable = (
            bool(retryable) if retryable is not None else status >= 500
        )
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Talk to a :class:`~repro.service.http.RunServiceServer`."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = DEFAULT_CLIENT_RETRY if retry is None else retry

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
        query: Optional[Mapping[str, str]] = None,
    ) -> bytes:
        url = self.base_url + path
        if query:
            url += "?" + urllib.parse.urlencode(query)
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempt = 0
        while True:
            request = urllib.request.Request(
                url, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as resp:
                    return resp.read()
            except urllib.error.HTTPError as exc:
                body = exc.read()
                error = self._structured_error(
                    exc.code, body, exc.headers.get("Retry-After")
                )
                if not error.retryable:
                    raise error from None
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    raise error from None
                delay = self.retry.delay_s(attempt, key=f"{method}:{path}")
                if error.retry_after_s is not None:
                    delay = error.retry_after_s
                time.sleep(delay)
            except _CONNECTION_ERRORS:
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    raise
                time.sleep(self.retry.delay_s(attempt, key=f"{method}:{path}"))

    @staticmethod
    def _structured_error(
        status: int, body: bytes, retry_after: Optional[str] = None
    ) -> ServiceClientError:
        retry_after_s: Optional[float] = None
        if retry_after is not None:
            try:
                retry_after_s = float(retry_after)
            except ValueError:
                pass
        try:
            error = json.loads(body.decode("utf-8"))["error"]
            return ServiceClientError(
                status,
                code=str(error["code"]),
                message=str(error["message"]),
                field=error.get("field"),
                retryable=error.get("retryable"),
                retry_after_s=retry_after_s,
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return ServiceClientError(
                status,
                code="http-error",
                message=body.decode("utf-8", "replace"),
                retry_after_s=retry_after_s,
            )

    def _json(self, *args: Any, **kwargs: Any) -> Dict[str, Any]:
        return json.loads(self._request(*args, **kwargs).decode("utf-8"))

    # -- the API ------------------------------------------------------------

    def submit(
        self,
        payload: Mapping[str, Any],
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """POST a run submission; returns the submission document."""
        document = dict(payload)
        if tenant is not None:
            document["tenant"] = tenant
        return self._json("POST", "/v1/runs", payload=document)

    def submit_experiment(
        self,
        experiment: str,
        profile: str = "fast",
        tenant: Optional[str] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        return self.submit(
            {"experiment": experiment, "profile": profile, **extra},
            tenant=tenant,
        )

    def status(self, run_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/runs/{urllib.parse.quote(run_id)}")

    def runs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        query = {"tenant": tenant} if tenant else None
        return list(self._json("GET", "/v1/runs", query=query)["runs"])

    def report(self, run_id: str) -> str:
        raw = self._request(
            "GET", f"/v1/runs/{urllib.parse.quote(run_id)}/report"
        )
        return raw.decode("utf-8")

    def cancel(self, run_id: str) -> Dict[str, Any]:
        return self._json("DELETE", f"/v1/runs/{urllib.parse.quote(run_id)}")

    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/health")

    def wait(
        self,
        run_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the run reaches a terminal state; return its status.

        Poll intervals carry ±25% deterministic jitter (seeded from the
        run id) so concurrent waiters spread their requests instead of
        arriving in lockstep.
        """
        rng = random.Random(f"{self.retry.seed}:{run_id}")
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(run_id)
            if status.get("state") in _TERMINAL_STATES:
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"run {run_id} still {status.get('state')!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll_interval * (0.75 + 0.5 * rng.random()))
