"""The HTTP front end: stdlib ``ThreadingHTTPServer`` over a JobManager.

Routes (all JSON unless noted)::

    POST   /v1/runs              submit {experiment|graph, profile, ...,
                                 tenant?} -> 202 queued / 200 cached
    GET    /v1/runs[?tenant=t]   list run statuses
    GET    /v1/runs/<id>         one run's status (live store manifests)
    GET    /v1/runs/<id>/report  the finished report, text/plain —
                                 byte-identical to the direct CLI run
    DELETE /v1/runs/<id>         cooperative cancel
    GET    /v1/health            queue + executor stats

Errors are structured:
``{"error": {"code", "message", "retryable", "field"?}}`` with the
status code carried by the :class:`~repro.api.ApiError` subclass (400
validation, 404 unknown run, 409 conflict, 503 queue full) — the same
objects every other facade consumer sees.  Retryable errors that know
their backoff (503 queue-full) additionally send a ``Retry-After``
header, which :class:`~repro.service.client.ServiceClient` honors.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro import api
from repro.service.jobs import JobManager, ServiceConfig

_MAX_BODY_BYTES = 8 * 1024 * 1024  # generous: serialized task graphs


class RunServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`JobManager`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        manager: JobManager,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.manager = manager
        self.verbose = verbose

    @property
    def port(self) -> int:
        return int(self.server_address[1])


class ServiceHandler(BaseHTTPRequestHandler):
    """Dispatch requests onto the facade through the job manager."""

    server: RunServiceServer
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        document: Mapping[str, Any],
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        body = (json.dumps(document, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, error: api.ApiError) -> None:
        headers: Dict[str, str] = {}
        retry_after = getattr(error, "retry_after_s", None)
        if retry_after is not None:
            # Whole seconds per RFC 9110, rounded up so clients never
            # come back early.
            headers["Retry-After"] = str(max(1, int(-(-retry_after // 1))))
        self._send_json(
            error.http_status, {"error": error.to_dict()}, extra_headers=headers
        )

    def _handle(self, method) -> None:
        """Run one route handler; map every failure to a structured body.

        :class:`~repro.api.ApiError` carries its own status; anything
        else is a server bug surfaced as a retryable 500 (the request
        may succeed on a healthy worker / after a restart) instead of a
        hung or half-written response.
        """
        try:
            method()
        except api.ApiError as error:
            self._send_error(error)
        except Exception as exc:  # pragma: no cover - defensive backstop
            error = api.ApiError(f"internal error: {type(exc).__name__}")
            error.code = "internal-error"
            error.http_status = 500
            error.retryable = True
            try:
                self._send_error(error)
            except OSError:
                pass  # client is gone; nothing to tell it

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise api.ValidationError(
                f"request body too large ({length} bytes)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise api.ValidationError("request body must be a JSON object")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise api.ValidationError(f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise api.ValidationError("request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, Optional[str], Dict[str, str]]:
        """(collection, run id or None, query) for ``/v1/...`` paths."""
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
            if values
        }
        if not parts or parts[0] != "v1":
            raise api.UnknownRunError(f"no such endpoint: {split.path}")
        return "/".join(parts[1:]), None, query

    # -- methods ------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._handle(self._post)

    def _post(self) -> None:
        route, _, _ = self._route()
        if route != "runs":
            raise api.UnknownRunError(f"no such endpoint: {self.path}")
        payload = self._read_body()
        tenant = str(payload.pop("tenant", "default"))
        submission = self.server.manager.submit(payload, tenant=tenant)
        status = 200 if submission.cached else 202
        self._send_json(status, submission.to_dict())

    def do_GET(self) -> None:  # noqa: N802
        self._handle(self._get)

    def _get(self) -> None:
        route, _, query = self._route()
        if route == "health":
            self._send_json(
                200, {"status": "ok", **self.server.manager.stats()}
            )
            return
        if route == "runs":
            tenant = query.get("tenant")
            statuses = self.server.manager.runs(tenant=tenant)
            self._send_json(
                200, {"runs": [status.to_dict() for status in statuses]}
            )
            return
        parts = route.split("/")
        if len(parts) == 2 and parts[0] == "runs":
            status = self.server.manager.status(parts[1])
            self._send_json(200, status.to_dict())
            return
        if len(parts) == 3 and parts[0] == "runs" and parts[2] == "report":
            self._send_text(200, self.server.manager.report(parts[1]))
            return
        raise api.UnknownRunError(f"no such endpoint: {self.path}")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle(self._delete)

    def _delete(self) -> None:
        route, _, _ = self._route()
        parts = route.split("/")
        if len(parts) == 2 and parts[0] == "runs":
            status = self.server.manager.cancel(parts[1])
            self._send_json(200, status.to_dict())
            return
        raise api.UnknownRunError(f"no such endpoint: {self.path}")


def make_server(
    store_root: Union[str, "ServiceConfig"],
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    **config_kwargs: Any,
) -> RunServiceServer:
    """A ready-to-serve server with its own started :class:`JobManager`.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.port``.  The caller owns shutdown: ``server.shutdown()``
    then ``server.manager.close()``.
    """
    if isinstance(store_root, ServiceConfig):
        config = store_root
    else:
        config = ServiceConfig(store_root=str(store_root), **config_kwargs)
    manager = JobManager(config).start()
    try:
        return RunServiceServer((host, port), manager, verbose=verbose)
    except BaseException:
        manager.close()
        raise


def serve(
    store_root: str,
    host: str = "127.0.0.1",
    port: int = 8321,
    verbose: bool = True,
    **config_kwargs: Any,
) -> int:
    """Run the service until interrupted (the ``repro-seu serve`` path).

    SIGTERM (and SIGINT) triggers a graceful drain: the listener stops
    accepting, in-flight runs finish (their cells stream to the store
    either way), queued runs stay ``queued`` on disk, and the next
    ``serve`` over the same store re-attaches and finishes them.
    """
    import signal
    import sys
    import threading

    server = make_server(
        store_root, host=host, port=port, verbose=verbose, **config_kwargs
    )
    print(
        f"repro-seu service listening on http://{host}:{server.port} "
        f"(store: {store_root})",
        file=sys.stderr,
        flush=True,
    )
    draining = threading.Event()

    def _drain(signum: int, frame: Any) -> None:
        if draining.is_set():
            return
        draining.set()
        print(
            f"[service] caught signal {signum}; draining "
            "(in-flight runs finish, queued runs persist)",
            file=sys.stderr,
            flush=True,
        )
        # shutdown() blocks until serve_forever() exits, so it must not
        # run on the thread that is inside serve_forever(); hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous_handlers = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous_handlers[signum] = signal.signal(signum, _drain)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        draining.set()
    finally:
        for signum, handler in previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        server.shutdown()
        server.server_close()
        # A drain keeps queued work on disk for the next boot; a plain
        # exit (tests calling serve() programmatically) still executes
        # the backlog as before.
        server.manager.close(execute_queued=not draining.is_set())
        if draining.is_set():
            print("[service] drained; queued runs persisted", file=sys.stderr)
    return 0
