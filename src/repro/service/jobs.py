"""The job layer: a bounded queue feeding one shared DagExecutor.

:class:`JobManager` accepts submissions (validated payloads or
:class:`~repro.api.RunSpec`\\ s), registers them through
:func:`repro.api.submit_run` and executes them on a small pool of
worker threads.  Each worker opens an
:func:`~repro.exec.dag.executor_scope` around its job, so every run's
leaf tasks — annealing restarts, scaling assessments, experiment
cells — funnel into the *one* shared work-stealing
:class:`~repro.exec.dag.DagExecutor` owned by the manager: the
concurrency limit is the worker count, the machine's parallelism is
the executor's transport, and an idle worker steals inner work from
whichever run is busiest.

Dedup happens twice, both through the facade: completed runs are
served from the store (``cached=True``, nothing enqueued) and runs
already queued or executing are *joined* (the second tenant gets the
same run id and polls the same manifests).  Beyond the worker count,
submissions queue rather than reject; only a full queue (the
``queue_size`` backstop) refuses with :class:`QueueFullError`.
"""

from __future__ import annotations

import queue
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro import api
from repro.exec.dag import DagExecutor, executor_scope

_SENTINEL = object()


class QueueFullError(api.ApiError):
    """The bounded job queue is at capacity; retry later."""

    code = "queue-full"
    http_status = 503
    retryable = True
    retry_after_s: Optional[float] = 1.0

    def __init__(
        self,
        message: str,
        field: Optional[str] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message, field=field)
        if retry_after_s is not None:
            self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`JobManager`.

    ``max_concurrency`` bounds in-flight runs (worker threads);
    ``queue_size`` bounds runs waiting behind them; ``transport``
    picks the shared executor's transport (``"thread"``,
    ``"process"``, ``"serial"`` or ``"auto"``); ``default_exec_plan``
    is applied to submissions that do not pin an ``exec_plan`` of
    their own — it is an execution knob, outside the run identity, so
    it never affects dedup or results (the DAG determinism contract).
    ``resume_orphans`` arms supervisor re-attach: on :meth:`start` the
    manager adopts queued/running records whose previous owner died
    and re-dispatches them (the store's fingerprint-keyed resume skips
    their completed cells).  ``retry_after_s`` is the backoff hint a
    full queue sends clients (the 503 ``Retry-After`` header).
    """

    store_root: str
    max_concurrency: int = 2
    queue_size: int = 64
    transport: str = "thread"
    default_exec_plan: Optional[str] = "dag"
    resume_orphans: bool = True
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")


class JobManager:
    """Bounded job queue + worker pool over one service store root."""

    def __init__(self, config: Union[ServiceConfig, str, Path]) -> None:
        if not isinstance(config, ServiceConfig):
            config = ServiceConfig(store_root=str(config))
        self.config = config
        self.store_root = Path(config.store_root)
        self.store_root.mkdir(parents=True, exist_ok=True)
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=config.queue_size)
        self._lock = threading.Lock()
        self._active: Dict[str, str] = {}  # run id -> "queued" | "running"
        self._executor: Optional[DagExecutor] = None
        self._workers: List[threading.Thread] = []
        self._closed = False
        self._skip_queued = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "JobManager":
        """Open the shared executor and start the worker threads."""
        with self._lock:
            if self._workers:
                return self
            if self._closed:
                raise RuntimeError("JobManager is closed")
            try:
                # One walk at startup heals whatever state the sidecar
                # index was left in (crash mid-write, deleted, stale);
                # from here on every record/manifest write refreshes it
                # incrementally and the polling endpoints answer from
                # it without re-walking runs/.  Best-effort: the index
                # is a cache, a failure just leaves listings walk-served.
                api.rebuild_index(self.store_root)
            except Exception:
                pass
            self._executor = DagExecutor.from_spec(self.config.transport)
            adopted: List[str] = []
            if self.config.resume_orphans:
                # Supervisor re-attach: claim runs a dead server left
                # queued/running and re-dispatch them.  Fingerprint-keyed
                # resume makes this cheap — completed cells are read
                # back, only missing ones execute.
                try:
                    adopted = api.reattach_pending(self.store_root)
                except Exception as exc:  # pragma: no cover - defensive
                    print(
                        f"[service] orphan re-attach failed: "
                        f"{type(exc).__name__}: {exc}",
                        file=sys.stderr,
                    )
            for run_id in adopted:
                try:
                    self._queue.put_nowait(run_id)
                except queue.Full:
                    # Leave the rest queued on disk; a later restart
                    # (or manual resubmission) picks them up.
                    print(
                        f"[service] queue full during re-attach; "
                        f"run {run_id} stays queued on disk",
                        file=sys.stderr,
                    )
                    break
                self._active[run_id] = "queued"
            if adopted:
                print(
                    f"[service] re-attached {len(adopted)} orphaned run(s)",
                    file=sys.stderr,
                )
            for index in range(self.config.max_concurrency):
                worker = threading.Thread(
                    target=self._work,
                    name=f"repro-job-worker-{index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        return self

    def close(self, execute_queued: bool = True) -> None:
        """Drain the workers and shut the shared executor down.

        ``execute_queued=True`` (the default) lets the workers finish
        the whole backlog before stopping.  ``execute_queued=False`` is
        the graceful-drain mode (SIGTERM): in-flight runs finish —
        their cells are streaming to the store either way — but queued
        runs are *skipped*, staying ``queued`` on disk for the next
        boot's supervisor re-attach.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._skip_queued = not execute_queued
            workers = list(self._workers)
        for _ in workers:
            self._queue.put(_SENTINEL)
        for worker in workers:
            worker.join()
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "JobManager":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the service surface ------------------------------------------------

    def submit(
        self,
        payload: Union[api.RunSpec, str, Mapping[str, Any]],
        tenant: str = "default",
    ) -> api.RunSubmission:
        """Validate, dedup and (when fresh) enqueue one submission.

        Returns immediately: ``cached=True`` submissions were served
        complete from the store; everything else is queued, running,
        or joined — poll :meth:`status` with the returned run id.
        """
        spec = api.RunSpec.coerce(payload)
        with self._lock:
            if self._closed:
                raise RuntimeError("JobManager is closed")
            in_flight = self._active.get(spec.run_id())
            if in_flight in ("queued", "running"):
                # Joined in-process: keep the record's tenant labels
                # fresh but do not requeue.
                submission = api.submit_run(
                    spec, self.store_root, tenant=tenant, wait=False
                )
                return api.RunSubmission(
                    run_id=submission.run_id,
                    state=in_flight,
                    cached=submission.cached,
                    report=submission.report,
                )
            submission = api.submit_run(
                spec, self.store_root, tenant=tenant, wait=False
            )
            if not submission.scheduled:
                return submission
            try:
                self._queue.put_nowait(submission.run_id)
            except queue.Full:
                api.cancel_run(self.store_root, submission.run_id)
                raise QueueFullError(
                    f"job queue is full ({self.config.queue_size} waiting); "
                    "retry later",
                    retry_after_s=self.config.retry_after_s,
                ) from None
            self._active[submission.run_id] = "queued"
        return submission

    def status(self, run_id: str) -> api.RunStatus:
        return api.run_status(self.store_root, run_id)

    def report(self, run_id: str) -> str:
        return api.fetch_report(self.store_root, run_id)

    def runs(self, tenant: Optional[str] = None) -> List[api.RunStatus]:
        return api.list_runs(self.store_root, tenant=tenant)

    def cancel(self, run_id: str) -> api.RunStatus:
        status = api.cancel_run(self.store_root, run_id)
        with self._lock:
            if self._active.get(run_id) == "queued":
                self._active[run_id] = "cancelled"
        return status

    def job_states(self) -> Dict[str, str]:
        """In-flight runs by id (``queued``/``running``) — observability."""
        with self._lock:
            return dict(self._active)

    def stats(self) -> Dict[str, Any]:
        """Queue + executor utilization for the health endpoint."""
        with self._lock:
            states = list(self._active.values())
            executor = self._executor
        return {
            "queued": states.count("queued"),
            "running": states.count("running"),
            "queue_capacity": self.config.queue_size,
            "max_concurrency": self.config.max_concurrency,
            "executor": executor.stats.to_dict() if executor else None,
        }

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued/running job drained (tests, shutdown)."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if not self._active:
                    return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.02)

    # -- the worker loop ----------------------------------------------------

    def _work(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                run_id = str(item)
                with self._lock:
                    if self._skip_queued:
                        # Graceful drain: leave the record queued on
                        # disk for the next boot's re-attach.
                        self._active.pop(run_id, None)
                        continue
                    if self._active.get(run_id) != "queued":
                        self._active.pop(run_id, None)
                        continue  # cancelled while waiting
                    self._active[run_id] = "running"
                    executor = self._executor
                try:
                    if executor is not None:
                        with executor_scope(executor, run_id):
                            api.run_submitted(
                                self.store_root,
                                run_id,
                                exec_plan=self.config.default_exec_plan,
                            )
                    else:  # pragma: no cover - executor always set by start()
                        api.run_submitted(
                            self.store_root,
                            run_id,
                            exec_plan=self.config.default_exec_plan,
                        )
                except Exception as exc:
                    # The facade already marked the record failed; the
                    # service stays up and the error is pollable.
                    print(
                        f"[service] run {run_id} failed: "
                        f"{type(exc).__name__}: {exc}",
                        file=sys.stderr,
                    )
                finally:
                    with self._lock:
                        self._active.pop(run_id, None)
            finally:
                self._queue.task_done()
