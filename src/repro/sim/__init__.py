"""Cycle-level MPSoC simulation substrate.

The paper evaluates designs with SystemC cycle-accurate simulation and
a fault-injection harness [11].  This subpackage is the Python
substitution (DESIGN.md §2): a discrete-event, cycle-level simulator
that executes a list schedule on the scaled cores and produces a
register-occupancy trace — exactly the information the fault injector
samples.

* :mod:`~repro.sim.engine` — a minimal discrete-event kernel.
* :mod:`~repro.sim.registers` — register-occupancy traces.
* :mod:`~repro.sim.simulator` — the MPSoC simulator proper.
* :mod:`~repro.sim.trace` — execution trace records for debugging
  and visualization.
"""

from repro.sim.engine import DiscreteEventEngine, Event
from repro.sim.registers import OccupancyInterval, OccupancyTrace
from repro.sim.simulator import MPSoCSimulator, SimulationResult
from repro.sim.trace import ExecutionTrace, TraceRecord

__all__ = [
    "DiscreteEventEngine",
    "Event",
    "ExecutionTrace",
    "MPSoCSimulator",
    "OccupancyInterval",
    "OccupancyTrace",
    "SimulationResult",
    "TraceRecord",
]
