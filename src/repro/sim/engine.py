"""A minimal discrete-event simulation kernel.

The MPSoC simulator replays schedules as timed events (task start,
task finish, trace emission).  The kernel is deliberately small: a
time-ordered priority queue of callbacks with deterministic tie
breaking (priority, then insertion order), a ``now`` clock, and
``run``/``run_until`` drivers.  It is domain-agnostic and reusable for
other event-driven substrates in the test-suite.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True, frozen=True)
class Event:
    """One scheduled event.

    Ordering is by ``(time_s, priority, sequence)`` so simultaneous
    events fire by ascending priority and, within a priority, in the
    order they were scheduled.
    """

    time_s: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class DiscreteEventEngine:
    """Time-ordered event executor.

    Notes
    -----
    Scheduling an event in the past (before ``now``) raises
    ``ValueError``; zero-delay events at the current time are allowed
    and run before the clock advances.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(
        self,
        time_s: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute time ``time_s``."""
        if time_s < self._now - 1e-15:
            raise ValueError(
                f"cannot schedule event at {time_s} before now ({self._now})"
            )
        event = Event(
            time_s=max(time_s, self._now),
            priority=priority,
            sequence=next(self._sequence),
            action=action,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay_s: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` after a relative delay."""
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        return self.schedule_at(self._now + delay_s, action, priority, label)

    def step(self) -> Optional[Event]:
        """Execute the next event; return it, or ``None`` if idle."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self._now = event.time_s
        event.action()
        self._processed += 1
        return event

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``); return count run."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed

    def run_until(self, time_s: float) -> int:
        """Run every event with time <= ``time_s``; advance clock to it."""
        executed = 0
        while self._queue and self._queue[0].time_s <= time_s:
            self.step()
            executed += 1
        self._now = max(self._now, time_s)
        return executed

    def reset(self) -> None:
        """Drop pending events and rewind the clock."""
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
