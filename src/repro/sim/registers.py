"""Register-occupancy traces.

The fault injector needs to know, for every core, *which register bits
were resident for how many clock cycles*.  An :class:`OccupancyTrace`
is a list of :class:`OccupancyInterval` records — (core, time window,
resident register set, clock frequency) — emitted by the simulator.

The exposure of an interval is ``bits * cycles``; summed per core it is
the ``R_i * T_i`` product of Eq. (3), and dividing by busy cycles gives
the time-averaged register usage of Eq. (4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.taskgraph.registers import Register


@dataclass(frozen=True)
class OccupancyInterval:
    """Registers resident on one core over one time window.

    Attributes
    ----------
    core:
        Core index.
    start_s / end_s:
        Wall-clock window (seconds).
    registers:
        The resident register set during the window.
    frequency_hz:
        The core's clock frequency (converts the window to cycles).
    """

    core: int
    start_s: float
    end_s: float
    registers: FrozenSet[Register]
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ValueError("core index must be non-negative")
        if self.end_s < self.start_s:
            raise ValueError(f"invalid window [{self.start_s}, {self.end_s}]")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def duration_s(self) -> float:
        """Window length in seconds."""
        return self.end_s - self.start_s

    @property
    def cycles(self) -> float:
        """Window length in this core's clock cycles."""
        return self.duration_s * self.frequency_hz

    @property
    def bits(self) -> int:
        """Resident register bits."""
        return sum(register.bits for register in self.registers)

    @property
    def exposure_bit_cycles(self) -> float:
        """``bits * cycles`` — the SEU exposure of this window."""
        return self.bits * self.cycles


class OccupancyTrace:
    """An append-only collection of occupancy intervals."""

    def __init__(self) -> None:
        self._intervals: List[OccupancyInterval] = []

    def add(self, interval: OccupancyInterval) -> None:
        """Append one interval."""
        self._intervals.append(interval)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[OccupancyInterval]:
        return iter(self._intervals)

    def intervals_of(self, core: int) -> Tuple[OccupancyInterval, ...]:
        """All intervals of one core, in insertion order."""
        return tuple(interval for interval in self._intervals if interval.core == core)

    def cores(self) -> Tuple[int, ...]:
        """Core indices present in the trace, ascending."""
        return tuple(sorted({interval.core for interval in self._intervals}))

    def busy_cycles(self, core: int) -> float:
        """Total traced cycles of one core."""
        return sum(interval.cycles for interval in self.intervals_of(core))

    def exposure_bit_cycles(self, core: int) -> float:
        """Total SEU exposure (bit-cycles) of one core: ``R_i * T_i``."""
        return sum(
            interval.exposure_bit_cycles for interval in self.intervals_of(core)
        )

    def total_exposure_bit_cycles(self) -> float:
        """SEU exposure summed over all cores."""
        return sum(interval.exposure_bit_cycles for interval in self._intervals)

    def time_average_bits(self, core: int) -> float:
        """Eq. (4): cycle-weighted average resident bits of one core."""
        cycles = self.busy_cycles(core)
        if cycles <= 0:
            return 0.0
        return self.exposure_bit_cycles(core) / cycles

    def per_core_exposure(self) -> Dict[int, float]:
        """Core -> exposure bit-cycles."""
        return {core: self.exposure_bit_cycles(core) for core in self.cores()}
