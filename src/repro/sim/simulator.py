"""Cycle-level MPSoC simulator.

Replays a list schedule on the scaled cores through the discrete-event
kernel and emits a register-occupancy trace for the fault injector.
This stands in for the paper's SystemC cycle-accurate simulation
(DESIGN.md §2).

Residency policies
------------------
How long a task's registers stay resident on its core determines the
SEU exposure:

* ``"static"`` (default) — the union of the register sets of every
  task mapped on a core is resident for the whole multiprocessor
  execution window ``[0, T_M]`` (register banks retain state through
  idle cycles).  The trace's time-averaged usage then equals Eq. (8)'s
  set-union cardinality exactly, and the injected-SEU expectation
  matches the evaluator's Eq. (3).  Tests rely on this equivalence.
* ``"accumulate"`` — a task's registers become resident when the task
  starts and stay live until ``T_M``.  Usage ramps up over time;
  Eq. (8) is an upper bound.  This is the more conservative,
  allocation-ordered mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.arch.mpsoc import MPSoC
from repro.mapping.mapping import Mapping
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import Schedule
from repro.sim.engine import DiscreteEventEngine
from repro.sim.registers import OccupancyInterval, OccupancyTrace
from repro.sim.trace import ExecutionTrace, TraceRecord
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.registers import Register

_POLICIES = ("static", "accumulate")


@dataclass
class SimulationResult:
    """Everything a simulation run produces.

    Attributes
    ----------
    schedule:
        The executed timeline.
    occupancy:
        Register-occupancy trace (fault-injection input).
    execution_trace:
        Optional event log (``None`` unless tracing was enabled).
    makespan_s:
        Simulated multiprocessor execution time.
    busy_cycles:
        Per-core busy cycles (``T_i`` of Eq. 7).
    frequencies_hz:
        Per-core clock frequencies used.
    """

    schedule: Schedule
    occupancy: OccupancyTrace
    execution_trace: Optional[ExecutionTrace]
    makespan_s: float
    busy_cycles: Tuple[int, ...]
    frequencies_hz: Tuple[float, ...]

    def time_average_register_bits(self, core: int) -> float:
        """Eq. (4) register usage of one core, from the trace."""
        return self.occupancy.time_average_bits(core)


class MPSoCSimulator:
    """Discrete-event simulator of a mapped application on an MPSoC.

    Parameters
    ----------
    graph:
        Application task graph.
    platform:
        The MPSoC (for scaling table and core count).
    scaling:
        Optional per-core scaling coefficients (defaults to the
        platform's current assignment).
    residency:
        Register residency policy, ``"static"`` or ``"accumulate"``.
    comm_model:
        Scheduler communication model, ``"dedicated"`` (default) or
        ``"shared-bus"``.
    """

    def __init__(
        self,
        graph: TaskGraph,
        platform: MPSoC,
        scaling: Optional[Sequence[int]] = None,
        residency: str = "static",
        comm_model: str = "dedicated",
    ) -> None:
        if residency not in _POLICIES:
            raise ValueError(
                f"unknown residency policy {residency!r}; choose from {_POLICIES}"
            )
        graph.validate()
        self.graph = graph
        self.platform = platform
        if scaling is None:
            scaling = platform.scaling_vector()
        self.scaling = platform.validate_assignment(scaling)
        if len(self.scaling) != platform.num_cores:
            raise ValueError(
                f"scaling vector has {len(self.scaling)} entries for "
                f"{platform.num_cores} cores"
            )
        self.residency = residency
        self.comm_model = comm_model
        tables = platform.core_tables
        self.frequencies_hz: Tuple[float, ...] = tuple(
            table.frequency_hz(coefficient)
            for table, coefficient in zip(tables, self.scaling)
        )
        self._cycle_scales = (
            None if platform.uniform_unit_cycles else platform.cycle_scales()
        )

    def run(self, mapping: Mapping, collect_trace: bool = False) -> SimulationResult:
        """Simulate ``mapping`` and return the result bundle."""
        mapping.validate_against(self.graph)
        scheduler = ListScheduler(
            self.graph,
            self.frequencies_hz,
            comm_model=self.comm_model,
            cycle_scales=self._cycle_scales,
        )
        schedule = scheduler.schedule(mapping)

        engine = DiscreteEventEngine()
        occupancy = OccupancyTrace()
        execution_trace = ExecutionTrace() if collect_trace else None
        makespan_s = schedule.makespan_s()

        core_union: Dict[int, FrozenSet[Register]] = {}
        for core in range(self.platform.num_cores):
            registers: Set[Register] = set()
            for name in mapping.tasks_on(core):
                registers |= self.graph.registers_of(name)
            core_union[core] = frozenset(registers)
        accumulated: Dict[int, Set[Register]] = {
            core: set() for core in range(self.platform.num_cores)
        }
        # Per core: time the currently-open occupancy interval began.
        open_since: Dict[int, float] = {}

        def _close_interval(core: int, until_s: float) -> None:
            start = open_since.get(core)
            if start is None or until_s <= start:
                return
            resident = (
                core_union[core]
                if self.residency == "static"
                else frozenset(accumulated[core])
            )
            if resident:
                occupancy.add(
                    OccupancyInterval(
                        core=core,
                        start_s=start,
                        end_s=until_s,
                        registers=resident,
                        frequency_hz=self.frequencies_hz[core],
                    )
                )
            open_since[core] = until_s

        def _make_start(entry) -> callable:
            def _start() -> None:
                core = entry.core
                if self.residency == "accumulate":
                    # Close the interval at the old resident set, then
                    # grow the set: exposure is piecewise constant.
                    _close_interval(core, engine.now)
                    accumulated[core] |= self.graph.registers_of(entry.name)
                    open_since.setdefault(core, engine.now)
                if execution_trace is not None:
                    resident = (
                        core_union[core]
                        if self.residency == "static"
                        else frozenset(accumulated[core])
                    )
                    bits = sum(register.bits for register in resident)
                    execution_trace.add(
                        TraceRecord(
                            time_s=engine.now,
                            core=core,
                            kind="start",
                            task=entry.name,
                            detail=f"{bits} resident bits",
                        )
                    )

            return _start

        def _make_finish(entry) -> callable:
            def _finish() -> None:
                if execution_trace is not None:
                    execution_trace.add(
                        TraceRecord(
                            time_s=engine.now,
                            core=entry.core,
                            kind="finish",
                            task=entry.name,
                        )
                    )

            return _finish

        if self.residency == "static":
            # Registers live over the whole execution window [0, T_M].
            for core in range(self.platform.num_cores):
                if core_union[core]:
                    open_since[core] = 0.0

        for entry in schedule:
            engine.schedule_at(entry.start_s, _make_start(entry), priority=0)
            engine.schedule_at(entry.finish_s, _make_finish(entry), priority=1)
        engine.run()
        for core in range(self.platform.num_cores):
            _close_interval(core, makespan_s)

        busy_cycles = tuple(
            schedule.busy_cycles(core) for core in range(self.platform.num_cores)
        )
        return SimulationResult(
            schedule=schedule,
            occupancy=occupancy,
            execution_trace=execution_trace,
            makespan_s=schedule.makespan_s(),
            busy_cycles=busy_cycles,
            frequencies_hz=self.frequencies_hz,
        )
