"""Execution-trace records emitted by the simulator.

A :class:`TraceRecord` logs one simulator event (task start/finish,
register allocation) with its timestamp; :class:`ExecutionTrace`
collects them and renders a human-readable log.  Traces are optional —
the simulator only fills them when asked — and exist for debugging,
teaching and test assertions on event ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped simulator event.

    Attributes
    ----------
    time_s:
        Event time in seconds.
    core:
        Core index the event belongs to.
    kind:
        Event kind: ``"start"``, ``"finish"`` or ``"alloc"``.
    task:
        The task involved.
    detail:
        Free-form extra information (e.g. allocated bits).
    """

    time_s: float
    core: int
    kind: str
    task: str
    detail: str = ""

    _KINDS = ("start", "finish", "alloc")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown trace kind {self.kind!r}")
        if self.time_s < 0:
            raise ValueError("trace time must be non-negative")


class ExecutionTrace:
    """Ordered collection of :class:`TraceRecord`."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def add(self, record: TraceRecord) -> None:
        """Append a record (must not go back in time)."""
        if self._records and record.time_s < self._records[-1].time_s - 1e-12:
            raise ValueError("trace records must be appended in time order")
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_task(self, task: str) -> Tuple[TraceRecord, ...]:
        """Records of one task."""
        return tuple(record for record in self._records if record.task == task)

    def of_core(self, core: int) -> Tuple[TraceRecord, ...]:
        """Records of one core."""
        return tuple(record for record in self._records if record.core == core)

    def render(self) -> str:
        """Human-readable multi-line log."""
        lines = [
            f"{record.time_s * 1e3:10.4f} ms  core{record.core}  "
            f"{record.kind:<6}  {record.task}"
            + (f"  ({record.detail})" if record.detail else "")
            for record in self._records
        ]
        return "\n".join(lines)
