"""Durable, streaming persistence for experiment runs.

See :mod:`repro.store.run_store` for the on-disk formats and the
resume determinism contract, :mod:`repro.store.index` for the SQLite
sidecar index (pure cache, rebuildable from records + manifests),
:mod:`repro.store.checkpoint` for intra-cell per-scaling checkpoints,
and ARCHITECTURE.md §store for the design discussion.
"""

from repro.store.checkpoint import (
    CHECKPOINTS_DIRNAME,
    CellCheckpoint,
    checkpoint_path,
    checkpoint_scope,
    clear_checkpoints,
    current_checkpoint,
    discard_cell_checkpoint,
)
from repro.store.index import (
    INDEX_NAME,
    RUN_RECORD_NAME,
    RUNS_DIRNAME,
    SHARD_MARKER,
    CompactionResult,
    RunEntry,
    StoreIndex,
    StoreIndexError,
    collect_entries,
    compact_records,
    compact_store,
    resolve_run_directory,
    shard_of,
    sharding_enabled,
)
from repro.store.run_store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    RECORDS_NAME,
    CellRecord,
    RunStore,
    RunStoreError,
    StoreMismatchError,
    cell_key,
    fingerprint_payload,
    iter_manifests,
    read_manifest,
    scan_records,
)

__all__ = [
    "CHECKPOINTS_DIRNAME",
    "FORMAT_VERSION",
    "INDEX_NAME",
    "MANIFEST_NAME",
    "RECORDS_NAME",
    "RUNS_DIRNAME",
    "RUN_RECORD_NAME",
    "SHARD_MARKER",
    "CellCheckpoint",
    "CellRecord",
    "CompactionResult",
    "RunEntry",
    "RunStore",
    "RunStoreError",
    "StoreIndex",
    "StoreIndexError",
    "StoreMismatchError",
    "cell_key",
    "checkpoint_path",
    "checkpoint_scope",
    "clear_checkpoints",
    "collect_entries",
    "compact_records",
    "compact_store",
    "current_checkpoint",
    "discard_cell_checkpoint",
    "fingerprint_payload",
    "iter_manifests",
    "read_manifest",
    "resolve_run_directory",
    "scan_records",
    "shard_of",
    "sharding_enabled",
]
