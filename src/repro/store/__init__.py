"""Durable, streaming persistence for experiment runs.

See :mod:`repro.store.run_store` for the on-disk formats and the
resume determinism contract, and ARCHITECTURE.md §store for the
design discussion.
"""

from repro.store.run_store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    RECORDS_NAME,
    CellRecord,
    RunStore,
    RunStoreError,
    StoreMismatchError,
    cell_key,
    fingerprint_payload,
    iter_manifests,
    read_manifest,
    scan_records,
)

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "RECORDS_NAME",
    "CellRecord",
    "RunStore",
    "RunStoreError",
    "StoreMismatchError",
    "cell_key",
    "fingerprint_payload",
    "iter_manifests",
    "read_manifest",
    "scan_records",
]
