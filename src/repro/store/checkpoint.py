"""Intra-cell checkpoints: per-scaling resume inside long ``full`` cells.

The run store resumes at *cell* granularity — a SIGKILL two hours into
a paper-scale cell re-runs the whole cell.  A :class:`CellCheckpoint`
shrinks the re-run unit to one scaling assessment: as a cell's scaling
sweep progresses, each completed position appends one durable record,
and a resumed cell restores every recorded position instead of
re-searching it.

Checkpoint identity rule
------------------------
A record is only restored when its **run fingerprint** (the store's
``result_fingerprint`` — every result-determining profile field) *and*
its **cell key** (grid position + cell scalars + graph content digest)
match the resuming cell, and then only at its exact **sweep number**
and **scaling sweep position**.  Fingerprint or key mismatch silently
invalidates the whole file — a checkpoint from a different profile or
grid must never leak results into this one.  The scaling *position*
(index into the deterministically ordered sweep) is the third key
component: the sweep order is a pure function of the profile, so
position ``i`` names the same scaling vector in every run of the
cell.  The *sweep number* (:meth:`CellCheckpoint.next_sweep`, claimed
once per optimizer invocation) is the fourth: a cell may run several
independent optimizations back to back — ``run_all`` cells execute a
whole experiment, ``table2`` several — and invocation ``n`` of a
resumed cell must restore only what invocation ``n`` recorded, never
a sibling's positions.  Invocation order within a cell is
deterministic, so the counter (which restarts at zero with every
fresh :class:`CellCheckpoint` object) aligns across runs.

Determinism contract
--------------------
A restored position yields the pickled :class:`DesignPoint` the live
search produced — the same bytes a re-run would produce (searches are
pure functions of ``(graph, platform, scaling, seed)``) — plus the
exact evaluation count the live search spent (the evaluator counts
calls, not cache misses, so the count is state-independent).  Reports
reassembled from a checkpoint-resumed cell are therefore
byte-identical to an uninterrupted run, which CI asserts end-to-end.

File format
-----------
One JSONL file per cell, ``<grid dir>/checkpoints/cell-<index>.jsonl``
— single-writer by construction (one coordinator thread or worker
process owns a cell), append-only with the same fsync + torn-tail
discipline as ``records.jsonl``.  The file is deleted the moment its
cell's final result lands in the records file, and the whole
directory is cleared when a grid starts fresh; checkpoints are pure
scratch state, never an authority.

Plumbing
--------
Checkpoints reach the optimizer without threading a parameter through
every cell signature: the cell runner opens a thread-local
:func:`checkpoint_scope` around ``cell.run()``, and
``DesignOptimizer.optimize`` probes :func:`current_checkpoint`.  Cells
dispatched to process pools carry the checkpoint *path* (the scope is
re-opened worker-side), so all execution backends checkpoint alike.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import shutil
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

CHECKPOINTS_DIRNAME = "checkpoints"


def checkpoint_path(grid_dir: Union[str, Path], index: int) -> Path:
    """The checkpoint file of grid cell ``index`` under ``grid_dir``."""
    return Path(grid_dir) / CHECKPOINTS_DIRNAME / f"cell-{index:03d}.jsonl"


def clear_checkpoints(grid_dir: Union[str, Path]) -> None:
    """Drop every checkpoint of a grid (fresh, non-resume opens)."""
    shutil.rmtree(Path(grid_dir) / CHECKPOINTS_DIRNAME, ignore_errors=True)


def discard_cell_checkpoint(grid_dir: Union[str, Path], index: int) -> None:
    """Drop one cell's checkpoint (its final result just persisted)."""
    try:
        checkpoint_path(grid_dir, index).unlink()
    except OSError:
        pass


class CellCheckpoint:
    """Durable per-scaling progress of one running cell.

    Construct with the owning run's fingerprint and the cell's key;
    :meth:`restore` answers ``None`` for positions the (validated)
    file does not hold, and :meth:`record` appends one durable record
    per completed position.  The file is loaded lazily once and the
    in-memory view kept in sync, so a sweep's probe loop costs one
    file scan total.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        fingerprint: str,
        cell_key: str,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.cell_key = cell_key
        self._records: Optional[Dict[Tuple[int, int], str]] = None
        self._sweeps = 0

    # -- loading ------------------------------------------------------------

    def _load(self) -> Dict[Tuple[int, int], str]:
        if self._records is not None:
            return self._records
        records: Dict[Tuple[int, int], str] = {}
        try:
            handle = self.path.open("r", encoding="utf-8")
        except OSError:
            self._records = records
            return records
        with handle:
            for line in handle:
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of an interrupted append
                if not isinstance(raw, dict):
                    continue
                if (
                    raw.get("fingerprint") != self.fingerprint
                    or raw.get("cell") != self.cell_key
                ):
                    # A different run's leftovers: never restore from
                    # them, and drop the whole file — mixed-identity
                    # checkpoints are worthless.
                    records.clear()
                    self._records = records
                    return records
                try:
                    position = int(raw["position"])
                    sweep = int(raw.get("sweep", 0))
                    payload = raw["payload"]
                except (KeyError, TypeError, ValueError):
                    continue
                if isinstance(payload, str):
                    records[(sweep, position)] = payload
        self._records = records
        return records

    # -- queries ------------------------------------------------------------

    def next_sweep(self) -> int:
        """Claim the next sweep number of this cell execution.

        Called once per optimizer invocation inside the cell.  The
        counter is in-memory and restarts at zero with every fresh
        object (one per cell execution, resume included); invocation
        order within a cell is deterministic, so sweep ``n`` names
        the same optimization in the recording run and the resume.
        """
        sweep = self._sweeps
        self._sweeps += 1
        return sweep

    def positions(self, sweep: int = 0) -> List[int]:
        """Recorded positions of one sweep, ascending."""
        return sorted(
            position for key, position in self._load() if key == sweep
        )

    def restore(self, position: int, sweep: int = 0) -> Optional[Any]:
        """The value recorded at ``(sweep, position)``, or ``None``.

        ``None`` on any decode failure too — a checkpoint is scratch
        state; an unreadable record degrades to "re-run the scaling",
        never to an error.
        """
        payload = self._load().get((sweep, position))
        if payload is None:
            return None
        try:
            return pickle.loads(base64.b64decode(payload.encode("ascii")))
        except Exception:
            return None

    # -- writes -------------------------------------------------------------

    def record(self, position: int, value: Any, sweep: int = 0) -> None:
        """Append one completed position; durable before returning."""
        payload = base64.b64encode(pickle.dumps(value)).decode("ascii")
        line = json.dumps(
            {
                "fingerprint": self.fingerprint,
                "cell": self.cell_key,
                "sweep": sweep,
                "position": position,
                "payload": payload,
            },
            sort_keys=True,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if self._records is not None:
            self._records[(sweep, position)] = payload

    def discard(self) -> None:
        """Delete the file (the cell completed; scratch is obsolete)."""
        try:
            self.path.unlink()
        except OSError:
            pass
        self._records = {}


# ---------------------------------------------------------------------------
# Thread-local plumbing: cell runner -> optimizer, without signatures.
# ---------------------------------------------------------------------------

_SCOPE = threading.local()


@contextmanager
def checkpoint_scope(checkpoint: Optional[CellCheckpoint]) -> Iterator[
    Optional[CellCheckpoint]
]:
    """Make ``checkpoint`` the ambient checkpoint of this thread.

    Thread-local on purpose: under the DAG executor each cell runs on
    its own coordinator thread, and a process-pool cell re-opens the
    scope inside the worker — in both cases exactly one thread
    orchestrates one cell's sweep, so the ambient checkpoint can never
    cross cells.
    """
    previous = getattr(_SCOPE, "current", None)
    _SCOPE.current = checkpoint
    try:
        yield checkpoint
    finally:
        _SCOPE.current = previous


def current_checkpoint() -> Optional[CellCheckpoint]:
    """The ambient :class:`CellCheckpoint`, or ``None`` outside a scope."""
    return getattr(_SCOPE, "current", None)


__all__ = [
    "CHECKPOINTS_DIRNAME",
    "CellCheckpoint",
    "checkpoint_path",
    "checkpoint_scope",
    "clear_checkpoints",
    "current_checkpoint",
    "discard_cell_checkpoint",
]
