"""Queryable SQLite sidecar index over a run-store root.

The run store's source of truth is per-run ``records.jsonl`` +
``manifest.json`` files; listing them means walking directories and
parsing every manifest — fine for a handful of runs, hopeless for a
service store holding millions of cells.  :class:`StoreIndex` is a
**pure cache** over that truth: one ``index.sqlite`` (WAL mode) at the
store root holding a row per run (fingerprint, label, state,
completion counters, profile summary, timestamps) and a row per cell
(key + status, in listing order), so "list my runs / find the cached
result for this graph" is an index lookup instead of a walk.

Authority-vs-cache contract
---------------------------
The index is **never** an authority.  Every row is derived from
``records.jsonl``/``manifest.json``/``run.json`` and can be rebuilt
from them at any time (:meth:`StoreIndex.replace_all` over
:func:`collect_entries`); deleting ``index.sqlite`` loses nothing.
Writers keep it fresh incrementally — :class:`~repro.store.run_store.
RunStore` upserts its run row on every cell append, the service
facade upserts on every run-state transition — and every index write
is best-effort: an index failure degrades to a rebuild-on-next-read,
never to a failed run.  Readers that cannot trust the cache (or find
it missing) fall back to :func:`collect_entries`, the same walk the
index is built from, so an index-served listing and a walk-served
listing are byte-identical by construction.

Compaction
----------
``records.jsonl`` accumulates torn tails (interrupted appends) and
superseded records (a cell re-run after a failure appends a second
line; the loader's latest-wins rule hides the first).
:func:`compact_records` rewrites a records file to exactly the lines
the loader would keep — the *final* record per cell key, verbatim
bytes, in first-appearance order — via a temp file + ``os.replace``,
so a concurrent reader sees either the old file or the new one,
never a torn view.  Compact only quiescent stores: a live writer's
append between the read and the replace would be dropped.

Sharded run directories
-----------------------
Service stores put every run under ``<root>/runs/<run id>``; at
millions of runs one flat directory strains the filesystem.  With
sharding enabled (the ``REPRO_STORE_SHARD`` environment variable, or
a ``.sharded`` marker inside ``runs/``), new runs land under
``runs/<hh>/<run id>`` where ``hh`` is the first two hex digits of
the run id's sha256.  Readers always accept both layouts.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.store.run_store import (
    MANIFEST_NAME,
    RECORDS_NAME,
    iter_manifests,
)

INDEX_NAME = "index.sqlite"
RUN_RECORD_NAME = "run.json"
RUNS_DIRNAME = "runs"
SHARD_MARKER = ".sharded"

#: Bump when the schema changes; a mismatched index is dropped and
#: rebuilt (it is a cache — staleness is never an error).
INDEX_SCHEMA_VERSION = 1

#: Ancestor levels walked when attaching a grid directory to the store
#: root's index (``<root>/runs/<run id>/<label>`` is three deep).
_ATTACH_DEPTH = 4

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    directory  TEXT PRIMARY KEY,  -- relative to the store root
    kind       TEXT NOT NULL,     -- 'service' | 'grid'
    sort_key   TEXT NOT NULL,
    run_id     TEXT NOT NULL,
    label      TEXT NOT NULL,
    state      TEXT NOT NULL,
    total      INTEGER NOT NULL,
    completed  INTEGER NOT NULL,
    failed     INTEGER NOT NULL,
    fingerprint TEXT,
    profile    TEXT NOT NULL,     -- JSON (name, seed, platform, ...)
    executor   TEXT,              -- JSON or NULL
    tenants    TEXT NOT NULL,     -- JSON list
    error      TEXT,
    updated_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_by_id ON runs (run_id);
CREATE INDEX IF NOT EXISTS runs_by_fingerprint ON runs (fingerprint);
CREATE TABLE IF NOT EXISTS cells (
    directory TEXT NOT NULL,
    position  INTEGER NOT NULL,
    key       TEXT NOT NULL,
    status    TEXT NOT NULL,
    PRIMARY KEY (directory, position)
);
CREATE INDEX IF NOT EXISTS cells_by_key ON cells (directory, key);
"""


class StoreIndexError(RuntimeError):
    """The sidecar could not be read or written (callers degrade)."""


# ---------------------------------------------------------------------------
# Run entries: the one shape shared by the walk and the index.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunEntry:
    """One run as the listing sees it, whatever produced it.

    :func:`collect_entries` builds these from a directory walk;
    :meth:`StoreIndex.entries` round-trips them through SQLite.  The
    two must agree field for field — that equivalence is what makes
    an index-served listing byte-identical to a walk-served one, and
    the CI ``e2e-store`` index leg diffs exactly that.
    """

    kind: str  # "service" | "grid"
    directory: Path
    run_id: str
    label: str
    state: str
    total: int = 0
    completed: int = 0
    failed: int = 0
    fingerprint: Optional[str] = None
    profile: Mapping[str, Any] = field(default_factory=dict)
    executor: Optional[Mapping[str, Any]] = None
    tenants: Tuple[str, ...] = ()
    error: Optional[str] = None
    cells: Tuple[str, ...] = ()
    cell_status: Mapping[str, str] = field(default_factory=dict)


def read_run_record(run_dir: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Parse one ``run.json``; ``None`` when absent or unreadable."""
    try:
        record = json.loads(
            (Path(run_dir) / RUN_RECORD_NAME).read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        return None
    return record if isinstance(record, dict) else None


def _aggregate_manifests(
    manifests: Sequence[Tuple[Path, Mapping[str, Any]]],
) -> Dict[str, Any]:
    """Merge per-label manifests into one run's counters/cells view."""
    total = completed = failed = 0
    fingerprint: Optional[str] = None
    profile: Mapping[str, Any] = {}
    executor: Optional[Mapping[str, Any]] = None
    cells: List[str] = []
    cell_status: Dict[str, str] = {}
    for _, manifest in manifests:
        total += int(manifest.get("total", 0))
        completed += int(manifest.get("completed", 0))
        failed += int(manifest.get("failed", 0))
        fingerprint = fingerprint or manifest.get("fingerprint")
        profile = profile or manifest.get("profile", {})
        executor = executor or manifest.get("executor")
        cells.extend(manifest.get("cells", []))
        cell_status.update(manifest.get("status", {}))
    return {
        "total": total,
        "completed": completed,
        "failed": failed,
        "fingerprint": fingerprint,
        "profile": dict(profile),
        "executor": dict(executor) if executor else None,
        "cells": tuple(cells),
        "cell_status": cell_status,
    }


def service_run_entry(
    run_dir: Path,
    record: Optional[Mapping[str, Any]] = None,
    manifests: Optional[Sequence[Tuple[Path, Mapping[str, Any]]]] = None,
) -> Optional[RunEntry]:
    """The entry for one service-managed run directory (``run.json``)."""
    if record is None:
        record = read_run_record(run_dir)
    if record is None:
        return None
    if manifests is None:
        manifests = list(iter_manifests(run_dir))
    merged = _aggregate_manifests(manifests)
    return RunEntry(
        kind="service",
        directory=run_dir,
        run_id=str(record.get("run_id", run_dir.name)),
        label=str(record.get("label", run_dir.name)),
        state=str(record.get("state", "queued")),
        tenants=tuple(str(t) for t in record.get("tenants", [])),
        error=record.get("error"),
        **merged,
    )


def grid_entry(directory: Path, manifest: Mapping[str, Any]) -> RunEntry:
    """The entry for one bare grid directory (``manifest.json`` only)."""
    merged = _aggregate_manifests([(directory, manifest)])
    return RunEntry(
        kind="grid",
        directory=directory,
        run_id=directory.name,
        label=str(manifest.get("label", directory.name)),
        state=str(manifest.get("run_status", "?")),
        **merged,
    )


def iter_service_run_dirs(runs_dir: Path) -> Iterator[Path]:
    """Service run directories under ``runs/``, sorted by run id.

    Accepts the flat layout (``runs/<run id>``) and the sharded one
    (``runs/<hh>/<run id>``): a child without a ``run.json`` is
    treated as a shard directory and descended one level.  Sorting is
    global by run id, so flat and sharded stores holding the same
    runs list them in the same order.
    """
    try:
        children = list(runs_dir.iterdir())
    except OSError:
        return
    run_dirs: List[Path] = []
    for child in children:
        try:
            if not child.is_dir():
                continue
        except OSError:
            continue
        if (child / RUN_RECORD_NAME).exists():
            run_dirs.append(child)
            continue
        try:
            grandchildren = list(child.iterdir())
        except OSError:
            continue
        for grandchild in grandchildren:
            try:
                if grandchild.is_dir() and (
                    grandchild / RUN_RECORD_NAME
                ).exists():
                    run_dirs.append(grandchild)
            except OSError:
                continue
    run_dirs.sort(key=lambda path: path.name)
    yield from run_dirs


def collect_entries(store_root: Union[str, Path]) -> List[RunEntry]:
    """Every run under a store root, by directory walk.

    Service-managed runs first (sorted by run id), then bare grid
    directories in manifest-walk order — exactly the listing shape
    ``repro.api.list_runs`` has always produced, and exactly what
    :meth:`StoreIndex.replace_all` persists.
    """
    root = Path(store_root)
    entries: List[RunEntry] = []
    runs_dir = root / RUNS_DIRNAME
    if runs_dir.is_dir():
        for run_dir in iter_service_run_dirs(runs_dir):
            entry = service_run_entry(run_dir)
            if entry is not None:
                entries.append(entry)
    for directory, manifest in iter_manifests(root):
        if directory == runs_dir or runs_dir in directory.parents:
            continue
        entries.append(grid_entry(directory, manifest))
    return entries


# ---------------------------------------------------------------------------
# Sharded run directories.
# ---------------------------------------------------------------------------


def shard_of(run_id: str) -> str:
    """The two-hex-digit shard bucket of one run id."""
    return hashlib.sha256(run_id.encode("utf-8")).hexdigest()[:2]


def sharding_enabled(store_root: Union[str, Path]) -> bool:
    """Whether *new* run directories under this root should shard.

    True when ``runs/.sharded`` exists (a store that ever sharded
    keeps sharding — mixing layouts for new runs is allowed but
    pointless) or the ``REPRO_STORE_SHARD`` environment variable is
    set to a non-empty, non-``0`` value.
    """
    if (Path(store_root) / RUNS_DIRNAME / SHARD_MARKER).exists():
        return True
    return os.environ.get("REPRO_STORE_SHARD", "0") not in ("", "0")


def resolve_run_directory(
    store_root: Union[str, Path], run_id: str, create: bool = False
) -> Path:
    """The directory of one service run, across both layouts.

    An existing directory wins wherever it lives (flat first — the
    legacy layout — then the shard bucket).  With ``create`` the
    preferred layout for *new* runs is chosen by
    :func:`sharding_enabled`, and the shard marker is dropped so the
    store keeps its layout from then on.  Without ``create`` the
    preferred path is returned without touching the filesystem.
    """
    root = Path(store_root)
    flat = root / RUNS_DIRNAME / run_id
    sharded = root / RUNS_DIRNAME / shard_of(run_id) / run_id
    if flat.exists():
        return flat
    if sharded.exists():
        return sharded
    if not sharding_enabled(root):
        return flat
    if create:
        sharded.parent.mkdir(parents=True, exist_ok=True)
        marker = root / RUNS_DIRNAME / SHARD_MARKER
        if not marker.exists():
            try:
                marker.write_text("sharded run directories\n", encoding="utf-8")
            except OSError:
                pass
    return sharded


# ---------------------------------------------------------------------------
# The SQLite sidecar.
# ---------------------------------------------------------------------------


class StoreIndex:
    """The ``index.sqlite`` sidecar of one store root.

    Thread- and process-safe by construction: every operation opens
    its own SQLite connection (WAL journal, busy timeout), mutating
    operations run in one ``BEGIN IMMEDIATE`` transaction with a
    bounded locked-database retry, and no connection outlives a call
    — so the object itself is freely shareable and picklable-adjacent
    (only the path matters).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    @property
    def root(self) -> Path:
        return self.path.parent

    # -- construction -------------------------------------------------------

    @classmethod
    def at(cls, store_root: Union[str, Path]) -> "StoreIndex":
        """The index of a store root (the file may not exist yet)."""
        return cls(Path(store_root) / INDEX_NAME)

    @classmethod
    def ensure(cls, store_root: Union[str, Path]) -> "StoreIndex":
        """The index of a store root, created (with schema) if missing."""
        index = cls.at(store_root)
        index._initialize()
        return index

    @classmethod
    def attach(cls, start_dir: Union[str, Path]) -> Optional["StoreIndex"]:
        """The nearest enclosing index of a run directory, if any.

        Walks up from ``start_dir`` (inclusive) a few levels looking
        for an existing ``index.sqlite`` — a grid at
        ``<root>/runs/<run id>/<label>`` finds the service root's
        sidecar.  When none exists, one is created at ``start_dir``
        itself *unless* that directory is a service run directory
        (holds ``run.json``): a per-run index would shadow the real
        root's.  Returns ``None`` rather than creating in that case.

        A freshly created sidecar is seeded from a full walk of
        ``start_dir`` before being handed to the caller: incremental
        writers only ever upsert their *own* rows, so an index born
        empty next to pre-existing runs would hide them from every
        reader that trusts it.  Existence implies completeness.
        """
        start = Path(start_dir)
        probe = start
        for _ in range(_ATTACH_DEPTH):
            candidate = probe / INDEX_NAME
            try:
                if candidate.exists():
                    return cls(candidate)
            except OSError:
                return None
            parent = probe.parent
            if parent == probe:
                break
            probe = parent
        if (start / RUN_RECORD_NAME).exists():
            return None
        index = cls(start / INDEX_NAME)
        try:
            index._initialize()
            index.replace_all(collect_entries(start))
        except StoreIndexError:
            return None
        return index

    def exists(self) -> bool:
        return self.path.exists()

    def mtime_ns(self) -> Optional[int]:
        """The freshest mtime across the database and its WAL files.

        In WAL mode a write lands in ``index.sqlite-wal`` long before
        a checkpoint touches the main file, so invalidation signals
        (the memoized-walk cache in ``repro.api``) must consider all
        three.  ``None`` when the index does not exist.
        """
        newest: Optional[int] = None
        for suffix in ("", "-wal", "-shm"):
            try:
                stamp = os.stat(str(self.path) + suffix).st_mtime_ns
            except OSError:
                continue
            if newest is None or stamp > newest:
                newest = stamp
        return newest

    # -- connections --------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(str(self.path), timeout=10.0)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute("PRAGMA busy_timeout=10000")
        return connection

    def _initialize(self) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._write() as connection:
                connection.executescript(_SCHEMA)
                connection.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("schema", str(INDEX_SCHEMA_VERSION)),
                )
        except sqlite3.Error as exc:
            raise StoreIndexError(f"cannot initialize {self.path}: {exc}")

    def _write(self):
        """A write transaction with bounded busy retries.

        WAL allows one writer at a time; concurrent appenders (two
        threads streaming cells into the same store) serialize here.
        ``busy_timeout`` covers intra-transaction locks; the retry
        loop covers the ``BEGIN IMMEDIATE`` itself.
        """
        index = self

        class _WriteTransaction:
            def __enter__(self) -> sqlite3.Connection:
                last: Optional[sqlite3.OperationalError] = None
                for attempt in range(5):
                    connection = index._connect()
                    try:
                        connection.execute("BEGIN IMMEDIATE")
                        self._connection = connection
                        return connection
                    except sqlite3.OperationalError as exc:
                        connection.close()
                        last = exc
                        time.sleep(0.05 * (attempt + 1))
                raise last  # pragma: no cover - 10s busy_timeout x 5

            def __exit__(self, exc_type, exc, tb) -> None:
                connection = self._connection
                try:
                    if exc_type is None:
                        connection.commit()
                    else:
                        connection.rollback()
                finally:
                    connection.close()

        return _WriteTransaction()

    def _schema_current(self, connection: sqlite3.Connection) -> bool:
        try:
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
        except sqlite3.Error:
            return False
        return row is not None and row[0] == str(INDEX_SCHEMA_VERSION)

    # -- serialization ------------------------------------------------------

    def _relative(self, directory: Path) -> str:
        try:
            return directory.relative_to(self.root).as_posix()
        except ValueError:
            return directory.as_posix()

    def _absolute(self, relative: str) -> Path:
        path = Path(relative)
        return path if path.is_absolute() else self.root / path

    @staticmethod
    def _sort_key(entry: RunEntry, relative: str) -> str:
        # Service runs sort by run id (how the flat runs/ directory
        # listed them); grids sort in manifest-walk (DFS) order,
        # which \x01-joined path components reproduce under plain
        # string comparison.
        if entry.kind == "service":
            return entry.run_id
        return "\x01".join(Path(relative).parts)

    def _row_of(self, entry: RunEntry) -> Tuple:
        relative = self._relative(entry.directory)
        return (
            relative,
            entry.kind,
            self._sort_key(entry, relative),
            entry.run_id,
            entry.label,
            entry.state,
            int(entry.total),
            int(entry.completed),
            int(entry.failed),
            entry.fingerprint,
            json.dumps(dict(entry.profile), sort_keys=True),
            (
                json.dumps(dict(entry.executor), sort_keys=True)
                if entry.executor
                else None
            ),
            json.dumps(list(entry.tenants)),
            entry.error,
            time.time(),
        )

    _UPSERT = (
        "INSERT OR REPLACE INTO runs (directory, kind, sort_key, run_id, "
        "label, state, total, completed, failed, fingerprint, profile, "
        "executor, tenants, error, updated_at) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
    )

    def _entry_of(self, row: Sequence[Any]) -> RunEntry:
        (
            relative,
            kind,
            _sort_key,
            run_id,
            label,
            state,
            total,
            completed,
            failed,
            fingerprint,
            profile,
            executor,
            tenants,
            error,
            _updated_at,
            cells_json,
            statuses_json,
        ) = row
        cells = tuple(json.loads(cells_json)) if cells_json else ()
        statuses = json.loads(statuses_json) if statuses_json else []
        return RunEntry(
            kind=str(kind),
            directory=self._absolute(str(relative)),
            run_id=str(run_id),
            label=str(label),
            state=str(state),
            total=int(total),
            completed=int(completed),
            failed=int(failed),
            fingerprint=fingerprint,
            profile=json.loads(profile) if profile else {},
            executor=json.loads(executor) if executor else None,
            tenants=tuple(json.loads(tenants)) if tenants else (),
            error=error,
            cells=cells,
            cell_status=dict(zip(cells, statuses)),
        )

    _SELECT = (
        "SELECT r.directory, r.kind, r.sort_key, r.run_id, r.label, "
        "r.state, r.total, r.completed, r.failed, r.fingerprint, "
        "r.profile, r.executor, r.tenants, r.error, r.updated_at, "
        "(SELECT json_group_array(c.key) FROM (SELECT key FROM cells c "
        " WHERE c.directory = r.directory ORDER BY c.position) c), "
        "(SELECT json_group_array(c.status) FROM (SELECT status FROM cells c"
        " WHERE c.directory = r.directory ORDER BY c.position) c) "
        "FROM runs r"
    )

    # -- writes -------------------------------------------------------------

    def _write_cells(
        self, connection: sqlite3.Connection, relative: str, entry: RunEntry
    ) -> None:
        connection.execute("DELETE FROM cells WHERE directory = ?", (relative,))
        connection.executemany(
            "INSERT INTO cells (directory, position, key, status) "
            "VALUES (?, ?, ?, ?)",
            [
                (
                    relative,
                    position,
                    key,
                    str(entry.cell_status.get(key, "pending")),
                )
                for position, key in enumerate(entry.cells)
            ],
        )

    def replace_all(self, entries: Sequence[RunEntry]) -> None:
        """Rebuild the whole index from walked entries (atomic)."""
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._write() as connection:
                connection.executescript(_SCHEMA)
                connection.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("schema", str(INDEX_SCHEMA_VERSION)),
                )
                connection.execute("DELETE FROM runs")
                connection.execute("DELETE FROM cells")
                for entry in entries:
                    row = self._row_of(entry)
                    connection.execute(self._UPSERT, row)
                    self._write_cells(connection, row[0], entry)
        except sqlite3.Error as exc:
            raise StoreIndexError(f"cannot rebuild {self.path}: {exc}")

    def update_entry(self, entry: RunEntry) -> None:
        """Upsert one run's row + cell rows (state transitions, opens)."""
        try:
            with self._write() as connection:
                connection.executescript(_SCHEMA)
                row = self._row_of(entry)
                connection.execute(self._UPSERT, row)
                self._write_cells(connection, row[0], entry)
        except sqlite3.Error as exc:
            raise StoreIndexError(f"cannot update {self.path}: {exc}")

    def update_grid_cell(
        self,
        directory: Union[str, Path],
        manifest: Mapping[str, Any],
        key: str,
        status: str,
    ) -> None:
        """One cell append: refresh the run row, touch one cell row.

        The hot incremental path — O(1) per append instead of
        rewriting every cell row — used by ``RunStore`` as results
        stream in.  The directory may be a bare grid (its own row) or
        a label inside a service run directory, in which case the
        *service run's* aggregate row is refreshed instead.
        """
        directory = Path(directory)
        owner = self._service_owner(directory)
        if owner is not None:
            entry = service_run_entry(owner)
            if entry is not None:
                self.update_entry(entry)
            return
        manifest = dict(manifest)
        entry = grid_entry(directory, manifest)
        relative = self._relative(directory)
        try:
            with self._write() as connection:
                connection.executescript(_SCHEMA)
                row = self._row_of(entry)
                connection.execute(self._UPSERT, row)
                updated = connection.execute(
                    "UPDATE cells SET status = ? "
                    "WHERE directory = ? AND key = ?",
                    (status, relative, key),
                ).rowcount
                if not updated:
                    self._write_cells(connection, relative, entry)
        except sqlite3.Error as exc:
            raise StoreIndexError(f"cannot update {self.path}: {exc}")

    def _service_owner(self, directory: Path) -> Optional[Path]:
        """The enclosing service run directory of a grid, if any."""
        probe = directory
        for _ in range(_ATTACH_DEPTH):
            parent = probe.parent
            if parent == probe:
                return None
            probe = parent
            if probe == self.root:
                return None
            if (probe / RUN_RECORD_NAME).exists():
                return probe

    def remove(self, directory: Union[str, Path]) -> None:
        relative = self._relative(Path(directory))
        try:
            with self._write() as connection:
                connection.execute(
                    "DELETE FROM runs WHERE directory = ?", (relative,)
                )
                connection.execute(
                    "DELETE FROM cells WHERE directory = ?", (relative,)
                )
        except sqlite3.Error as exc:
            raise StoreIndexError(f"cannot update {self.path}: {exc}")

    # -- queries ------------------------------------------------------------

    def entries(self, tenant: Optional[str] = None) -> List[RunEntry]:
        """Every indexed run, in listing order (services first).

        Raises :class:`StoreIndexError` when the sidecar is missing,
        torn, or from another schema version — callers fall back to
        the walk (and typically rebuild).
        """
        if not self.exists():
            raise StoreIndexError(f"no index at {self.path}")
        try:
            connection = self._connect()
        except sqlite3.Error as exc:
            raise StoreIndexError(f"cannot open {self.path}: {exc}")
        try:
            if not self._schema_current(connection):
                raise StoreIndexError(f"stale schema in {self.path}")
            rows = connection.execute(
                self._SELECT
                + " ORDER BY (r.kind = 'service') DESC, r.sort_key"
            ).fetchall()
        except sqlite3.Error as exc:
            raise StoreIndexError(f"cannot query {self.path}: {exc}")
        finally:
            connection.close()
        entries = [self._entry_of(row) for row in rows]
        if tenant is not None:
            entries = [
                entry for entry in entries if tenant in entry.tenants
            ]
        return entries

    def lookup_run(self, run_id: str) -> Optional[RunEntry]:
        """One run by id or label/directory name (index probe).

        ``None`` on a miss *or* any index failure — this is a cache
        probe; the caller retries against the filesystem.
        """
        if not self.exists():
            return None
        try:
            connection = self._connect()
        except sqlite3.Error:
            return None
        try:
            if not self._schema_current(connection):
                return None
            row = connection.execute(
                self._SELECT + " WHERE r.run_id = ? OR r.label = ? "
                "ORDER BY (r.kind = 'service') DESC, r.sort_key LIMIT 1",
                (run_id, run_id),
            ).fetchone()
        except sqlite3.Error:
            return None
        finally:
            connection.close()
        return self._entry_of(row) if row is not None else None

    def count_runs(self) -> int:
        try:
            connection = self._connect()
        except sqlite3.Error as exc:
            raise StoreIndexError(f"cannot open {self.path}: {exc}")
        try:
            return int(connection.execute("SELECT COUNT(*) FROM runs").fetchone()[0])
        except sqlite3.Error as exc:
            raise StoreIndexError(f"cannot query {self.path}: {exc}")
        finally:
            connection.close()


# ---------------------------------------------------------------------------
# Compaction.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompactionResult:
    """What one records-file compaction did."""

    path: Path
    kept: int
    dropped: int

    @property
    def changed(self) -> bool:
        return self.dropped > 0


def compact_records(records_path: Union[str, Path]) -> CompactionResult:
    """Rewrite one ``records.jsonl`` to its live records only.

    Keeps, per cell key, the **final** record line — the one the
    loader's latest-wins rule would honour — verbatim (byte-for-byte:
    compaction must never re-encode payloads), in first-appearance
    order; torn tails and superseded duplicates are dropped.  The
    rewrite is atomic (temp file + ``os.replace``): a concurrent
    reader sees the old file or the new one, never a torn view.  A
    file that is already compact is left untouched (no mtime churn).

    Only compact quiescent stores — an append racing the rewrite
    window would be lost.
    """
    records_path = Path(records_path)
    try:
        raw = records_path.read_text(encoding="utf-8")
    except OSError:
        return CompactionResult(records_path, 0, 0)
    lines = raw.splitlines(keepends=True)
    final: Dict[str, str] = {}
    order: List[str] = []
    dropped = 0
    for line in lines:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            dropped += 1  # torn tail
            continue
        if not isinstance(record, dict) or "key" not in record:
            dropped += 1
            continue
        key = str(record["key"])
        if key in final:
            dropped += 1  # superseded duplicate (latest wins below)
        else:
            order.append(key)
        if not line.endswith("\n"):
            line += "\n"
        final[key] = line
    kept = len(order)
    if dropped == 0:
        return CompactionResult(records_path, kept, 0)
    temporary = records_path.with_suffix(".jsonl.tmp")
    with temporary.open("w", encoding="utf-8") as handle:
        for key in order:
            handle.write(final[key])
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, records_path)
    return CompactionResult(records_path, kept, dropped)


def compact_store(store_root: Union[str, Path]) -> List[CompactionResult]:
    """Compact every records file under a store root (quiescent stores).

    Walks the truth (manifests), not the index — compaction must work
    on stores whose sidecar is missing or stale.  Returns one result
    per records file found, compacted or not.
    """
    results: List[CompactionResult] = []
    for directory, _ in iter_manifests(Path(store_root)):
        records = directory / RECORDS_NAME
        if records.exists():
            results.append(compact_records(records))
    return results


__all__ = [
    "INDEX_NAME",
    "INDEX_SCHEMA_VERSION",
    "MANIFEST_NAME",
    "RUNS_DIRNAME",
    "RUN_RECORD_NAME",
    "SHARD_MARKER",
    "CompactionResult",
    "RunEntry",
    "StoreIndex",
    "StoreIndexError",
    "collect_entries",
    "compact_records",
    "compact_store",
    "grid_entry",
    "iter_service_run_dirs",
    "read_run_record",
    "resolve_run_directory",
    "service_run_entry",
    "shard_of",
    "sharding_enabled",
]
