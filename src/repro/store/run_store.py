"""Streaming run store: crash-resilient persistence for experiment grids.

Paper-scale ``full`` runs take minutes to hours; until this subsystem
the experiment layer assembled every grid in memory and a crash lost
all of it.  A :class:`RunStore` instead streams each cell's result to
disk *as it completes* and supports **exact resume**: re-invoking the
same run skips completed cells, re-dispatches only missing or failed
ones, and reassembles results that are byte-identical to an
uninterrupted run.

On-disk layout (one directory per run label)::

    <store_dir>/<label>/
        manifest.json    # run metadata + per-cell status (atomic rewrites)
        records.jsonl    # append-only, one JSON line per completed cell

Record lines carry ``{"key", "index", "status", "payload"}`` where
``payload`` is the base64-encoded pickle of the cell's result (``"ok"``
records) or ``{"key", "index", "status": "error", "error"}`` for
failures.  The records file is the **source of truth**: a crash can at
worst tear the final line, which the loader detects (bad JSON / bad
payload) and discards, so the interrupted cell simply re-runs.  The
manifest is a derived, human-readable view — profile fingerprint,
seeds, cell keys in grid order and a per-cell status map — rewritten
atomically (temp file + ``os.replace``) after every append so external
tools (the ``repro-seu runs`` subcommand, CI artifact inspection) never
observe a torn file.

Determinism contract
--------------------
Cells are pure functions of themselves (per-cell seeds, private
evaluators — see ``experiments/common.run_cells``), so a result loaded
from a record equals the result of re-running its cell, and a resumed
run's reassembled grid — and every report rendered from it — is
byte-identical to an uninterrupted run.  The profile fingerprint
covers exactly the result-determining profile fields; execution
fields (backends, worker caps) are excluded, so a store written by a
serial run resumes on a process backend and vice versa.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"


class RunStoreError(RuntimeError):
    """Base error for run-store failures."""


class StoreMismatchError(RunStoreError):
    """Resume was requested against a store written by a different run."""


def fingerprint_payload(payload: Mapping[str, Any]) -> str:
    """A short, stable hash of a JSON-serializable mapping.

    Keys are sorted and separators fixed, so the digest depends only on
    the payload's content — not on dict insertion order or Python
    version-specific ``repr`` choices (callers must pre-stringify any
    non-JSON values deterministically).
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _graph_digest(graph: Any) -> str:
    """A short content hash of a task graph (not just its name/size).

    Two graphs with the same name and task count but different edges,
    cycles or registers must never share a resume identity — loading
    one's stored results for the other would silently violate the
    byte-identical determinism contract.
    """
    from repro.taskgraph.serialize import graph_to_dict

    try:
        return fingerprint_payload(graph_to_dict(graph))[:8]
    except Exception:
        return "opaque"


def cell_key(cell: Any, index: int) -> str:
    """A stable, human-readable identity for one grid cell.

    Built from the cell's scalar dataclass fields (the profile is
    covered by the run fingerprint instead; task graphs contribute
    their name, size and a content digest).  The grid index is part of
    the key, so even two textually identical cells at different grid
    positions get distinct keys.
    """
    parts: List[str] = []
    if is_dataclass(cell):
        for field in fields(cell):
            value = getattr(cell, field.name)
            if field.name == "profile":
                continue
            if value is None or isinstance(value, (str, int, float, bool)):
                parts.append(f"{field.name}={value}")
            elif isinstance(value, tuple) and all(
                isinstance(item, (str, int, float, bool)) for item in value
            ):
                joined = ",".join(str(item) for item in value)
                parts.append(f"{field.name}=({joined})")
            elif hasattr(value, "name") and hasattr(value, "num_tasks"):
                parts.append(
                    f"{field.name}={value.name}"
                    f"[{value.num_tasks}]#{_graph_digest(value)}"
                )
    return f"{index:03d}:{type(cell).__name__}({','.join(parts)})"


@dataclass(frozen=True)
class CellRecord:
    """One decoded line of ``records.jsonl``."""

    key: str
    index: int
    status: str  # "ok" | "error"
    payload: Any = None
    error: Optional[str] = None


def _encode_payload(value: Any) -> str:
    return base64.b64encode(pickle.dumps(value)).decode("ascii")


def _decode_payload(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class RunStore:
    """Durable, append-only result store for one experiment grid.

    Use :meth:`open` — it validates or resets the directory according
    to the resume flag; the constructor only binds paths and state.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        label: str,
        fingerprint: str,
        keys: Sequence[str],
        profile_summary: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.label = label
        self.fingerprint = fingerprint
        self.keys: Tuple[str, ...] = tuple(keys)
        self.profile_summary = dict(profile_summary or {})
        self._status: Dict[str, str] = {key: "pending" for key in self.keys}
        self._run_status = "running"
        self._executor_stats: Optional[Dict[str, Any]] = None
        self._index: Optional[Any] = None  # StoreIndex, attached on open

    # -- paths --------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def records_path(self) -> Path:
        return self.directory / RECORDS_NAME

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        *,
        label: str,
        fingerprint: str,
        keys: Sequence[str],
        profile_summary: Optional[Mapping[str, Any]] = None,
        resume: bool = False,
    ) -> "RunStore":
        """Open (and create or validate) a run store directory.

        Without ``resume`` any existing records are discarded and the
        run starts fresh.  With ``resume`` an existing manifest must
        match this run's fingerprint and cell-key list exactly —
        otherwise the store belongs to a *different* run and silently
        mixing results would break the determinism contract, so a
        :class:`StoreMismatchError` is raised instead.  Records with a
        missing or unreadable manifest under ``resume`` raise
        :class:`RunStoreError` rather than silently deleting completed
        work the caller explicitly asked to keep.
        """
        store = cls(
            directory,
            label=label,
            fingerprint=fingerprint,
            keys=keys,
            profile_summary=profile_summary,
        )
        store.directory.mkdir(parents=True, exist_ok=True)
        manifest = read_manifest(store.manifest_path)
        if resume and manifest is not None:
            if manifest.get("fingerprint") != fingerprint:
                raise StoreMismatchError(
                    f"store {store.directory} was written by fingerprint "
                    f"{manifest.get('fingerprint')!r}, this run is {fingerprint!r}; "
                    "refusing to resume across different profiles"
                )
            if list(manifest.get("cells", [])) != list(store.keys):
                raise StoreMismatchError(
                    f"store {store.directory} holds a different cell grid "
                    f"({len(manifest.get('cells', []))} cells vs {len(store.keys)}); "
                    "refusing to resume across different grids"
                )
            for record in store._scan_records():
                if record.key in store._status:
                    store._status[record.key] = (
                        "done" if record.status == "ok" else "failed"
                    )
        elif resume and store.records_path.exists():
            raise RunStoreError(
                f"cannot resume {store.directory}: records exist but "
                f"{MANIFEST_NAME} is missing or unreadable; restore the "
                "manifest or re-run without resume to start fresh"
            )
        else:
            # Fresh run: drop any stale records before the first append.
            if store.records_path.exists():
                store.records_path.unlink()
            # And any intra-cell checkpoints — scratch from a run this
            # fresh start is explicitly discarding.
            from repro.store.checkpoint import clear_checkpoints

            clear_checkpoints(store.directory)
        store._write_manifest()
        store._attach_index()
        return store

    def finalize(self) -> None:
        """Mark the run complete (or failed) in the manifest."""
        statuses = set(self._status.values())
        if statuses <= {"done"}:
            self._run_status = "complete"
        elif "failed" in statuses:
            self._run_status = "failed"
        else:
            self._run_status = "partial"
        self._write_manifest()
        self._index_refresh()

    # -- sidecar index ------------------------------------------------------

    def _attach_index(self) -> None:
        """Bind the store-root sidecar index, best-effort.

        The index is a pure cache (see :mod:`repro.store.index`): any
        failure here — locked database, read-only filesystem, the
        ``REPRO_STORE_NO_INDEX`` kill switch — degrades to "no index
        maintenance", never to a failed run.  Readers rebuild from the
        records/manifests we keep writing regardless.
        """
        if os.environ.get("REPRO_STORE_NO_INDEX", "0") not in ("", "0"):
            return
        try:
            from repro.store.index import StoreIndex

            self._index = StoreIndex.attach(self.directory.parent)
            self._index_refresh()
        except Exception:
            self._index = None

    def _index_refresh(self, key: Optional[str] = None) -> None:
        """Push this run's current state into the sidecar, best-effort."""
        if self._index is None:
            return
        try:
            if key is not None:
                self._index.update_grid_cell(
                    self.directory, self.manifest(), key, self._status[key]
                )
            else:
                from repro.store.index import grid_entry

                owner = self._index._service_owner(self.directory)
                if owner is not None:
                    from repro.store.index import service_run_entry

                    entry = service_run_entry(owner)
                else:
                    entry = grid_entry(self.directory, self.manifest())
                if entry is not None:
                    self._index.update_entry(entry)
        except Exception:
            self._index = None  # degrade once, stay quiet afterwards

    # -- records ------------------------------------------------------------

    def record_result(self, key: str, index: int, value: Any) -> None:
        """Append one completed cell's result; durable before returning."""
        self._append(
            {
                "key": key,
                "index": index,
                "status": "ok",
                "payload": _encode_payload(value),
            }
        )
        self._status[key] = "done"
        self._write_manifest()
        self._index_refresh(key)
        # The cell's final result is durable; its intra-cell scratch
        # (per-scaling checkpoints) is obsolete.
        from repro.store.checkpoint import discard_cell_checkpoint

        discard_cell_checkpoint(self.directory, index)

    def record_error(self, key: str, index: int, message: str) -> None:
        """Append one failed cell; resume re-dispatches it."""
        self._append(
            {"key": key, "index": index, "status": "error", "error": message}
        )
        self._status[key] = "failed"
        self._write_manifest()
        self._index_refresh(key)

    def load_results(self) -> Dict[str, CellRecord]:
        """Decoded ``"ok"`` records by cell key (latest record wins).

        Torn or undecodable lines — the crash signature — are skipped,
        so their cells simply count as missing and re-run.
        """
        loaded: Dict[str, CellRecord] = {}
        for record in self._scan_records(decode=True):
            if record.status == "ok":
                loaded[record.key] = record
            else:
                loaded.pop(record.key, None)
        return loaded

    def statuses(self) -> Dict[str, str]:
        """Per-cell status in grid order (``pending``/``done``/``failed``)."""
        return dict(self._status)

    def _scan_records(self, decode: bool = False) -> Iterator[CellRecord]:
        yield from scan_records(self.records_path, decode=decode)

    def _append(self, raw: Mapping[str, Any]) -> None:
        with self.records_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(raw, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- manifest -----------------------------------------------------------

    def set_executor_stats(self, stats: Optional[Mapping[str, Any]]) -> None:
        """Attach executor utilization stats to the manifest.

        Stats are observability, not results: they vary run to run
        (worker interleaving, steal counts), so they live only in the
        manifest — never in records or rendered reports — and do not
        participate in the resume identity.  The next manifest rewrite
        (``finalize`` or any record append) persists them.
        """
        self._executor_stats = dict(stats) if stats is not None else None

    def manifest(self) -> Dict[str, Any]:
        """The manifest document (what ``manifest.json`` holds)."""
        done = sum(1 for status in self._status.values() if status == "done")
        failed = sum(1 for status in self._status.values() if status == "failed")
        document = {
            "format": FORMAT_VERSION,
            "label": self.label,
            "fingerprint": self.fingerprint,
            "profile": self.profile_summary,
            "cells": list(self.keys),
            "status": dict(self._status),
            "completed": done,
            "failed": failed,
            "total": len(self.keys),
            "run_status": self._run_status,
        }
        if self._executor_stats is not None:
            document["executor"] = dict(self._executor_stats)
        return document

    def _write_manifest(self) -> None:
        document = json.dumps(self.manifest(), indent=2, sort_keys=True)
        temporary = self.manifest_path.with_suffix(".json.tmp")
        temporary.write_text(document + "\n", encoding="utf-8")
        os.replace(temporary, self.manifest_path)


def scan_records(
    records_path: Union[str, Path], decode: bool = False
) -> Iterator[CellRecord]:
    """Yield the decodable records of one ``records.jsonl``.

    Concurrent-reader safe: the file may be mid-append by a live
    writer in another thread or process (the service polls stores the
    executor is still streaming to).  A torn tail, a half-written
    base64 payload, or the file disappearing between ``exists`` and
    ``open`` (a fresh run unlinking stale records) all degrade to
    "fewer records", never to an exception.
    """
    records_path = Path(records_path)
    try:
        handle = records_path.open("r", encoding="utf-8")
    except OSError:
        return
    with handle:
        while True:
            try:
                line = handle.readline()
            except (OSError, UnicodeDecodeError):
                return  # reader raced a truncation/rewrite: stop cleanly
            if not line:
                return
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of an interrupted append
            if not isinstance(raw, dict) or "key" not in raw:
                continue
            status = raw.get("status", "error")
            payload = None
            if status == "ok":
                if decode:
                    try:
                        payload = _decode_payload(raw.get("payload", ""))
                    except Exception:
                        continue  # undecodable payload: treat as missing
                elif "payload" not in raw:
                    continue
            yield CellRecord(
                key=raw["key"],
                index=int(raw.get("index", -1)),
                status=status,
                payload=payload,
                error=raw.get("error"),
            )


def read_manifest(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Parse one ``manifest.json``; ``None`` when absent or unreadable.

    Manifests are rewritten atomically (temp file + ``os.replace``), so
    a concurrent reader never sees a torn document — but it may race
    the file's creation or deletion, which reads as "absent" here
    rather than raising.
    """
    path = Path(path)
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return manifest if isinstance(manifest, dict) else None


def iter_manifests(
    store_dir: Union[str, Path], max_depth: int = 4
) -> Iterator[Tuple[Path, Dict[str, Any]]]:
    """Yield ``(run_directory, manifest)`` for every run under a store root.

    Accepts a store root (runs in subdirectories), a single run
    directory holding ``manifest.json`` directly, or a service store
    whose grids live deeper (``runs/<run id>/<label>/manifest.json``):
    directories without a manifest are descended into, up to
    ``max_depth`` levels, and a directory holding a manifest is
    yielded without descending further.  Concurrent-reader safe —
    children appearing or vanishing mid-walk (a writer creating the
    next run directory) are skipped, not raised.
    """
    root = Path(store_dir)
    direct = read_manifest(root / MANIFEST_NAME)
    if direct is not None:
        yield root, direct
        return
    if max_depth <= 0:
        return
    try:
        children = sorted(root.iterdir())
    except OSError:
        return
    for child in children:
        try:
            if not child.is_dir():
                continue
        except OSError:
            continue
        yield from iter_manifests(child, max_depth=max_depth - 1)
