"""Application model: directed acyclic task graphs with register sets.

An application is a DAG ``G(V, E)`` (Section II-B of the paper): nodes
are computational tasks annotated with execution cost (clock cycles)
and a set of registers they occupy; edges carry inter-task
communication cost (clock cycles for a 32-bit inter-core transfer).

Provided graphs:

* :func:`~repro.taskgraph.mpeg2.mpeg2_decoder` — the 11-task MPEG-2
  video decoder of Fig. 2.
* :func:`~repro.taskgraph.examples.fig8_example` — the 6-task worked
  example of Fig. 8 with its exact register map.
* :func:`~repro.taskgraph.random_graphs.random_task_graph` — the
  random graphs of Section V (Table III).
* :mod:`~repro.taskgraph.generators` — extra synthetic families
  (pipelines, fork-join, layered, streaming split/merge, TGFF-style
  random DAGs up to thousands of tasks) for testing and benchmarks.
"""

from repro.taskgraph.graph import Task, TaskGraph
from repro.taskgraph.compiled import CompiledTaskGraph
from repro.taskgraph.registers import Register, RegisterMap
from repro.taskgraph.mpeg2 import mpeg2_decoder, MPEG2_COST_UNIT_CYCLES
from repro.taskgraph.examples import fig8_example, FIG8_COST_UNIT_CYCLES
from repro.taskgraph.random_graphs import RandomGraphConfig, random_task_graph
from repro.taskgraph.generators import (
    fork_join_graph,
    layered_graph,
    pipeline_graph,
    streaming_pipeline_graph,
    tgff_random_graph,
)
from repro.taskgraph.serialize import graph_from_dict, graph_to_dict
from repro.taskgraph.workloads import (
    WORKLOADS,
    automotive_cruise_control,
    fft8_graph,
    jpeg_encoder,
)

__all__ = [
    "CompiledTaskGraph",
    "FIG8_COST_UNIT_CYCLES",
    "MPEG2_COST_UNIT_CYCLES",
    "RandomGraphConfig",
    "Register",
    "RegisterMap",
    "Task",
    "TaskGraph",
    "WORKLOADS",
    "automotive_cruise_control",
    "fft8_graph",
    "fig8_example",
    "fork_join_graph",
    "jpeg_encoder",
    "graph_from_dict",
    "graph_to_dict",
    "layered_graph",
    "mpeg2_decoder",
    "pipeline_graph",
    "random_task_graph",
    "streaming_pipeline_graph",
    "tgff_random_graph",
]
