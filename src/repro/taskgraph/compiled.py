"""Compiled, integer-indexed view of a :class:`~repro.taskgraph.graph.TaskGraph`.

The evaluation hot path (list scheduling, Eq. 3-8 metrics, mapping
search) historically walked the graph through its string-keyed dicts:
``task_names()`` tuples, per-call ``predecessors()`` allocations and a
fresh ``RegisterMap`` per evaluation.  A :class:`CompiledTaskGraph`
lowers the graph once into contiguous arrays:

* ``names`` / ``index`` — the task name <-> dense integer id bijection
  (insertion order, matching ``task_names()``);
* ``cycles`` — per-task computation cost;
* CSR-style adjacency — ``pred_ptr``/``pred_idx``/``pred_comm`` and
  ``succ_ptr``/``succ_idx``/``succ_comm``, preserving the graph's edge
  insertion order so schedules that depend on iteration order (the
  shared-bus serialization) are bit-for-bit reproducible;
* ``bottom_levels`` — the list-scheduling priorities, precomputed once
  instead of per :class:`~repro.sched.list_scheduler.ListScheduler`;
* per-task register-set **bitmasks** — every distinct register gets one
  bit, so the Eq. (8) union over a core's tasks is a bitwise OR and the
  bit-cardinality query is a popcount-style sum over set bits.

The view is immutable and cached on the graph (see
:meth:`~repro.taskgraph.graph.TaskGraph.compiled`); any graph mutation
invalidates the cache.  All values are plain Python ints/floats — no
third-party array dependency — which keeps the view picklable for the
process execution backend.
"""

from __future__ import annotations

import operator
import random
from functools import reduce
from typing import Dict, List, Sequence, Tuple

from repro.taskgraph.registers import Register

#: Seed base for the per-graph signature hash tables.  The tables only
#: have to be deterministic per (graph shape, core count) so that the
#: same signature always hashes identically within a process *and*
#: across the process execution backend's workers; the constant itself
#: is arbitrary.
_SIGNATURE_SEED = 0x5EA7C0DE


class CompiledTaskGraph:
    """Immutable indexed arrays for one :class:`TaskGraph` snapshot.

    Build via :meth:`TaskGraph.compiled` (cached) rather than directly;
    construction walks the whole graph once.
    """

    __slots__ = (
        "graph_name",
        "num_tasks",
        "names",
        "index",
        "cycles",
        "pred_ptr",
        "pred_idx",
        "pred_comm",
        "succ_ptr",
        "succ_idx",
        "succ_comm",
        "topo_order",
        "bottom_levels",
        "entry_indices",
        "exit_indices",
        "registers",
        "register_bits",
        "task_register_masks",
        "total_cycles",
        "critical_path_cycles",
        "_mask_bits_cache",
        "_signature_tables",
        "_scaled_cycles_cache",
    )

    def __init__(self, graph) -> None:
        graph.validate()
        self.graph_name: str = graph.name
        names: Tuple[str, ...] = graph.task_names()
        self.names = names
        n = len(names)
        self.num_tasks = n
        index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self.index = index
        self.cycles: Tuple[int, ...] = tuple(graph.task(name).cycles for name in names)
        self.total_cycles = sum(self.cycles)

        # -- CSR adjacency (edge insertion order preserved) ------------------
        pred_ptr: List[int] = [0]
        pred_idx: List[int] = []
        pred_comm: List[int] = []
        succ_ptr: List[int] = [0]
        succ_idx: List[int] = []
        succ_comm: List[int] = []
        for name in names:
            for producer in graph.predecessors(name):
                pred_idx.append(index[producer])
                pred_comm.append(graph.comm_cycles(producer, name))
            pred_ptr.append(len(pred_idx))
        for name in names:
            for consumer in graph.successors(name):
                succ_idx.append(index[consumer])
                succ_comm.append(graph.comm_cycles(name, consumer))
            succ_ptr.append(len(succ_idx))
        self.pred_ptr = tuple(pred_ptr)
        self.pred_idx = tuple(pred_idx)
        self.pred_comm = tuple(pred_comm)
        self.succ_ptr = tuple(succ_ptr)
        self.succ_idx = tuple(succ_idx)
        self.succ_comm = tuple(succ_comm)

        self.topo_order: Tuple[int, ...] = tuple(
            index[name] for name in graph.topological_order()
        )
        self.entry_indices: Tuple[int, ...] = tuple(
            i for i in range(n) if pred_ptr[i] == pred_ptr[i + 1]
        )
        self.exit_indices: Tuple[int, ...] = tuple(
            i for i in range(n) if succ_ptr[i] == succ_ptr[i + 1]
        )

        # -- list-scheduling priorities (identical ints to bottom_levels()) --
        levels = [0] * n
        for i in reversed(self.topo_order):
            best_tail = 0
            for e in range(succ_ptr[i], succ_ptr[i + 1]):
                tail = succ_comm[e] + levels[succ_idx[e]]
                if tail > best_tail:
                    best_tail = tail
            levels[i] = self.cycles[i] + best_tail
        self.bottom_levels: Tuple[int, ...] = tuple(levels)
        self.critical_path_cycles = max(
            (levels[i] for i in self.entry_indices), default=0
        )

        # -- register bitmasks ----------------------------------------------
        # Distinct registers get stable bit positions (sorted by name/bits,
        # the Register dataclass ordering) so masks are deterministic for a
        # given graph regardless of task insertion order.
        all_registers = set()
        per_task = []
        for name in names:
            regs = graph.registers_of(name)
            per_task.append(regs)
            all_registers.update(regs)
        ordered: Tuple[Register, ...] = tuple(sorted(all_registers))
        self.registers = ordered
        self.register_bits: Tuple[int, ...] = tuple(r.bits for r in ordered)
        position = {register: bit for bit, register in enumerate(ordered)}
        masks: List[int] = []
        for regs in per_task:
            mask = 0
            for register in regs:
                mask |= 1 << position[register]
            masks.append(mask)
        self.task_register_masks: Tuple[int, ...] = tuple(masks)
        self._mask_bits_cache: Dict[int, int] = {0: 0}
        self._signature_tables: Dict[int, List[Tuple[int, ...]]] = {}
        self._scaled_cycles_cache: Dict[float, Tuple[int, ...]] = {}

    # -- queries -------------------------------------------------------------

    def cycles_for_scale(self, cycle_scale: float) -> Tuple[int, ...]:
        """Per-task cycle row for a core type scaling cycles by
        ``cycle_scale`` (``max(1, round(c * scale))`` per task).

        Scale ``1.0`` returns the base :attr:`cycles` tuple *object*
        itself — the identity that keeps single-type platforms on the
        seed path bit for bit.  Other scales are memoized per compiled
        view, so the per-(task, core-type) table costs one pass per
        type, not one per schedule.
        """
        if cycle_scale == 1.0:
            return self.cycles
        row = self._scaled_cycles_cache.get(cycle_scale)
        if row is None:
            if cycle_scale <= 0.0:
                raise ValueError(
                    f"cycle_scale must be positive, got {cycle_scale}"
                )
            row = tuple(
                max(1, round(c * cycle_scale)) for c in self.cycles
            )
            self._scaled_cycles_cache[cycle_scale] = row
        return row

    def cycles_for_cores(
        self, cycle_scales: Sequence[float]
    ) -> Tuple[Tuple[int, ...], ...]:
        """Per-core cycle rows (``rows[core][task]``) for per-core scale
        factors.  Cores sharing a scale share one row object."""
        return tuple(self.cycles_for_scale(scale) for scale in cycle_scales)

    def mask_bits(self, mask: int) -> int:
        """Bit-cardinality of a register mask: Eq. (8)'s ``R_i`` in bits.

        Memoized — mapping search revisits the same per-core unions
        constantly.
        """
        cached = self._mask_bits_cache.get(mask)
        if cached is not None:
            return cached
        bits = 0
        register_bits = self.register_bits
        remaining = mask
        while remaining:
            low = remaining & -remaining
            bits += register_bits[low.bit_length() - 1]
            remaining ^= low
        if len(self._mask_bits_cache) > 1 << 16:  # unbounded search safety valve
            self._mask_bits_cache.clear()
            self._mask_bits_cache[0] = 0
        self._mask_bits_cache[mask] = bits
        return bits

    def union_bits(self, task_indices: Sequence[int]) -> int:
        """``R_i`` for a core holding exactly ``task_indices``."""
        mask = 0
        task_masks = self.task_register_masks
        for i in task_indices:
            mask |= task_masks[i]
        return self.mask_bits(mask)

    def core_masks(self, cores: Sequence[int], num_cores: int) -> List[int]:
        """Per-core register-union masks for a dense core assignment."""
        masks = [0] * num_cores
        task_masks = self.task_register_masks
        for i, core in enumerate(cores):
            masks[core] |= task_masks[i]
        return masks

    def signature(self, mapping) -> Tuple[int, ...]:
        """Canonical cache key: the core of every task in index order.

        Raises ``ValueError`` (same wording as
        ``Mapping.validate_against``) when the mapping does not cover
        exactly this graph's tasks.
        """
        return tuple(mapping.core_index_list(self.names))

    def signature_table(self, num_cores: int) -> List[Tuple[int, ...]]:
        """Zobrist-style hash table for signatures over ``num_cores``.

        ``table[i][c]`` is a 62-bit value for "task *i* on core *c*";
        the hash of a signature is the XOR of its entries, which makes
        it exactly maintainable under single-move deltas
        (``h ^= table[i][old] ^ table[i][new]``) — the property the
        search inner loop's incremental cache keys rest on.  Built
        lazily per core count and cached; deterministic for a given
        (task count, core count), so hashes agree across processes.
        """
        table = self._signature_tables.get(num_cores)
        if table is None:
            rnd = random.Random(
                _SIGNATURE_SEED ^ (self.num_tasks * 0x9E3779B1) ^ num_cores
            )
            table = [
                tuple(rnd.getrandbits(62) for _ in range(num_cores))
                for _ in range(self.num_tasks)
            ]
            self._signature_tables[num_cores] = table
        return table

    def signature_hash(self, signature: Sequence[int], num_cores: int) -> int:
        """Full (rebuild-path) hash of a signature: XOR over its entries.

        The incremental maintainers (:class:`~repro.mapping.metrics.
        SignatureTracker`) must agree with this bit for bit — the
        signature-parity suite asserts it after arbitrary move/swap/
        rebuild sequences.
        """
        if len(signature) != self.num_tasks:
            raise ValueError(
                f"signature has {len(signature)} entries for "
                f"{self.num_tasks} tasks"
            )
        # C-level per-element work: map(getitem, table, signature)
        # yields table[i][signature[i]] without a Python-level loop.
        return reduce(
            operator.xor,
            map(operator.getitem, self.signature_table(num_cores), signature),
            0,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledTaskGraph({self.graph_name!r}, tasks={self.num_tasks}, "
            f"edges={len(self.pred_idx)}, registers={len(self.registers)})"
        )
