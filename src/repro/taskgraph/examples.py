"""The six-task worked example of Fig. 8.

The paper illustrates the soft error-aware mapping algorithms on a
six-task graph (all costs multiples of 60e4 cycles) with an explicit
register table (Fig. 8(b)-(c)), three cores scaled (s1, s2, s3) =
(1, 2, 2) and a deadline of 75 ms.

Task costs and the register table are verbatim from the figure.  The
figure's adjacency list is not printed explicitly; edges follow the
drawn structure — t1 forks to t2/t3, t2 feeds t4 and t6, t3 feeds t4
and t5, with t4/t5/t6 the exit row — which makes the paper's final
mapping (core 1: t1,t3,t6; core 2: t2,t4; core 3: t5 at s = (1,2,2))
meet the 75 ms deadline, as the walk-through requires.

Communication costs use a quarter of the computation cost unit.  The
paper's platform has dedicated inter-core links whose transfers
overlap computation; our timing model charges every cross-core
receive to the consumer core (Eq. 7), so full-unit transfer costs
would double-count and push the published mapping past its own
deadline.  The quarter-unit keeps the printed relative cost pattern
while preserving the example's feasibility story.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.registers import RegisterMap

#: One computation cost unit of Fig. 8, in clock cycles.
FIG8_COST_UNIT_CYCLES = 600_000

#: One communication cost unit (see module docstring), in clock cycles.
FIG8_COMM_UNIT_CYCLES = 150_000

#: Deadline used by the worked example.
FIG8_DEADLINE_S = 0.075

#: Scaling coefficients used by the worked example, cores 1..3.
FIG8_SCALING = (1, 2, 2)

_TASKS: List[Tuple[str, int]] = [
    ("t1", 5),
    ("t2", 4),
    ("t3", 4),
    ("t4", 5),
    ("t5", 6),
    ("t6", 4),
]

_EDGES: List[Tuple[str, str, int]] = [
    ("t1", "t2", 1),
    ("t1", "t3", 2),
    ("t2", "t4", 3),
    ("t2", "t6", 1),
    ("t3", "t4", 2),
    ("t3", "t5", 1),
]

#: Register sizes in bits, Fig. 8(b), verbatim.
_REGISTER_BITS: Dict[str, int] = {
    "r1": 4096,
    "r2": 2048,
    "r3": 2048,
    "r4": 5120,
    "r5": 4096,
    "r6": 2048,
    "r7": 2048,
    "r8": 4096,
    "r9": 2048,
}

#: Task register usage, Fig. 8(c), verbatim.
_TASK_REGISTERS: Dict[str, Tuple[str, ...]] = {
    "t1": ("r1", "r2", "r3"),
    "t2": ("r2", "r4", "r5", "r6"),
    "t3": ("r4", "r5", "r6"),
    "t4": ("r5", "r6", "r7"),
    "t5": ("r6", "r7", "r8"),
    "t6": ("r7", "r8", "r9"),
}


def fig8_register_map() -> RegisterMap:
    """The exact register map of Fig. 8(b)-(c)."""
    return RegisterMap.from_bit_sizes(_TASK_REGISTERS, _REGISTER_BITS)


def fig8_example() -> TaskGraph:
    """The six-task example graph of Fig. 8(a), costs in clock cycles."""
    graph = TaskGraph(name="fig8-example")
    register_map = fig8_register_map()
    for name, units in _TASKS:
        graph.add_task(
            name,
            cycles=units * FIG8_COST_UNIT_CYCLES,
            registers=register_map.registers_of(name),
        )
    for producer, consumer, units in _EDGES:
        graph.add_edge(producer, consumer, comm_cycles=units * FIG8_COMM_UNIT_CYCLES)
    graph.validate()
    return graph


def fig8_paper_mapping():
    """The final optimized mapping of the walk-through (Fig. 8(i)).

    Core 1 (s=1): t1, t3, t6; core 2 (s=2): t2, t4; core 3 (s=2): t5.
    """
    from repro.mapping.mapping import Mapping

    return Mapping.from_groups([["t1", "t3", "t6"], ["t2", "t4"], ["t5"]])
