"""Additional synthetic task-graph families.

These are not from the paper; they supply well-understood structures
for unit tests, property-based tests and micro-benchmarks:

* :func:`pipeline_graph` — a linear chain (no parallelism; T_M is
  mapping-invariant up to communication).
* :func:`fork_join_graph` — one source fanning out to ``width``
  parallel branches joining at a sink (maximal parallelism).
* :func:`layered_graph` — ``depth`` layers of ``width`` tasks with
  dense layer-to-layer dependencies (typical DSP/streaming shape).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.registers import Register


def _uniform_cycles(rng: Optional[random.Random], base: int, spread: int) -> int:
    if rng is None or spread <= 0:
        return base
    return base + rng.randint(0, spread)


def pipeline_graph(
    num_tasks: int,
    task_cycles: int = 1_000_000,
    comm_cycles: int = 100_000,
    register_bits: int = 2000,
    shared_bits: int = 1000,
    seed: Optional[int] = None,
    cycles_spread: int = 0,
) -> TaskGraph:
    """A linear pipeline ``t1 -> t2 -> ... -> tN``.

    Consecutive tasks share a ``shared_bits`` register block (the stage
    buffer), so co-locating neighbours reduces register usage.
    """
    if num_tasks < 1:
        raise ValueError("pipeline needs at least one task")
    rng = random.Random(seed) if cycles_spread else None
    graph = TaskGraph(name=f"pipeline-{num_tasks}")
    for index in range(1, num_tasks + 1):
        graph.add_task(
            f"t{index}",
            cycles=_uniform_cycles(rng, task_cycles, cycles_spread),
            private_register_bits=register_bits,
        )
    for index in range(1, num_tasks):
        producer, consumer = f"t{index}", f"t{index + 1}"
        graph.add_edge(producer, consumer, comm_cycles=comm_cycles)
        if shared_bits:
            buffer = Register(name=f"stage{index}.buffer", bits=shared_bits)
            graph.attach_registers(producer, [buffer])
            graph.attach_registers(consumer, [buffer])
    graph.validate()
    return graph


def fork_join_graph(
    width: int,
    branch_cycles: int = 1_000_000,
    comm_cycles: int = 100_000,
    register_bits: int = 2000,
    shared_bits: int = 1000,
    seed: Optional[int] = None,
    cycles_spread: int = 0,
) -> TaskGraph:
    """A fork-join graph: ``source -> {b1..bW} -> sink``.

    Branches share a block with the source (the scattered input), so
    spreading them duplicates it.
    """
    if width < 1:
        raise ValueError("fork-join needs at least one branch")
    rng = random.Random(seed) if cycles_spread else None
    graph = TaskGraph(name=f"forkjoin-{width}")
    scatter = Register(name="scatter.buffer", bits=shared_bits) if shared_bits else None
    graph.add_task(
        "source",
        cycles=max(branch_cycles // 4, 1),
        private_register_bits=register_bits,
        registers=[scatter] if scatter else None,
    )
    graph.add_task("sink", cycles=max(branch_cycles // 4, 1), private_register_bits=register_bits)
    for index in range(1, width + 1):
        name = f"b{index}"
        graph.add_task(
            name,
            cycles=_uniform_cycles(rng, branch_cycles, cycles_spread),
            private_register_bits=register_bits,
            registers=[scatter] if scatter else None,
        )
        graph.add_edge("source", name, comm_cycles=comm_cycles)
        graph.add_edge(name, "sink", comm_cycles=comm_cycles)
    graph.validate()
    return graph


def layered_graph(
    depth: int,
    width: int,
    task_cycles: int = 1_000_000,
    comm_cycles: int = 100_000,
    register_bits: int = 2000,
    shared_bits: int = 800,
    edge_probability: float = 0.6,
    seed: Optional[int] = None,
) -> TaskGraph:
    """``depth`` layers of ``width`` tasks with random inter-layer edges.

    Every task in layer ``l+1`` keeps at least one predecessor in layer
    ``l``.  Edges carry shared buffers like the other generators.
    """
    if depth < 1 or width < 1:
        raise ValueError("depth and width must be positive")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = TaskGraph(name=f"layered-{depth}x{width}")
    for layer in range(depth):
        for slot in range(width):
            graph.add_task(
                f"l{layer}n{slot}",
                cycles=task_cycles + rng.randint(0, task_cycles // 2),
                private_register_bits=register_bits,
            )
    for layer in range(depth - 1):
        for slot in range(width):
            consumer = f"l{layer + 1}n{slot}"
            producers = [
                f"l{layer}n{src}"
                for src in range(width)
                if rng.random() < edge_probability
            ]
            if not producers:
                producers = [f"l{layer}n{rng.randrange(width)}"]
            for producer in producers:
                graph.add_edge(producer, consumer, comm_cycles=comm_cycles)
                if shared_bits:
                    buffer = Register(name=f"{producer}->{consumer}.buffer", bits=shared_bits)
                    graph.attach_registers(producer, [buffer])
                    graph.attach_registers(consumer, [buffer])
    graph.validate()
    return graph
