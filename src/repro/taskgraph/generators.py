"""Additional synthetic task-graph families.

These are not from the paper; they supply well-understood structures
for unit tests, property-based tests and micro-benchmarks:

* :func:`pipeline_graph` — a linear chain (no parallelism; T_M is
  mapping-invariant up to communication).
* :func:`fork_join_graph` — one source fanning out to ``width``
  parallel branches joining at a sink (maximal parallelism).
* :func:`layered_graph` — ``depth`` layers of ``width`` tasks with
  dense layer-to-layer dependencies (typical DSP/streaming shape).
* :func:`streaming_pipeline_graph` — a split/compute/merge streaming
  application: pipeline stages with per-stage data parallelism and
  stage-buffer registers (the shape heterogeneous big/little platforms
  exercise best: wide stages want many cheap cores, serial split/merge
  stages want one fast core).
* :func:`tgff_random_graph` — a TGFF-style seeded random DAG scaling
  to thousands of tasks: series-parallel layer skeleton, random
  fan-in/fan-out, log-uniform task weights, sparse shared registers.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.registers import Register


def _uniform_cycles(rng: Optional[random.Random], base: int, spread: int) -> int:
    if rng is None or spread <= 0:
        return base
    return base + rng.randint(0, spread)


def pipeline_graph(
    num_tasks: int,
    task_cycles: int = 1_000_000,
    comm_cycles: int = 100_000,
    register_bits: int = 2000,
    shared_bits: int = 1000,
    seed: Optional[int] = None,
    cycles_spread: int = 0,
) -> TaskGraph:
    """A linear pipeline ``t1 -> t2 -> ... -> tN``.

    Consecutive tasks share a ``shared_bits`` register block (the stage
    buffer), so co-locating neighbours reduces register usage.
    """
    if num_tasks < 1:
        raise ValueError("pipeline needs at least one task")
    rng = random.Random(seed) if cycles_spread else None
    graph = TaskGraph(name=f"pipeline-{num_tasks}")
    for index in range(1, num_tasks + 1):
        graph.add_task(
            f"t{index}",
            cycles=_uniform_cycles(rng, task_cycles, cycles_spread),
            private_register_bits=register_bits,
        )
    for index in range(1, num_tasks):
        producer, consumer = f"t{index}", f"t{index + 1}"
        graph.add_edge(producer, consumer, comm_cycles=comm_cycles)
        if shared_bits:
            buffer = Register(name=f"stage{index}.buffer", bits=shared_bits)
            graph.attach_registers(producer, [buffer])
            graph.attach_registers(consumer, [buffer])
    graph.validate()
    return graph


def fork_join_graph(
    width: int,
    branch_cycles: int = 1_000_000,
    comm_cycles: int = 100_000,
    register_bits: int = 2000,
    shared_bits: int = 1000,
    seed: Optional[int] = None,
    cycles_spread: int = 0,
) -> TaskGraph:
    """A fork-join graph: ``source -> {b1..bW} -> sink``.

    Branches share a block with the source (the scattered input), so
    spreading them duplicates it.
    """
    if width < 1:
        raise ValueError("fork-join needs at least one branch")
    rng = random.Random(seed) if cycles_spread else None
    graph = TaskGraph(name=f"forkjoin-{width}")
    scatter = Register(name="scatter.buffer", bits=shared_bits) if shared_bits else None
    graph.add_task(
        "source",
        cycles=max(branch_cycles // 4, 1),
        private_register_bits=register_bits,
        registers=[scatter] if scatter else None,
    )
    graph.add_task("sink", cycles=max(branch_cycles // 4, 1), private_register_bits=register_bits)
    for index in range(1, width + 1):
        name = f"b{index}"
        graph.add_task(
            name,
            cycles=_uniform_cycles(rng, branch_cycles, cycles_spread),
            private_register_bits=register_bits,
            registers=[scatter] if scatter else None,
        )
        graph.add_edge("source", name, comm_cycles=comm_cycles)
        graph.add_edge(name, "sink", comm_cycles=comm_cycles)
    graph.validate()
    return graph


def layered_graph(
    depth: int,
    width: int,
    task_cycles: int = 1_000_000,
    comm_cycles: int = 100_000,
    register_bits: int = 2000,
    shared_bits: int = 800,
    edge_probability: float = 0.6,
    seed: Optional[int] = None,
) -> TaskGraph:
    """``depth`` layers of ``width`` tasks with random inter-layer edges.

    Every task in layer ``l+1`` keeps at least one predecessor in layer
    ``l``.  Edges carry shared buffers like the other generators.
    """
    if depth < 1 or width < 1:
        raise ValueError("depth and width must be positive")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = TaskGraph(name=f"layered-{depth}x{width}")
    for layer in range(depth):
        for slot in range(width):
            graph.add_task(
                f"l{layer}n{slot}",
                cycles=task_cycles + rng.randint(0, task_cycles // 2),
                private_register_bits=register_bits,
            )
    for layer in range(depth - 1):
        for slot in range(width):
            consumer = f"l{layer + 1}n{slot}"
            producers = [
                f"l{layer}n{src}"
                for src in range(width)
                if rng.random() < edge_probability
            ]
            if not producers:
                producers = [f"l{layer}n{rng.randrange(width)}"]
            for producer in producers:
                graph.add_edge(producer, consumer, comm_cycles=comm_cycles)
                if shared_bits:
                    buffer = Register(name=f"{producer}->{consumer}.buffer", bits=shared_bits)
                    graph.attach_registers(producer, [buffer])
                    graph.attach_registers(consumer, [buffer])
    graph.validate()
    return graph


def streaming_pipeline_graph(
    stages: int,
    parallelism: int,
    task_cycles: int = 500_000,
    comm_cycles: int = 50_000,
    register_bits: int = 1500,
    shared_bits: int = 800,
    seed: Optional[int] = None,
    cycles_spread: int = 250_000,
) -> TaskGraph:
    """A split/compute/merge streaming pipeline.

    Each of the ``stages`` compute stages holds ``parallelism`` data-
    parallel workers fed by a serial splitter and drained by a serial
    merger (``split0 -> {s0w0..} -> merge0 = split1 -> ...``).  The
    mergers double as the next stage's splitters, so the graph is the
    classic streaming skeleton: serial bottleneck tasks alternating
    with wide parallel regions.  Workers of a stage share that stage's
    input buffer register (scattered data), and each merger shares an
    output buffer with its workers — co-locating a stage saves
    register exposure, spreading it wins makespan.

    Deterministic for a given ``seed``; worker cycle counts vary by
    ``cycles_spread`` so stages are imbalanced (a scheduler stressor).
    """
    if stages < 1 or parallelism < 1:
        raise ValueError("stages and parallelism must be positive")
    rng = random.Random(seed) if cycles_spread else None
    graph = TaskGraph(name=f"streaming-{stages}x{parallelism}")
    serial_cycles = max(task_cycles // 4, 1)
    graph.add_task("split0", cycles=serial_cycles, private_register_bits=register_bits)
    previous = "split0"
    for stage in range(stages):
        scatter = (
            Register(name=f"stage{stage}.in", bits=shared_bits) if shared_bits else None
        )
        gather = (
            Register(name=f"stage{stage}.out", bits=shared_bits) if shared_bits else None
        )
        if scatter is not None:
            graph.attach_registers(previous, [scatter])
        merger = f"merge{stage}"
        graph.add_task(
            merger,
            cycles=serial_cycles,
            private_register_bits=register_bits,
            registers=[gather] if gather else None,
        )
        for worker in range(parallelism):
            name = f"s{stage}w{worker}"
            registers = [r for r in (scatter, gather) if r is not None]
            graph.add_task(
                name,
                cycles=_uniform_cycles(rng, task_cycles, cycles_spread),
                private_register_bits=register_bits,
                registers=registers or None,
            )
            graph.add_edge(previous, name, comm_cycles=comm_cycles)
            graph.add_edge(name, merger, comm_cycles=comm_cycles)
        previous = merger
    graph.validate()
    return graph


def tgff_random_graph(
    num_tasks: int,
    seed: int = 0,
    fan_out: int = 3,
    min_cycles: int = 50_000,
    max_cycles: int = 2_000_000,
    comm_cycles: int = 40_000,
    register_bits: int = 1200,
    shared_register_probability: float = 0.15,
    shared_bits: int = 600,
) -> TaskGraph:
    """A TGFF-style seeded random DAG for ``num_tasks`` tasks.

    Mirrors the classic TGFF generator's shape without the tool: tasks
    are laid down in a forward pass where each new task picks 1 to
    ``fan_out`` predecessors from a recency-biased window of existing
    tasks (yielding the series-parallel, mostly-local structure TGFF
    produces), task weights are log-uniform in ``[min_cycles,
    max_cycles]`` (heavy-tailed, like real kernels), and a sparse
    fraction of edges carries a shared register block.  Scales to the
    500-5000-task range the heterogeneous scheduling benches sweep;
    construction is O(tasks * fan_out) and fully deterministic per
    ``(num_tasks, seed)``.
    """
    if num_tasks < 1:
        raise ValueError("num_tasks must be positive")
    if fan_out < 1:
        raise ValueError("fan_out must be positive")
    if not 0.0 <= shared_register_probability <= 1.0:
        raise ValueError("shared_register_probability must be in [0, 1]")
    if not 0 < min_cycles <= max_cycles:
        raise ValueError("need 0 < min_cycles <= max_cycles")
    rng = random.Random(seed)
    graph = TaskGraph(name=f"tgff-{num_tasks}-s{seed}")
    log_lo, log_hi = math.log(min_cycles), math.log(max_cycles)
    names = []
    for index in range(num_tasks):
        name = f"t{index}"
        cycles = int(round(math.exp(rng.uniform(log_lo, log_hi))))
        graph.add_task(name, cycles=cycles, private_register_bits=register_bits)
        if index:
            # Recency-biased predecessor window: TGFF chains stay
            # mostly local, with occasional long back edges.
            window = min(index, 4 * fan_out)
            count = rng.randint(1, min(fan_out, index))
            choices = rng.sample(range(index - window, index), k=min(count, window))
            for producer_index in sorted(choices):
                producer = names[producer_index]
                graph.add_edge(producer, name, comm_cycles=comm_cycles)
                if shared_bits and rng.random() < shared_register_probability:
                    buffer = Register(
                        name=f"{producer}->{name}.buffer", bits=shared_bits
                    )
                    graph.attach_registers(producer, [buffer])
                    graph.attach_registers(name, [buffer])
        names.append(name)
    graph.validate()
    return graph
