"""Directed acyclic task graph (Section II-B of the paper).

A :class:`TaskGraph` holds :class:`Task` nodes (computation cost in
clock cycles, plus the registers the task occupies) and weighted edges
(inter-task communication cost in clock cycles, charged only when the
producer and consumer land on different cores).

The class is self-contained (no networkx dependency in the hot path)
but can export to ``networkx.DiGraph`` for analysis and plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.taskgraph.registers import Register, RegisterMap


@dataclass(frozen=True)
class Task:
    """One computational task.

    Attributes
    ----------
    name:
        Unique identifier within the graph (e.g. ``"t7"``).
    cycles:
        Execution cost in clock cycles on a core at nominal frequency.
    label:
        Optional human-readable description (e.g. ``"Inv. DCT by row"``).
    """

    name: str
    cycles: int
    label: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.cycles <= 0:
            raise ValueError(f"task {self.name!r}: cycles must be positive, got {self.cycles}")


class TaskGraph:
    """A directed acyclic application task graph.

    Parameters
    ----------
    name:
        Graph label used in reports.
    register_map:
        Optional :class:`RegisterMap`; when omitted an empty map is
        created and tasks added via :meth:`add_task` may declare a
        private register size.

    Notes
    -----
    Edges are directed dependency edges ``producer -> consumer`` with a
    communication cost in clock cycles.  Acyclicity is enforced lazily:
    :meth:`topological_order` (and everything built on it) raises
    ``ValueError`` on a cycle, and :meth:`validate` checks explicitly.
    """

    def __init__(self, name: str = "taskgraph", register_map: Optional[RegisterMap] = None) -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self._succ: Dict[str, Dict[str, int]] = {}
        self._pred: Dict[str, Dict[str, int]] = {}
        self._registers: Dict[str, Set[Register]] = {}
        if register_map is not None:
            for task_name in register_map.tasks():
                self._registers[task_name] = set(register_map.registers_of(task_name))
        self._topo_cache: Optional[Tuple[str, ...]] = None
        self._compiled_cache = None

    # -- construction -------------------------------------------------------

    def add_task(
        self,
        name: str,
        cycles: int,
        label: str = "",
        registers: Optional[Iterable[Register]] = None,
        private_register_bits: Optional[int] = None,
    ) -> Task:
        """Add a task node.

        Parameters
        ----------
        name / cycles / label:
            See :class:`Task`.
        registers:
            Registers this task occupies (may be shared with others).
        private_register_bits:
            Convenience: also attach a private (unshared) register block
            of this many bits, named ``"<name>.private"``.
        """
        if name in self._tasks:
            raise ValueError(f"duplicate task name {name!r}")
        task = Task(name=name, cycles=cycles, label=label)
        self._tasks[name] = task
        self._succ[name] = {}
        self._pred[name] = {}
        register_set: Set[Register] = set(registers) if registers else set()
        if private_register_bits is not None:
            register_set.add(Register(name=f"{name}.private", bits=private_register_bits))
        self._registers[name] = register_set | self._registers.get(name, set())
        self._topo_cache = None
        self._compiled_cache = None
        return task

    def add_edge(self, producer: str, consumer: str, comm_cycles: int = 0) -> None:
        """Add a dependency edge ``producer -> consumer``.

        ``comm_cycles`` is the data-transfer cost in clock cycles,
        charged only for cross-core mappings.
        """
        for endpoint in (producer, consumer):
            if endpoint not in self._tasks:
                raise KeyError(f"unknown task {endpoint!r}")
        if producer == consumer:
            raise ValueError(f"self-edge on {producer!r} not allowed")
        if comm_cycles < 0:
            raise ValueError(f"communication cost must be non-negative, got {comm_cycles}")
        if consumer in self._succ[producer]:
            raise ValueError(f"duplicate edge {producer!r} -> {consumer!r}")
        self._succ[producer][consumer] = comm_cycles
        self._pred[consumer][producer] = comm_cycles
        self._topo_cache = None
        self._compiled_cache = None

    def attach_registers(self, task_name: str, registers: Iterable[Register]) -> None:
        """Attach (additional) registers to an existing task."""
        if task_name not in self._tasks:
            raise KeyError(f"unknown task {task_name!r}")
        self._registers[task_name].update(registers)
        self._compiled_cache = None

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph({self.name!r}, tasks={len(self._tasks)}, "
            f"edges={self.num_edges})"
        )

    # -- basic queries ------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        """Number of tasks, ``N``."""
        return len(self._tasks)

    @property
    def num_edges(self) -> int:
        """Number of dependency edges."""
        return sum(len(successors) for successors in self._succ.values())

    def task(self, name: str) -> Task:
        """The task named ``name``."""
        try:
            return self._tasks[name]
        except KeyError:
            raise KeyError(f"unknown task {name!r}") from None

    def task_names(self) -> Tuple[str, ...]:
        """All task names, in insertion order."""
        return tuple(self._tasks)

    def tasks(self) -> Tuple[Task, ...]:
        """All tasks, in insertion order."""
        return tuple(self._tasks.values())

    def successors(self, name: str) -> Tuple[str, ...]:
        """Direct dependents of ``name``."""
        self.task(name)
        return tuple(self._succ[name])

    def predecessors(self, name: str) -> Tuple[str, ...]:
        """Direct prerequisites of ``name``."""
        self.task(name)
        return tuple(self._pred[name])

    def edges(self) -> Iterator[Tuple[str, str, int]]:
        """Iterate ``(producer, consumer, comm_cycles)`` triples."""
        for producer, successors in self._succ.items():
            for consumer, comm in successors.items():
                yield producer, consumer, comm

    def comm_cycles(self, producer: str, consumer: str) -> int:
        """Communication cost of edge ``producer -> consumer``."""
        try:
            return self._succ[producer][consumer]
        except KeyError:
            raise KeyError(f"no edge {producer!r} -> {consumer!r}") from None

    def has_edge(self, producer: str, consumer: str) -> bool:
        """Whether the edge ``producer -> consumer`` exists."""
        return consumer in self._succ.get(producer, {})

    def registers_of(self, task_name: str) -> FrozenSet[Register]:
        """Registers occupied by ``task_name``."""
        self.task(task_name)
        return frozenset(self._registers[task_name])

    def register_map(self) -> RegisterMap:
        """A :class:`RegisterMap` view of the graph's register model."""
        return RegisterMap({name: self._registers[name] for name in self._tasks})

    def entry_tasks(self) -> Tuple[str, ...]:
        """Tasks with no predecessors."""
        return tuple(name for name in self._tasks if not self._pred[name])

    def exit_tasks(self) -> Tuple[str, ...]:
        """Tasks with no successors."""
        return tuple(name for name in self._tasks if not self._succ[name])

    def total_cycles(self) -> int:
        """Sum of all task computation costs (serial execution cycles)."""
        return sum(task.cycles for task in self._tasks.values())

    def total_comm_cycles(self) -> int:
        """Sum of all edge communication costs."""
        return sum(comm for _, _, comm in self.edges())

    # -- graph algorithms ------------------------------------------------------

    def topological_order(self) -> Tuple[str, ...]:
        """Task names in a deterministic topological order (Kahn).

        Ties are broken by insertion order, so the result is stable
        across runs for the same construction sequence.

        Raises
        ------
        ValueError
            If the graph contains a cycle.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        in_degree = {name: len(self._pred[name]) for name in self._tasks}
        ready: List[str] = [name for name in self._tasks if in_degree[name] == 0]
        order: List[str] = []
        cursor = 0
        while cursor < len(ready):
            name = ready[cursor]
            cursor += 1
            order.append(name)
            for successor in self._succ[name]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self._tasks):
            raise ValueError(f"task graph {self.name!r} contains a cycle")
        self._topo_cache = tuple(order)
        return self._topo_cache

    def is_acyclic(self) -> bool:
        """Whether the graph is a DAG."""
        try:
            self.topological_order()
        except ValueError:
            return False
        return True

    def validate(self) -> None:
        """Raise ``ValueError`` if the graph is not a well-formed DAG."""
        if not self._tasks:
            raise ValueError(f"task graph {self.name!r} has no tasks")
        self.topological_order()
        if not self.entry_tasks():
            raise ValueError(f"task graph {self.name!r} has no entry task")

    def bottom_levels(self) -> Dict[str, int]:
        """Bottom level of every task (cycles).

        The bottom level is the longest computation+communication path
        from the task (inclusive) to any exit task.  It is the standard
        list-scheduling priority.
        """
        levels: Dict[str, int] = {}
        for name in reversed(self.topological_order()):
            best_tail = 0
            for successor, comm in self._succ[name].items():
                best_tail = max(best_tail, comm + levels[successor])
            levels[name] = self._tasks[name].cycles + best_tail
        return levels

    def critical_path_cycles(self) -> int:
        """Length (cycles) of the longest path, computation + communication."""
        levels = self.bottom_levels()
        return max(levels[name] for name in self.entry_tasks())

    def compiled(self) -> "CompiledTaskGraph":
        """The cached :class:`~repro.taskgraph.compiled.CompiledTaskGraph`.

        Built lazily on first use and invalidated whenever the graph
        mutates (new task, new edge, extra registers), so holders of
        the graph always see a view consistent with the current
        structure.
        """
        cached = self._compiled_cache
        if cached is None:
            from repro.taskgraph.compiled import CompiledTaskGraph

            cached = CompiledTaskGraph(self)
            self._compiled_cache = cached
        return cached

    def ancestors(self, name: str) -> FrozenSet[str]:
        """All transitive predecessors of ``name``."""
        self.task(name)
        seen: Set[str] = set()
        frontier = list(self._pred[name])
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._pred[current])
        return frozenset(seen)

    def descendants(self, name: str) -> FrozenSet[str]:
        """All transitive successors of ``name``."""
        self.task(name)
        seen: Set[str] = set()
        frontier = list(self._succ[name])
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._succ[current])
        return frozenset(seen)

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (cycles/comm as attributes)."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for task in self:
            graph.add_node(task.name, cycles=task.cycles, label=task.label)
        for producer, consumer, comm in self.edges():
            graph.add_edge(producer, consumer, comm_cycles=comm)
        return graph

    def to_dot(self) -> str:
        """Graphviz DOT rendering (node label: name, cost; edge: comm)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=TB;"]
        for task in self:
            description = f"\\n{task.label}" if task.label else ""
            lines.append(
                f'  "{task.name}" [label="{task.name} ({task.cycles}){description}"];'
            )
        for producer, consumer, comm in self.edges():
            lines.append(f'  "{producer}" -> "{consumer}" [label="{comm}"];')
        lines.append("}")
        return "\n".join(lines)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_specs(
        cls,
        name: str,
        tasks: Sequence[Tuple[str, int]],
        edges: Sequence[Tuple[str, str, int]],
        register_map: Optional[RegisterMap] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> "TaskGraph":
        """Build a graph from plain tuples.

        Parameters
        ----------
        tasks:
            Sequence of ``(task_name, cycles)``.
        edges:
            Sequence of ``(producer, consumer, comm_cycles)``.
        register_map:
            Optional register model; tasks present in the map get its
            registers attached.
        labels:
            Optional task name -> description mapping.
        """
        labels = labels or {}
        graph = cls(name=name)
        for task_name, cycles in tasks:
            registers = None
            if register_map is not None and task_name in register_map:
                registers = register_map.registers_of(task_name)
            graph.add_task(
                task_name, cycles, label=labels.get(task_name, ""), registers=registers
            )
        for producer, consumer, comm in edges:
            graph.add_edge(producer, consumer, comm)
        graph.validate()
        return graph
