"""The MPEG-2 video decoder task graph of Fig. 2.

Eleven tasks, with computation and communication costs as multiples of
5.5e6 clock cycles (Fig. 2 caption).  Task costs are exactly the
published numbers.  The figure does not print an explicit adjacency
list, so edges follow the decoder's logical data flow with the figure's
edge-cost values:

* header parsing pipeline t1 -> t2 -> t3,
* run-length decoding t3 -> t4 feeding two parallel coefficient
  pipelines — inverse scan + row IDCT (t4 -> t5 -> t7) and inverse
  quantize + column IDCT (t4 -> t6 -> t8) — merging at t10,
* motion compensation t3 -> t9 -> t10 running parallel to the IDCT
  pipelines,
* reconstruction t10 (add blocks) -> t11 (store/display frame).

The two-pipeline reading keeps the graph's critical path at 252 cost
units against a serial total of 370, matching the parallelism implied
by the paper's own T_M range (Fig. 3(a)); a fully serial coefficient
chain would make the paper's chosen scaling vectors infeasible for
the published deadline.

The register map is synthesized (the paper obtained it from SystemC
traces) but reproduces every quantitative statement in Section III:
tasks t5 and t6 share ~6.4 kbit, tasks t6, t7 and t8 share ~8 kbit,
and mapping {t5, t6} and {t7, t8} on different cores duplicates
~14.4 kbit between the cores.

Throughout this module "kbit" means 1000 bits, the paper's loose usage
(R is reported in "kbits/cyc").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.registers import RegisterMap

#: One cost unit of Fig. 2, in clock cycles.
MPEG2_COST_UNIT_CYCLES = 5_500_000

#: The paper's real-time constraint: decode 437 frames at 29.97 fps.
MPEG2_NUM_FRAMES = 437
MPEG2_FRAME_RATE_FPS = 29.97
MPEG2_DEADLINE_S = MPEG2_NUM_FRAMES / MPEG2_FRAME_RATE_FPS

#: (task name, cost units, description) straight from Fig. 2.
_TASKS: List[Tuple[str, int, str]] = [
    ("t1", 10, "Decode Header Sequences"),
    ("t2", 15, "Decode Frame/Slice Headers"),
    ("t3", 16, "Decode Macroblock Sequences"),
    ("t4", 31, "Run-length Decode Block"),
    ("t5", 25, "Inverse Scan Blocks"),
    ("t6", 39, "Inverse Quantize Blocks"),
    ("t7", 63, "Inv. DCT by row"),
    ("t8", 61, "Inv. DCT by column"),
    ("t9", 48, "Motion Compens. Blocks"),
    ("t10", 41, "Add Blocks"),
    ("t11", 21, "Store/Display Frame"),
]

#: (producer, consumer, cost units) — reconstructed data flow (see
#: module docstring) carrying the figure's edge-cost values.
_EDGES: List[Tuple[str, str, int]] = [
    ("t1", "t2", 1),
    ("t2", "t3", 2),
    ("t3", "t4", 2),
    ("t3", "t9", 3),
    ("t4", "t5", 2),
    ("t4", "t6", 3),
    ("t5", "t7", 3),
    ("t6", "t8", 4),
    ("t7", "t10", 4),
    ("t8", "t10", 2),
    ("t9", "t10", 4),
    ("t10", "t11", 4),
]

#: Shared register sets, in bits (1 kbit = 1000 bits).  ``coeff`` and
#: ``idct`` carry the paper's stated sizes verbatim (Section III:
#: t5-t6 share ~6.4 kbit, t6-t7-t8 share ~8 kbit).  The remaining
#: buffers are sized so shared state dominates private state —
#: necessary for the register-duplication penalty of spreading to
#: offset the makespan penalty of localizing, i.e. for the concave
#: Gamma curve of Fig. 3(b) to have its interior minimum.
_SHARED_REGISTER_BITS: Dict[str, int] = {
    "mpeg.bitstream": 6000,  # parsing state: t1, t2, t3
    "mpeg.macroblock": 7200,  # macroblock data: t3, t4
    "mpeg.block": 8400,  # decoded block buffers: t4, t5
    "mpeg.coeff": 6400,  # DCT coefficients: t5, t6 (+ read by t8)
    "mpeg.idct": 8000,  # IDCT working set: t6, t7, t8
    "mpeg.motion": 7200,  # motion vectors / prediction: t9, t10
    "mpeg.refframe": 6600,  # reference frame window: t3, t9
    "mpeg.recon": 7800,  # reconstructed frame regs: t10, t11
}

#: Which tasks touch each shared set.
_SHARED_REGISTER_TASKS: Dict[str, Tuple[str, ...]] = {
    "mpeg.bitstream": ("t1", "t2", "t3"),
    "mpeg.macroblock": ("t3", "t4"),
    "mpeg.block": ("t4", "t5"),
    "mpeg.coeff": ("t5", "t6", "t8"),
    "mpeg.idct": ("t6", "t7", "t8"),
    "mpeg.motion": ("t9", "t10"),
    "mpeg.refframe": ("t3", "t9"),
    "mpeg.recon": ("t10", "t11"),
}

#: Private (unshared) register bits per task, roughly tracking each
#: task's computational weight.
_PRIVATE_REGISTER_BITS: Dict[str, int] = {
    "t1": 1200,
    "t2": 1440,
    "t3": 1680,
    "t4": 2160,
    "t5": 1920,
    "t6": 2400,
    "t7": 3360,
    "t8": 3360,
    "t9": 2880,
    "t10": 2640,
    "t11": 1440,
}


def mpeg2_register_map() -> RegisterMap:
    """The synthesized MPEG-2 register map (see module docstring)."""
    register_bits: Dict[str, int] = dict(_SHARED_REGISTER_BITS)
    task_register_names: Dict[str, List[str]] = {
        name: [] for name, _, _ in _TASKS
    }
    for shared_name, task_names in _SHARED_REGISTER_TASKS.items():
        for task_name in task_names:
            task_register_names[task_name].append(shared_name)
    for task_name, bits in _PRIVATE_REGISTER_BITS.items():
        private_name = f"{task_name}.private"
        register_bits[private_name] = bits
        task_register_names[task_name].append(private_name)
    return RegisterMap.from_bit_sizes(task_register_names, register_bits)


def mpeg2_decoder() -> TaskGraph:
    """The 11-task MPEG-2 decoder graph of Fig. 2, with register model.

    Costs are converted to clock cycles (units of 5.5e6 cycles).
    """
    graph = TaskGraph(name="mpeg2-decoder")
    register_map = mpeg2_register_map()
    for name, units, label in _TASKS:
        graph.add_task(
            name,
            cycles=units * MPEG2_COST_UNIT_CYCLES,
            label=label,
            registers=register_map.registers_of(name),
        )
    for producer, consumer, units in _EDGES:
        graph.add_edge(producer, consumer, comm_cycles=units * MPEG2_COST_UNIT_CYCLES)
    graph.validate()
    return graph


def mpeg2_deadline_cycles(frequency_hz: float) -> int:
    """The decoder deadline expressed in cycles of a clock at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return int(MPEG2_DEADLINE_S * frequency_hz)
