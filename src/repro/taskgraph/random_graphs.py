"""Random task graphs of Section V (Table III).

The paper evaluates architecture allocation with random graphs of 20 to
100 tasks generated as follows:

* computation cost uniform in [1, 30] and communication cost uniform in
  [1, 10], both in multiples of 3.5e6 clock cycles;
* task register usage uniform between 1 kbit and 5 kbit;
* the number of dependents of a task drawn from an exponential
  distribution truncated to [0, N/2];
* deadline of ``1000 * N / 2`` milliseconds.

The paper does not specify how register *sharing* is distributed among
random tasks (their traces came from SystemC simulation).  Without
sharing the localization/duplication trade-off at the heart of the
paper disappears, so we attach to every dependency edge a shared
register block — the producer/consumer communication buffer — sized
proportionally to the edge's communication cost.  Private blocks carry
the paper's 1–5 kbit per-task usage.  This preserves the behaviour the
experiments rely on: distributing dependent tasks duplicates their
shared buffers and raises R, co-locating them raises T_M.

All generation is driven by a seeded ``random.Random`` so graphs are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.registers import Register

#: One cost unit for random graphs, in clock cycles (Table III setup).
RANDOM_COST_UNIT_CYCLES = 3_500_000


@dataclass(frozen=True)
class RandomGraphConfig:
    """Generation parameters for :func:`random_task_graph`.

    Defaults follow Section V of the paper.

    Attributes
    ----------
    num_tasks:
        Number of tasks ``N``.
    min_comp_units / max_comp_units:
        Uniform range of computation cost, in cost units.
    min_comm_units / max_comm_units:
        Uniform range of communication cost, in cost units.
    min_register_bits / max_register_bits:
        Uniform range of per-task private register usage, in bits
        (paper: 1–5 kbit; 1 kbit = 1000 bits).
    mean_dependents:
        Mean of the (truncated) exponential distribution of the number
        of dependents; defaults to ``num_tasks / 8``.
    shared_bits_per_comm_unit:
        Size of the shared producer/consumer register block attached to
        an edge, per communication cost unit.
    cost_unit_cycles:
        Clock cycles per cost unit.
    """

    num_tasks: int
    min_comp_units: int = 1
    max_comp_units: int = 30
    min_comm_units: int = 1
    max_comm_units: int = 10
    min_register_bits: int = 1000
    max_register_bits: int = 5000
    mean_dependents: Optional[float] = None
    shared_bits_per_comm_unit: int = 1200
    cost_unit_cycles: int = RANDOM_COST_UNIT_CYCLES

    def __post_init__(self) -> None:
        if self.num_tasks < 2:
            raise ValueError(f"need at least 2 tasks, got {self.num_tasks}")
        if not 0 < self.min_comp_units <= self.max_comp_units:
            raise ValueError("invalid computation cost range")
        if not 0 < self.min_comm_units <= self.max_comm_units:
            raise ValueError("invalid communication cost range")
        if not 0 < self.min_register_bits <= self.max_register_bits:
            raise ValueError("invalid register size range")
        if self.mean_dependents is not None and self.mean_dependents <= 0:
            raise ValueError("mean_dependents must be positive")
        if self.shared_bits_per_comm_unit < 0:
            raise ValueError("shared_bits_per_comm_unit must be non-negative")
        if self.cost_unit_cycles <= 0:
            raise ValueError("cost_unit_cycles must be positive")

    @property
    def max_dependents(self) -> int:
        """Truncation bound for the dependent count, N/2 (paper)."""
        return self.num_tasks // 2

    @property
    def deadline_s(self) -> float:
        """The paper's random-graph deadline: 1000 * N / 2 milliseconds."""
        return 1000.0 * self.num_tasks / 2.0 / 1000.0


def random_graph_deadline_s(num_tasks: int) -> float:
    """Deadline (seconds) the paper assigns to an N-task random graph."""
    return RandomGraphConfig(num_tasks=max(num_tasks, 2)).deadline_s


def random_task_graph(
    config: RandomGraphConfig, seed: Optional[int] = None, rng: Optional[random.Random] = None
) -> TaskGraph:
    """Generate a random DAG per the paper's Table III recipe.

    Tasks are indexed ``t1..tN``; edges only go from lower to higher
    indices, which guarantees acyclicity.  Every non-entry task is
    given at least one predecessor so the graph is connected from its
    entry tasks.

    Parameters
    ----------
    config:
        Generation parameters.
    seed:
        Seed for a fresh ``random.Random`` (ignored if ``rng`` given).
    rng:
        An existing generator to draw from.
    """
    if rng is None:
        rng = random.Random(seed)
    names = [f"t{i}" for i in range(1, config.num_tasks + 1)]
    graph = TaskGraph(name=f"random-{config.num_tasks}")

    for name in names:
        comp_units = rng.randint(config.min_comp_units, config.max_comp_units)
        private_bits = rng.randint(config.min_register_bits, config.max_register_bits)
        graph.add_task(
            name,
            cycles=comp_units * config.cost_unit_cycles,
            private_register_bits=private_bits,
        )

    mean_dependents = config.mean_dependents or max(config.num_tasks / 8.0, 1.0)
    has_predecessor = [False] * config.num_tasks

    def _add_edge(src_index: int, dst_index: int) -> None:
        producer, consumer = names[src_index], names[dst_index]
        if graph.has_edge(producer, consumer):
            return
        comm_units = rng.randint(config.min_comm_units, config.max_comm_units)
        graph.add_edge(producer, consumer, comm_cycles=comm_units * config.cost_unit_cycles)
        if config.shared_bits_per_comm_unit:
            shared = Register(
                name=f"{producer}->{consumer}.buffer",
                bits=comm_units * config.shared_bits_per_comm_unit,
            )
            graph.attach_registers(producer, [shared])
            graph.attach_registers(consumer, [shared])
        has_predecessor[dst_index] = True

    for index in range(config.num_tasks - 1):
        remaining = config.num_tasks - index - 1
        num_dependents = int(rng.expovariate(1.0 / mean_dependents))
        num_dependents = min(num_dependents, config.max_dependents, remaining)
        if num_dependents:
            targets = rng.sample(range(index + 1, config.num_tasks), num_dependents)
            for target in targets:
                _add_edge(index, target)

    # Connect orphaned tasks so the DAG has a coherent precedence
    # structure (the paper's graphs are connected applications).
    for index in range(1, config.num_tasks):
        if not has_predecessor[index]:
            _add_edge(rng.randrange(0, index), index)

    graph.validate()
    return graph
