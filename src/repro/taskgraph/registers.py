"""Register model: named register sets shared between tasks.

Section II-B / III of the paper: each task occupies a set of registers
(processor, cache and memory registers); related tasks *share* register
sets (e.g. in the MPEG-2 decoder, tasks t5 and t6 share ~6.4 kbit and
t6, t7, t8 share ~8 kbit).  When tasks that share a set are mapped to
*different* cores, each core keeps its own copy — the set is duplicated
and total register usage grows.  When they are co-located the set is
counted once.  Eq. (8) formalizes this: the register usage of core *i*
is the cardinality (in bits) of the union of the register sets of the
tasks mapped on it.

:class:`Register` is a named block of bits; :class:`RegisterMap`
associates each task with the registers it touches and answers the
set-union queries the metrics need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Set, Tuple


@dataclass(frozen=True, order=True)
class Register:
    """A named block of register bits.

    Attributes
    ----------
    name:
        Unique identifier (e.g. ``"r4"`` or ``"mpeg.idct_coeff"``).
    bits:
        Size of the block in bits.
    """

    name: str
    bits: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("register name must be non-empty")
        if self.bits <= 0:
            raise ValueError(f"register size must be positive, got {self.bits}")


class RegisterMap:
    """Task-to-register association with set-union size queries.

    Parameters
    ----------
    task_registers:
        Mapping from task name to the registers that task occupies.
        The same :class:`Register` object (same name) may appear under
        several tasks — that is what sharing means.

    Notes
    -----
    Registers are identified by *name*; two registers with the same
    name must have the same size (a ``ValueError`` is raised
    otherwise), because they denote the same physical block.
    """

    def __init__(self, task_registers: Mapping[str, Iterable[Register]]) -> None:
        self._by_task: Dict[str, FrozenSet[Register]] = {}
        sizes: Dict[str, int] = {}
        for task_name, registers in task_registers.items():
            frozen = frozenset(registers)
            for register in frozen:
                previous = sizes.setdefault(register.name, register.bits)
                if previous != register.bits:
                    raise ValueError(
                        f"register {register.name!r} declared with conflicting "
                        f"sizes {previous} and {register.bits}"
                    )
            self._by_task[task_name] = frozen

    # -- container protocol -------------------------------------------------

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._by_task

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_task)

    def __len__(self) -> int:
        return len(self._by_task)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterMap):
            return NotImplemented
        return self._by_task == other._by_task

    # -- queries ---------------------------------------------------------

    def registers_of(self, task_name: str) -> FrozenSet[Register]:
        """The register set occupied by ``task_name``."""
        try:
            return self._by_task[task_name]
        except KeyError:
            raise KeyError(f"unknown task {task_name!r} in register map") from None

    def task_bits(self, task_name: str) -> int:
        """Total bits occupied by one task (its local usage, j=k in Eq. 8)."""
        return sum(register.bits for register in self.registers_of(task_name))

    def union_bits(self, task_names: Iterable[str]) -> int:
        """Bits of the union of the register sets of ``task_names``.

        This is Eq. (8): the register usage ``R_i`` of a core holding
        exactly these tasks.  Shared registers are counted once.
        """
        union: Set[Register] = set()
        for name in task_names:
            union.update(self.registers_of(name))
        return sum(register.bits for register in union)

    def shared_bits(self, task_a: str, task_b: str) -> int:
        """Bits shared between two tasks (intersection of their sets)."""
        shared = self.registers_of(task_a) & self.registers_of(task_b)
        return sum(register.bits for register in shared)

    def all_registers(self) -> FrozenSet[Register]:
        """Every register referenced by any task."""
        union: Set[Register] = set()
        for registers in self._by_task.values():
            union.update(registers)
        return frozenset(union)

    def total_bits(self) -> int:
        """Bits of the union over all tasks (single-core usage)."""
        return sum(register.bits for register in self.all_registers())

    def tasks(self) -> Tuple[str, ...]:
        """Task names covered by this map."""
        return tuple(self._by_task)

    def restricted_to(self, task_names: Iterable[str]) -> "RegisterMap":
        """A sub-map covering only ``task_names``."""
        names = list(task_names)
        return RegisterMap({name: self.registers_of(name) for name in names})

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_bit_sizes(
        cls,
        task_register_names: Mapping[str, Iterable[str]],
        register_bits: Mapping[str, int],
    ) -> "RegisterMap":
        """Build a map from name-based descriptions.

        Parameters
        ----------
        task_register_names:
            Task name -> iterable of register names it occupies.
        register_bits:
            Register name -> size in bits.
        """
        registry = {
            name: Register(name=name, bits=bits) for name, bits in register_bits.items()
        }
        mapping: Dict[str, Set[Register]] = {}
        for task_name, reg_names in task_register_names.items():
            registers: Set[Register] = set()
            for reg_name in reg_names:
                try:
                    registers.add(registry[reg_name])
                except KeyError:
                    raise KeyError(
                        f"task {task_name!r} references undeclared register "
                        f"{reg_name!r}"
                    ) from None
            mapping[task_name] = registers
        return cls(mapping)

    @classmethod
    def private_only(cls, task_bits: Mapping[str, int]) -> "RegisterMap":
        """A map where every task has a private, unshared register block."""
        return cls(
            {
                task_name: [Register(name=f"{task_name}.private", bits=bits)]
                for task_name, bits in task_bits.items()
            }
        )
