"""JSON-friendly (de)serialization of task graphs.

Round-trips a :class:`~repro.taskgraph.graph.TaskGraph`, including its
register model, through plain dictionaries so graphs can be stored as
JSON files, shipped between processes, or embedded in experiment
manifests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.registers import Register

_FORMAT_VERSION = 1


def graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Serialize ``graph`` to a JSON-compatible dictionary."""
    registers: Dict[str, int] = {}
    task_registers: Dict[str, list] = {}
    for task in graph:
        names = []
        for register in sorted(graph.registers_of(task.name)):
            registers[register.name] = register.bits
            names.append(register.name)
        task_registers[task.name] = names
    return {
        "version": _FORMAT_VERSION,
        "name": graph.name,
        "tasks": [
            {"name": task.name, "cycles": task.cycles, "label": task.label}
            for task in graph
        ],
        "edges": [
            {"producer": producer, "consumer": consumer, "comm_cycles": comm}
            for producer, consumer, comm in graph.edges()
        ],
        "registers": registers,
        "task_registers": task_registers,
    }


def graph_from_dict(data: Dict[str, Any]) -> TaskGraph:
    """Rebuild a :class:`TaskGraph` from :func:`graph_to_dict` output."""
    version = data.get("version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported task-graph format version {version}")
    registry = {
        name: Register(name=name, bits=bits)
        for name, bits in data.get("registers", {}).items()
    }
    graph = TaskGraph(name=data.get("name", "taskgraph"))
    task_registers = data.get("task_registers", {})
    for spec in data["tasks"]:
        names = task_registers.get(spec["name"], [])
        graph.add_task(
            spec["name"],
            cycles=spec["cycles"],
            label=spec.get("label", ""),
            registers=[registry[name] for name in names],
        )
    for edge in data.get("edges", []):
        graph.add_edge(edge["producer"], edge["consumer"], edge.get("comm_cycles", 0))
    graph.validate()
    return graph


def save_graph(graph: TaskGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` as JSON to ``path``."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: Union[str, Path]) -> TaskGraph:
    """Read a JSON task graph from ``path``."""
    return graph_from_dict(json.loads(Path(path).read_text()))
