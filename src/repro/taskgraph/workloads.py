"""Additional realistic embedded workloads.

Beyond the paper's MPEG-2 decoder, downstream users exploring the
optimizer want a small library of representative applications.  Each
graph follows the same conventions as :mod:`repro.taskgraph.mpeg2`:
computation/communication costs in clock cycles, and a register model
mixing private blocks with shared inter-stage buffers so the
localization/duplication trade-off is present.

* :func:`jpeg_encoder` — 8-task JPEG compression pipeline with a
  parallel chroma path (classic streaming shape).
* :func:`fft8_graph` — an 8-point radix-2 FFT butterfly DAG (3 stages
  of 4 butterflies; wide, communication-heavy).
* :func:`automotive_cruise_control` — a sensor-fusion / control /
  actuation loop in the E3S style (diamond with feedback-free control
  legs and a short deadline).

All costs are synthetic but sized so the graphs exercise distinct
corners: the JPEG pipeline is localization-friendly, the FFT rewards
spreading, and the control loop is deadline-tight.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.registers import RegisterMap

# ---------------------------------------------------------------------------
# JPEG encoder
# ---------------------------------------------------------------------------

#: One cost unit for the JPEG pipeline, in cycles.
JPEG_COST_UNIT_CYCLES = 2_000_000

#: Suggested real-time constraint: 30 frames at 25 fps.
JPEG_DEADLINE_S = 30 / 25.0

_JPEG_TASKS: List[Tuple[str, int, str]] = [
    ("rgb2yuv", 18, "Colour conversion"),
    ("subsample", 8, "Chroma subsampling"),
    ("dct_y", 34, "Luma 2-D DCT"),
    ("dct_c", 22, "Chroma 2-D DCT"),
    ("quant_y", 14, "Luma quantization"),
    ("quant_c", 10, "Chroma quantization"),
    ("zigzag_rle", 12, "Zigzag + run-length"),
    ("huffman", 26, "Huffman entropy coding"),
]

_JPEG_EDGES: List[Tuple[str, str, int]] = [
    ("rgb2yuv", "subsample", 2),
    ("rgb2yuv", "dct_y", 3),
    ("subsample", "dct_c", 2),
    ("dct_y", "quant_y", 2),
    ("dct_c", "quant_c", 1),
    ("quant_y", "zigzag_rle", 1),
    ("quant_c", "zigzag_rle", 1),
    ("zigzag_rle", "huffman", 2),
]

_JPEG_SHARED_BITS: Dict[str, int] = {
    "jpeg.macroblock": 6400,  # raw macroblock: rgb2yuv, subsample, dct_y
    "jpeg.coeff_y": 5600,  # luma coefficients: dct_y, quant_y
    "jpeg.coeff_c": 4000,  # chroma coefficients: dct_c, quant_c
    "jpeg.qtables": 2400,  # quantization tables: quant_y, quant_c
    "jpeg.symbols": 4800,  # RLE symbols: zigzag_rle, huffman
}

_JPEG_SHARED_TASKS: Dict[str, Tuple[str, ...]] = {
    "jpeg.macroblock": ("rgb2yuv", "subsample", "dct_y"),
    "jpeg.coeff_y": ("dct_y", "quant_y"),
    "jpeg.coeff_c": ("dct_c", "quant_c"),
    "jpeg.qtables": ("quant_y", "quant_c"),
    "jpeg.symbols": ("zigzag_rle", "huffman"),
}

_JPEG_PRIVATE_BITS: Dict[str, int] = {
    "rgb2yuv": 1600,
    "subsample": 1000,
    "dct_y": 2800,
    "dct_c": 2000,
    "quant_y": 1200,
    "quant_c": 1000,
    "zigzag_rle": 1400,
    "huffman": 2400,
}


def _build(
    name: str,
    tasks: List[Tuple[str, int, str]],
    edges: List[Tuple[str, str, int]],
    shared_bits: Dict[str, int],
    shared_tasks: Dict[str, Tuple[str, ...]],
    private_bits: Dict[str, int],
    unit_cycles: int,
) -> TaskGraph:
    register_bits = dict(shared_bits)
    task_registers: Dict[str, List[str]] = {t: [] for t, _, _ in tasks}
    for register_name, owners in shared_tasks.items():
        for owner in owners:
            task_registers[owner].append(register_name)
    for task_name, bits in private_bits.items():
        private_name = f"{task_name}.private"
        register_bits[private_name] = bits
        task_registers[task_name].append(private_name)
    register_map = RegisterMap.from_bit_sizes(task_registers, register_bits)

    graph = TaskGraph(name=name)
    for task_name, units, label in tasks:
        graph.add_task(
            task_name,
            cycles=units * unit_cycles,
            label=label,
            registers=register_map.registers_of(task_name),
        )
    for producer, consumer, units in edges:
        graph.add_edge(producer, consumer, comm_cycles=units * unit_cycles)
    graph.validate()
    return graph


def jpeg_encoder() -> TaskGraph:
    """The 8-task JPEG compression pipeline."""
    return _build(
        "jpeg-encoder",
        _JPEG_TASKS,
        _JPEG_EDGES,
        _JPEG_SHARED_BITS,
        _JPEG_SHARED_TASKS,
        _JPEG_PRIVATE_BITS,
        JPEG_COST_UNIT_CYCLES,
    )


# ---------------------------------------------------------------------------
# 8-point FFT
# ---------------------------------------------------------------------------

#: One cost unit for the FFT graph, in cycles.
FFT_COST_UNIT_CYCLES = 400_000

#: Suggested deadline for one transform batch (feasible on two nominal
#: cores with a little slack; the wide stages reward more cores).
FFT_DEADLINE_S = 0.09


def fft8_graph() -> TaskGraph:
    """An 8-point radix-2 FFT butterfly DAG.

    Three stages of four butterflies each; stage-s butterfly ``b``
    consumes the two stage-(s-1) butterflies whose outputs it combines.
    Butterflies within a stage are independent — a wide graph that
    rewards spreading, stressing the duplication side of the
    trade-off (each butterfly shares twiddle-factor tables).
    """
    graph = TaskGraph(name="fft8")
    twiddle_bits = 3200
    from repro.taskgraph.registers import Register

    twiddles = Register("fft.twiddles", twiddle_bits)
    stages, per_stage = 3, 4
    for stage in range(stages):
        for index in range(per_stage):
            graph.add_task(
                f"s{stage}b{index}",
                cycles=5 * FFT_COST_UNIT_CYCLES,
                label=f"stage {stage} butterfly {index}",
                registers=[twiddles],
                private_register_bits=1200,
            )
    # Radix-2 connectivity: stage s butterfly i reads butterflies
    # i and i XOR (stride) of the previous stage (data-index view
    # collapsed to butterfly granularity).
    for stage in range(1, stages):
        stride = 2 ** (stage - 1) % per_stage or 1
        for index in range(per_stage):
            sources = {index, index ^ stride}
            for source in sorted(sources):
                graph.add_edge(
                    f"s{stage - 1}b{source}",
                    f"s{stage}b{index}",
                    comm_cycles=FFT_COST_UNIT_CYCLES,
                )
    graph.validate()
    return graph


# ---------------------------------------------------------------------------
# Automotive cruise control
# ---------------------------------------------------------------------------

#: One cost unit for the control loop, in cycles (sized so the loop is
#: feasible at nominal speed on two cores but not fully scaled down —
#: a deadline-tight workload).
CONTROL_COST_UNIT_CYCLES = 400_000

#: Control period: 100 ms.
CONTROL_DEADLINE_S = 0.1

_CONTROL_TASKS: List[Tuple[str, int, str]] = [
    ("radar", 4, "Radar acquisition"),
    ("wheel_speed", 2, "Wheel speed sensors"),
    ("gps", 3, "GPS/odometry"),
    ("fusion", 7, "Sensor fusion"),
    ("situation", 5, "Situation assessment"),
    ("controller", 6, "Cruise controller"),
    ("throttle", 2, "Throttle actuation"),
    ("brake", 2, "Brake actuation"),
    ("logging", 3, "Telemetry logging"),
]

_CONTROL_EDGES: List[Tuple[str, str, int]] = [
    ("radar", "fusion", 1),
    ("wheel_speed", "fusion", 1),
    ("gps", "fusion", 1),
    ("fusion", "situation", 1),
    ("situation", "controller", 1),
    ("controller", "throttle", 1),
    ("controller", "brake", 1),
    ("fusion", "logging", 1),
]

_CONTROL_SHARED_BITS: Dict[str, int] = {
    "ctrl.tracks": 4800,  # object tracks: radar, fusion, situation
    "ctrl.state": 3200,  # vehicle state: fusion, controller, logging
    "ctrl.commands": 1600,  # actuation set-points: controller, throttle, brake
}

_CONTROL_SHARED_TASKS: Dict[str, Tuple[str, ...]] = {
    "ctrl.tracks": ("radar", "fusion", "situation"),
    "ctrl.state": ("fusion", "controller", "logging"),
    "ctrl.commands": ("controller", "throttle", "brake"),
}

_CONTROL_PRIVATE_BITS: Dict[str, int] = {
    "radar": 1400,
    "wheel_speed": 600,
    "gps": 1000,
    "fusion": 2200,
    "situation": 1800,
    "controller": 2000,
    "throttle": 500,
    "brake": 500,
    "logging": 900,
}


def automotive_cruise_control() -> TaskGraph:
    """A 9-task adaptive-cruise-control loop (100 ms period)."""
    return _build(
        "cruise-control",
        _CONTROL_TASKS,
        _CONTROL_EDGES,
        _CONTROL_SHARED_BITS,
        _CONTROL_SHARED_TASKS,
        _CONTROL_PRIVATE_BITS,
        CONTROL_COST_UNIT_CYCLES,
    )


#: Registry of bundled workloads: name -> (factory, suggested deadline).
WORKLOADS = {
    "jpeg": (jpeg_encoder, JPEG_DEADLINE_S),
    "fft8": (fft8_graph, FFT_DEADLINE_S),
    "cruise-control": (automotive_cruise_control, CONTROL_DEADLINE_S),
}
