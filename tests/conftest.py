"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.arch import MPSoC, ScalingTable
from repro.faults import SERModel
from repro.mapping import Mapping, MappingEvaluator
from repro.taskgraph import (
    TaskGraph,
    fig8_example,
    fork_join_graph,
    mpeg2_decoder,
    pipeline_graph,
)
from repro.taskgraph.examples import FIG8_DEADLINE_S, FIG8_SCALING
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


@pytest.fixture
def mpeg2() -> TaskGraph:
    """The 11-task MPEG-2 decoder graph."""
    return mpeg2_decoder()


@pytest.fixture
def fig8() -> TaskGraph:
    """The 6-task worked example graph."""
    return fig8_example()


@pytest.fixture
def pipeline6() -> TaskGraph:
    """A 6-stage pipeline graph."""
    return pipeline_graph(6)


@pytest.fixture
def forkjoin4() -> TaskGraph:
    """A fork-join graph with four parallel branches."""
    return fork_join_graph(4)


@pytest.fixture
def platform4() -> MPSoC:
    """Four ARM7 cores, three scaling levels (the paper's platform)."""
    return MPSoC.paper_reference(4)


@pytest.fixture
def platform3() -> MPSoC:
    """Three ARM7 cores (the Fig. 8 example platform)."""
    return MPSoC.paper_reference(3)


@pytest.fixture
def mpeg2_evaluator(mpeg2, platform4) -> MappingEvaluator:
    """Evaluator for the MPEG-2 decoder on four cores with its deadline."""
    return MappingEvaluator(mpeg2, platform4, deadline_s=MPEG2_DEADLINE_S)


@pytest.fixture
def fig8_evaluator(fig8, platform3) -> MappingEvaluator:
    """Evaluator for the Fig. 8 example on three cores."""
    return MappingEvaluator(fig8, platform3, deadline_s=FIG8_DEADLINE_S)


@pytest.fixture
def rr_mapping4(mpeg2) -> Mapping:
    """Round-robin mapping of the decoder onto four cores."""
    return Mapping.round_robin(mpeg2, 4)


@pytest.fixture
def ser_model() -> SERModel:
    """The paper's nominal SER model."""
    return SERModel()


@pytest.fixture
def three_level_table() -> ScalingTable:
    """Table I of the paper."""
    return ScalingTable.arm7_three_level()


# Re-export constants for convenience in tests.
MPEG2_DEADLINE = MPEG2_DEADLINE_S
FIG8_DEADLINE = FIG8_DEADLINE_S
FIG8_SCALING_VECTOR = FIG8_SCALING
