"""The repro.api facade: validation, run identity, dedup, byte-identity.

The acceptance contract for the service stack: a report fetched
through the facade is byte-identical to the same profile run through
``run_experiment`` directly, and an identical resubmission is served
from the result cache without re-executing a single cell.
"""

import dataclasses
import json

import pytest

from repro import api
from repro.experiments.common import ExperimentProfile
from repro.experiments.runner import run_experiment
from repro.taskgraph import RandomGraphConfig, random_task_graph
from repro.taskgraph.serialize import graph_to_dict


@pytest.fixture(scope="module")
def tiny_graph_payload():
    config = RandomGraphConfig(num_tasks=8)
    graph = random_task_graph(config, seed=5)
    return graph_to_dict(graph), config.deadline_s


# ---------------------------------------------------------------------------
# RunSpec: payload validation and the run-identity contract.
# ---------------------------------------------------------------------------


class TestRunSpecValidation:
    def test_coerce_experiment_id_string(self):
        spec = api.RunSpec.coerce("fig3")
        assert spec.kind == "experiment"
        assert spec.experiment_id == "fig3"

    def test_coerce_rejects_other_types(self):
        with pytest.raises(api.ValidationError):
            api.RunSpec.coerce(42)

    def test_unknown_experiment(self):
        with pytest.raises(api.ValidationError) as excinfo:
            api.RunSpec.from_payload({"experiment": "fig99"})
        assert excinfo.value.field == "experiment"
        assert excinfo.value.http_status == 400
        assert "fig99" in str(excinfo.value)

    def test_experiment_and_graph_mutually_exclusive(self, tiny_graph_payload):
        graph, _ = tiny_graph_payload
        with pytest.raises(api.ValidationError, match="exactly one"):
            api.RunSpec.from_payload({"experiment": "fig3", "graph": graph})
        with pytest.raises(api.ValidationError, match="exactly one"):
            api.RunSpec.from_payload({})

    def test_unknown_fields_rejected(self):
        with pytest.raises(api.ValidationError) as excinfo:
            api.RunSpec.from_payload({"experiment": "fig3", "colour": "red"})
        assert excinfo.value.field == "colour"

    def test_unknown_profile_platform_technode_plan(self):
        for key, value in (
            ("profile", "huge"),
            ("platform", "riscv"),
            ("tech_node", "3nm-bogus"),
            ("exec_plan", "threads"),
        ):
            with pytest.raises(api.ValidationError) as excinfo:
                api.RunSpec.from_payload({"experiment": "fig3", key: value})
            assert excinfo.value.field == key

    def test_bad_integers(self):
        for key, value in (("seed", -1), ("num_cores", 0), ("restarts", "x")):
            with pytest.raises(api.ValidationError) as excinfo:
                api.RunSpec.from_payload({"experiment": "fig3", key: value})
            assert excinfo.value.field == key

    def test_graph_requires_deadline(self, tiny_graph_payload):
        graph, _ = tiny_graph_payload
        with pytest.raises(api.ValidationError) as excinfo:
            api.RunSpec.from_payload({"graph": graph})
        assert excinfo.value.field == "deadline_s"
        with pytest.raises(api.ValidationError, match="positive"):
            api.RunSpec.from_payload({"graph": graph, "deadline_s": -1})

    def test_experiment_rejects_deadline(self):
        with pytest.raises(api.ValidationError, match="task-graph"):
            api.RunSpec.from_payload({"experiment": "fig3", "deadline_s": 1.0})

    def test_malformed_graph(self):
        with pytest.raises(api.ValidationError) as excinfo:
            api.RunSpec.from_payload(
                {"graph": {"tasks": [{"bogus": 1}]}, "deadline_s": 1.0}
            )
        assert excinfo.value.field == "graph"

    def test_payload_round_trip(self, tiny_graph_payload):
        graph, deadline = tiny_graph_payload
        for payload in (
            {"experiment": "table3", "profile": "smoke", "seed": 2,
             "platform": "biglittle", "tech_node": "22nm"},
            {"graph": graph, "deadline_s": deadline, "num_cores": 3,
             "profile": "smoke", "exec_plan": "dag:thread"},
        ):
            spec = api.RunSpec.from_payload(payload)
            assert api.RunSpec.from_payload(spec.to_payload()) == spec

    def test_error_to_dict_shape(self):
        error = api.ValidationError("bad", field="seed")
        assert error.to_dict() == {
            "code": "invalid-request",
            "message": "bad",
            "field": "seed",
            "retryable": False,
        }
        assert api.UnknownRunError("gone").http_status == 404
        assert api.RunConflictError("busy").http_status == 409

    def test_retryable_errors_carry_the_flag(self):
        from repro.service.jobs import QueueFullError

        assert not api.ValidationError("bad").retryable
        assert not api.RunConflictError("busy").retryable
        error = QueueFullError("full", retry_after_s=2.5)
        assert error.retryable
        assert error.retry_after_s == 2.5
        assert error.to_dict()["retryable"] is True


class TestRunIdentity:
    def test_deterministic(self):
        a = api.RunSpec.coerce({"experiment": "fig3", "profile": "smoke"})
        b = api.RunSpec.coerce({"experiment": "fig3", "profile": "smoke"})
        assert a.run_id() == b.run_id()
        assert a.run_id().startswith("fig3-")

    def test_exec_knobs_excluded(self):
        base = api.RunSpec.coerce({"experiment": "fig3", "profile": "smoke"})
        dag = api.RunSpec.coerce(
            {"experiment": "fig3", "profile": "smoke",
             "exec_plan": "dag:process", "max_workers": 7}
        )
        # Execution knobs change wall-clock only — identical results,
        # one shared cache entry.
        assert base.run_id() == dag.run_id()

    def test_result_inputs_included(self, tiny_graph_payload):
        graph, deadline = tiny_graph_payload
        base = api.RunSpec.coerce({"experiment": "fig3", "profile": "smoke"})
        assert base.run_id() != api.RunSpec.coerce(
            {"experiment": "fig3", "profile": "smoke", "seed": 1}
        ).run_id()
        assert base.run_id() != api.RunSpec.coerce(
            {"experiment": "fig3", "profile": "smoke", "platform": "biglittle"}
        ).run_id()
        g3 = api.RunSpec.coerce(
            {"graph": graph, "deadline_s": deadline, "num_cores": 3,
             "profile": "smoke"}
        )
        g4 = api.RunSpec.coerce(
            {"graph": graph, "deadline_s": deadline, "num_cores": 4,
             "profile": "smoke"}
        )
        assert g3.run_id() != g4.run_id()

    def test_optimize_label_sanitized(self, tiny_graph_payload):
        graph, deadline = tiny_graph_payload
        spec = api.RunSpec.coerce(
            {"graph": graph, "deadline_s": deadline, "profile": "smoke"}
        )
        assert spec.label.startswith("optimize-")
        assert "/" not in spec.run_id()


# ---------------------------------------------------------------------------
# submit / status / fetch: the result-cache contract.
# ---------------------------------------------------------------------------


@pytest.fixture()
def counting_run_experiment(monkeypatch):
    """Count real experiment executions through the facade."""
    calls = []
    real = api.run_experiment

    def counting(experiment_id, profile=None):
        calls.append(experiment_id)
        return real(experiment_id, profile)

    monkeypatch.setattr(api, "run_experiment", counting)
    return calls


class TestSubmitRun:
    def test_submit_poll_fetch_byte_identical(self, tmp_path):
        submission = api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path
        )
        assert submission.state == "complete"
        assert submission.cached is False
        status = api.run_status(tmp_path, submission.run_id)
        assert status.state == "complete"
        assert status.total == status.completed > 0
        assert status.failed == 0
        fetched = api.fetch_report(tmp_path, submission.run_id)
        _, direct = run_experiment("fig3", ExperimentProfile.smoke())
        assert fetched == direct + "\n"
        assert submission.report == fetched

    def test_duplicate_served_from_cache(
        self, tmp_path, counting_run_experiment
    ):
        first = api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path, tenant="alice"
        )
        assert counting_run_experiment == ["fig3"]
        second = api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path, tenant="bob"
        )
        # Served from disk: same run id, no second execution.
        assert second.cached is True
        assert second.run_id == first.run_id
        assert second.report == first.report
        assert counting_run_experiment == ["fig3"]
        status = api.run_status(tmp_path, first.run_id)
        assert set(status.tenants) == {"alice", "bob"}

    def test_exec_knob_variant_hits_same_cache_entry(
        self, tmp_path, counting_run_experiment
    ):
        first = api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path
        )
        variant = api.submit_run(
            {"experiment": "fig3", "profile": "smoke",
             "exec_plan": "dag:thread"},
            tmp_path,
        )
        assert variant.cached is True
        assert variant.run_id == first.run_id
        assert counting_run_experiment == ["fig3"]

    def test_fetch_report_unknown_and_incomplete(self, tmp_path):
        with pytest.raises(api.UnknownRunError):
            api.fetch_report(tmp_path, "nope-000000000000")
        queued = api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path, wait=False
        )
        assert queued.state == "queued"
        assert queued.scheduled is True
        with pytest.raises(api.RunConflictError, match="queued"):
            api.fetch_report(tmp_path, queued.run_id)

    def test_queued_then_run_submitted(self, tmp_path):
        queued = api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path, wait=False
        )
        done = api.run_submitted(tmp_path, queued.run_id)
        assert done.state == "complete"
        _, direct = run_experiment("fig3", ExperimentProfile.smoke())
        assert api.fetch_report(tmp_path, queued.run_id) == direct + "\n"

    def test_cancel_queued_run(self, tmp_path, counting_run_experiment):
        queued = api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path, wait=False
        )
        cancelled = api.cancel_run(tmp_path, queued.run_id)
        assert cancelled.state == "cancelled"
        # The worker path honors the marker instead of executing.
        outcome = api.run_submitted(tmp_path, queued.run_id)
        assert outcome.state == "cancelled"
        assert counting_run_experiment == []
        # Resubmission clears the cancellation and runs for real.
        again = api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path
        )
        assert again.state == "complete"
        assert counting_run_experiment == ["fig3"]

    def test_cancel_complete_run_is_left_untouched(self, tmp_path):
        done = api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path
        )
        status = api.cancel_run(tmp_path, done.run_id)
        assert status.state == "complete"
        assert api.fetch_report(tmp_path, done.run_id) == done.report

    def test_cancel_unknown_run(self, tmp_path):
        with pytest.raises(api.UnknownRunError):
            api.cancel_run(tmp_path, "nope-000000000000")

    def test_failed_run_records_error_and_requeues(
        self, tmp_path, monkeypatch
    ):
        def boom(experiment_id, profile=None):
            raise RuntimeError("evaluator exploded")

        monkeypatch.setattr(api, "run_experiment", boom)
        with pytest.raises(RuntimeError, match="evaluator exploded"):
            api.submit_run({"experiment": "fig3", "profile": "smoke"}, tmp_path)
        spec = api.RunSpec.coerce({"experiment": "fig3", "profile": "smoke"})
        status = api.run_status(tmp_path, spec.run_id())
        assert status.state == "failed"
        assert "evaluator exploded" in (status.error or "")
        monkeypatch.undo()
        # A resubmission retries instead of serving the failure.
        retry = api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path
        )
        assert retry.state == "complete"


class TestOptimizeRuns:
    def test_submit_optimize_and_dedup(
        self, tmp_path, tiny_graph_payload, counting_run_experiment
    ):
        graph, deadline = tiny_graph_payload
        payload = {
            "graph": graph,
            "deadline_s": deadline,
            "num_cores": 3,
            "profile": "smoke",
        }
        first = api.submit_run(payload, tmp_path, tenant="alice")
        assert first.state == "complete"
        report = api.fetch_report(tmp_path, first.run_id)
        assert report.startswith("Optimization —")
        assert f"{3} cores" in report.splitlines()[0]
        second = api.submit_run(payload, tmp_path, tenant="bob")
        assert second.cached is True
        assert second.run_id == first.run_id
        # Optimize runs never touch run_experiment at all.
        assert counting_run_experiment == []
        status = api.run_status(tmp_path, first.run_id)
        assert status.total == status.completed == 1


class TestListRuns:
    def test_lists_service_and_flat_stores(self, tmp_path):
        api.submit_run(
            {"experiment": "fig3", "profile": "smoke"}, tmp_path, tenant="t1"
        )
        # A bare CLI-layout grid next to the service runs.
        profile = ExperimentProfile.smoke().with_store(str(tmp_path))
        run_experiment("fig3", profile)
        statuses = api.list_runs(tmp_path)
        labels = sorted(status.label for status in statuses)
        assert labels == ["fig3", "fig3"]
        states = {status.state for status in statuses}
        assert states == {"complete"}
        # Tenant filtering applies to service records.
        assert len(api.list_runs(tmp_path, tenant="t1")) == 1
        assert api.list_runs(tmp_path, tenant="nobody") == []

    def test_flat_store_status_lookup(self, tmp_path):
        profile = ExperimentProfile.smoke().with_store(str(tmp_path))
        run_experiment("fig3", profile)
        status = api.run_status(tmp_path, "fig3")
        assert status.state == "complete"
        assert status.label == "fig3"
        with pytest.raises(api.UnknownRunError):
            api.run_status(tmp_path, "table99")

    def test_format_runs_table_matches_cli_columns(self, tmp_path):
        api.submit_run({"experiment": "fig3", "profile": "smoke"}, tmp_path)
        table = api.format_runs_table(api.list_runs(tmp_path))
        header = table.splitlines()[0].split()
        assert header == [
            "Run", "Status", "Done", "Failed", "Profile", "Seed", "Fingerprint",
        ]
        assert "complete" in table

    def test_status_to_dict_is_json_ready(self, tmp_path):
        api.submit_run({"experiment": "fig3", "profile": "smoke"}, tmp_path)
        (status,) = api.list_runs(tmp_path)
        document = json.loads(json.dumps(status.to_dict()))
        assert document["state"] == "complete"
        assert document["cells"]["pending"] == 0
        assert document["tenants"] == ["default"]


class TestExecuteRun:
    def test_serial_and_dag_reports_identical(self):
        profile = ExperimentProfile.smoke()
        serial = api.execute_run("fig3", profile)
        assert serial.executor_stats is None
        dag = api.execute_run("fig3", profile.with_exec_plan("dag:thread"))
        assert dag.executor_stats is not None
        assert dag.report == serial.report

    def test_reuses_ambient_executor(self):
        from repro.exec.dag import DagExecutor, executor_scope

        profile = ExperimentProfile.smoke().with_exec_plan("dag:thread")
        with DagExecutor.from_spec("thread") as executor:
            with executor_scope(executor, "test"):
                outcome = api.execute_run("fig3", profile)
            # The ambient executor was reused, not a private one: the
            # facade reports the shared pool's stats.
            assert outcome.executor_stats is not None
            assert (
                outcome.executor_stats.to_dict() == executor.stats.to_dict()
            )

    def test_run_spec_frozen(self):
        spec = api.RunSpec.coerce("fig3")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 1
