"""Tests for the core and MPSoC platform models."""

import pytest

from repro.arch import CoreSpec, MPSoC, ProcessingCore, ScalingTable


class TestCoreSpec:
    def test_defaults_match_paper_storage(self):
        spec = CoreSpec()
        assert spec.dcache_bits == 8 * 1024
        assert spec.icache_bits == 16 * 1024
        assert spec.memory_bits == 512 * 1024
        assert spec.total_storage_bits == (8 + 16 + 512) * 1024

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"switched_capacitance_f": 0.0},
            {"switched_capacitance_f": -1e-12},
            {"dcache_bits": 0},
            {"icache_bits": -1},
            {"memory_bits": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CoreSpec(**kwargs)


class TestProcessingCore:
    def test_level_lookup(self, three_level_table):
        core = ProcessingCore(index=0, scaling_coefficient=2)
        assert core.frequency_hz(three_level_table) == pytest.approx(1e8)
        assert core.vdd_v(three_level_table) == pytest.approx(0.58, abs=5e-3)

    def test_set_scaling_validates(self, three_level_table):
        core = ProcessingCore(index=0)
        core.set_scaling(3, three_level_table)
        assert core.scaling_coefficient == 3
        with pytest.raises(ValueError):
            core.set_scaling(4, three_level_table)
        assert core.scaling_coefficient == 3  # unchanged after failure

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            ProcessingCore(index=-1)

    def test_rejects_zero_coefficient(self):
        with pytest.raises(ValueError):
            ProcessingCore(index=0, scaling_coefficient=0)


class TestMPSoC:
    def test_default_scaling_is_deepest(self, platform4):
        # The Fig. 4 sweep starts at the lowest-power configuration.
        assert platform4.scaling_vector() == (3, 3, 3, 3)

    def test_num_cores_and_iteration(self, platform4):
        assert platform4.num_cores == 4
        assert len(platform4) == 4
        assert [core.index for core in platform4] == [0, 1, 2, 3]

    def test_set_scaling_vector(self, platform4):
        platform4.set_scaling_vector([2, 2, 3, 2])
        assert platform4.scaling_vector() == (2, 2, 3, 2)

    def test_set_scaling_vector_validates_length(self, platform4):
        with pytest.raises(ValueError):
            platform4.set_scaling_vector([1, 2])

    def test_set_scaling_vector_validates_range(self, platform4):
        with pytest.raises(ValueError):
            platform4.set_scaling_vector([1, 2, 3, 4])

    def test_level_frequency_voltage_queries(self, platform4):
        platform4.set_scaling_vector([1, 2, 3, 1])
        assert platform4.frequency_hz(0) == pytest.approx(2e8)
        assert platform4.frequency_hz(1) == pytest.approx(1e8)
        assert platform4.vdd_v(2) == pytest.approx(0.44, abs=5e-3)

    def test_with_scaling_is_a_copy(self, platform4):
        other = platform4.with_scaling([1, 1, 1, 1])
        assert other.scaling_vector() == (1, 1, 1, 1)
        assert platform4.scaling_vector() == (3, 3, 3, 3)
        assert other.scaling_table is platform4.scaling_table

    def test_initial_scaling_parameter(self):
        platform = MPSoC(2, scaling=[1, 2])
        assert platform.scaling_vector() == (1, 2)

    def test_rejects_bad_initial_scaling(self):
        with pytest.raises(ValueError):
            MPSoC(2, scaling=[1, 9])
        with pytest.raises(ValueError):
            MPSoC(2, scaling=[1])

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MPSoC(0)

    def test_custom_table(self):
        platform = MPSoC(2, scaling_table=ScalingTable.arm7_two_level())
        assert platform.scaling_vector() == (2, 2)

    def test_paper_reference_platform(self):
        platform = MPSoC.paper_reference()
        assert platform.num_cores == 4
        assert platform.scaling_table.num_levels == 3

    def test_cores_share_spec(self, platform4):
        specs = {id(core.spec) for core in platform4}
        assert len(specs) == 1
