"""Tests for the DVS model: Eq. (2), Table I and the level presets."""


import pytest

from repro.arch.dvs import (
    ARM7_BASE_FREQUENCY_MHZ,
    ScalingLevel,
    ScalingTable,
    arm7_vdd_for_frequency,
    uniform_assignment,
)


class TestVddLaw:
    def test_nominal_point_is_one_volt(self):
        # Eq. (2): 200 MHz -> 1.0 V (Table I row 1).
        assert arm7_vdd_for_frequency(200.0) == pytest.approx(1.0, abs=1e-3)

    def test_half_speed_point(self):
        # 100 MHz -> 0.58 V (Table I row 2).
        assert arm7_vdd_for_frequency(100.0) == pytest.approx(0.58, abs=5e-3)

    def test_third_speed_point(self):
        # 66.7 MHz -> 0.44 V (Table I row 3).
        assert arm7_vdd_for_frequency(200.0 / 3.0) == pytest.approx(0.44, abs=5e-3)

    def test_voltage_monotone_in_frequency(self):
        voltages = [arm7_vdd_for_frequency(f) for f in (50, 100, 150, 200, 236)]
        assert voltages == sorted(voltages)

    @pytest.mark.parametrize("bad", [0.0, -1.0, -200.0])
    def test_rejects_non_positive_frequency(self, bad):
        with pytest.raises(ValueError):
            arm7_vdd_for_frequency(bad)


class TestScalingLevel:
    def test_cycle_time(self):
        level = ScalingLevel(frequency_mhz=200.0, vdd_v=1.0)
        assert level.cycle_time_s == pytest.approx(5e-9)
        assert level.frequency_hz == pytest.approx(2e8)

    def test_from_frequency_uses_law(self):
        level = ScalingLevel.from_frequency(100.0)
        assert level.vdd_v == pytest.approx(arm7_vdd_for_frequency(100.0))

    @pytest.mark.parametrize("f,v", [(0, 1.0), (-5, 1.0), (100, 0), (100, -0.1)])
    def test_rejects_invalid(self, f, v):
        with pytest.raises(ValueError):
            ScalingLevel(frequency_mhz=f, vdd_v=v)


class TestScalingTable:
    def test_three_level_matches_table_one(self, three_level_table):
        table = three_level_table
        assert table.num_levels == 3
        assert table.frequency_mhz(1) == pytest.approx(200.0)
        assert table.frequency_mhz(2) == pytest.approx(100.0)
        assert table.frequency_mhz(3) == pytest.approx(200.0 / 3.0)
        assert table.vdd_v(1) == pytest.approx(1.0, abs=1e-3)
        assert table.vdd_v(2) == pytest.approx(0.58, abs=5e-3)
        assert table.vdd_v(3) == pytest.approx(0.44, abs=5e-3)

    def test_two_level_preset(self):
        table = ScalingTable.arm7_two_level()
        assert table.num_levels == 2
        assert table.frequency_mhz(2) == pytest.approx(100.0)

    def test_four_level_preset_has_boost_point(self):
        table = ScalingTable.arm7_four_level()
        assert table.num_levels == 4
        assert table.frequency_mhz(1) == pytest.approx(236.0)
        assert table.vdd_v(1) == pytest.approx(1.2)
        # Remaining rows are Table I shifted by one.
        assert table.frequency_mhz(2) == pytest.approx(200.0)

    def test_preset_lookup(self):
        for levels in (2, 3, 4):
            assert ScalingTable.arm7_levels(levels).num_levels == levels
        with pytest.raises(ValueError):
            ScalingTable.arm7_levels(5)

    def test_deepest_coefficient(self, three_level_table):
        assert three_level_table.deepest_coefficient == 3

    @pytest.mark.parametrize("bad", [0, 4, -1])
    def test_out_of_range_coefficient(self, three_level_table, bad):
        with pytest.raises(ValueError):
            three_level_table.level(bad)

    def test_non_integer_coefficient(self, three_level_table):
        with pytest.raises(TypeError):
            three_level_table.level(1.5)

    def test_rejects_unordered_levels(self):
        fast = ScalingLevel.from_frequency(100.0)
        slow = ScalingLevel.from_frequency(200.0)
        with pytest.raises(ValueError):
            ScalingTable([fast, slow])

    def test_rejects_voltage_inversion(self):
        high = ScalingLevel(frequency_mhz=200.0, vdd_v=0.5)
        low = ScalingLevel(frequency_mhz=100.0, vdd_v=0.9)
        with pytest.raises(ValueError):
            ScalingTable([high, low])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ScalingTable([])

    def test_validate_assignment(self, three_level_table):
        assert three_level_table.validate_assignment([1, 2, 3]) == (1, 2, 3)
        with pytest.raises(ValueError):
            three_level_table.validate_assignment([1, 4])

    def test_equality_and_hash(self):
        assert ScalingTable.arm7_three_level() == ScalingTable.arm7_three_level()
        assert hash(ScalingTable.arm7_three_level()) == hash(
            ScalingTable.arm7_three_level()
        )
        assert ScalingTable.arm7_three_level() != ScalingTable.arm7_two_level()

    def test_iteration_order_fastest_first(self, three_level_table):
        frequencies = [level.frequency_mhz for level in three_level_table]
        assert frequencies == sorted(frequencies, reverse=True)


class TestUniformAssignment:
    def test_basic(self):
        assert uniform_assignment(4, 3) == [3, 3, 3, 3]

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            uniform_assignment(0, 1)


def test_base_frequency_constant():
    assert ARM7_BASE_FREQUENCY_MHZ == 200.0
