"""Tests for the dynamic power model (Eqs. 1 and 5)."""

import pytest

from repro.arch import PowerModel


class TestCorePower:
    def test_quadratic_in_voltage(self):
        model = PowerModel(switched_capacitance_f=1e-10)
        p1 = model.core_power_w(1e8, 1.0)
        p2 = model.core_power_w(1e8, 0.5)
        assert p1 / p2 == pytest.approx(4.0)

    def test_linear_in_frequency(self):
        model = PowerModel(switched_capacitance_f=1e-10)
        assert model.core_power_w(2e8, 1.0) == pytest.approx(
            2 * model.core_power_w(1e8, 1.0)
        )

    def test_linear_in_activity(self):
        model = PowerModel(switched_capacitance_f=1e-10)
        full = model.core_power_w(1e8, 1.0, activity=1.0)
        half = model.core_power_w(1e8, 1.0, activity=0.5)
        assert half == pytest.approx(full / 2)

    def test_explicit_value(self):
        # P = alpha * C_L * f * V^2 = 1 * 1e-10 * 1e8 * 1 = 1e-2 W.
        model = PowerModel(switched_capacitance_f=1e-10)
        assert model.core_power_w(1e8, 1.0) == pytest.approx(1e-2)

    @pytest.mark.parametrize("activity", [-0.1, 1.5])
    def test_rejects_bad_activity(self, activity):
        model = PowerModel(switched_capacitance_f=1e-10)
        with pytest.raises(ValueError):
            model.core_power_w(1e8, 1.0, activity=activity)

    def test_rejects_missing_capacitance(self):
        with pytest.raises(ValueError):
            PowerModel().core_power_w(1e8, 1.0)

    def test_rejects_non_positive_capacitance(self):
        with pytest.raises(ValueError):
            PowerModel(switched_capacitance_f=0.0)


class TestPlatformPower:
    def test_sums_over_cores(self, platform4):
        model = PowerModel(switched_capacitance_f=1e-10)
        uniform = model.platform_power_w(platform4, scaling=[1, 1, 1, 1])
        single = model.core_power_w(
            platform4.scaling_table.frequency_hz(1),
            platform4.scaling_table.vdd_v(1),
        )
        assert uniform == pytest.approx(4 * single)

    def test_uses_platform_scaling_by_default(self, platform4):
        model = PowerModel(switched_capacitance_f=1e-10)
        platform4.set_scaling_vector([2, 2, 2, 2])
        assert model.platform_power_w(platform4) == pytest.approx(
            model.platform_power_w(platform4, scaling=[2, 2, 2, 2])
        )

    def test_deeper_scaling_uses_less_power(self, platform4):
        model = PowerModel()
        nominal = model.platform_power_mw(platform4, scaling=[1, 1, 1, 1])
        deep = model.platform_power_mw(platform4, scaling=[3, 3, 3, 3])
        assert deep < nominal / 4  # f halves thrice-ish and V^2 shrinks

    def test_activities_scale_power(self, platform4):
        model = PowerModel()
        busy = model.platform_power_w(platform4, activities=[1, 1, 1, 1])
        idle_half = model.platform_power_w(platform4, activities=[0.5] * 4)
        assert idle_half == pytest.approx(busy / 2)

    def test_falls_back_to_core_spec_capacitance(self, platform4):
        implicit = PowerModel().platform_power_w(platform4)
        explicit = PowerModel(
            platform4.core_spec.switched_capacitance_f
        ).platform_power_w(platform4)
        assert implicit == pytest.approx(explicit)

    def test_rejects_wrong_length_vectors(self, platform4):
        model = PowerModel()
        with pytest.raises(ValueError):
            model.platform_power_w(platform4, scaling=[1, 1])
        with pytest.raises(ValueError):
            model.platform_power_w(platform4, activities=[1.0])

    def test_milliwatt_conversion(self, platform4):
        model = PowerModel()
        assert model.platform_power_mw(platform4) == pytest.approx(
            1e3 * model.platform_power_w(platform4)
        )
