"""Batched candidate screening in the searchers + the screening policy.

Contract under test:

* ``batch_size=1`` is **bit-identical** to the serial walk in both
  searchers — same RNG stream, same evaluator traffic, same returned
  design point;
* larger batches are deterministic under a seed and produce feasible
  designs;
* batching and incremental screening are mutually exclusive;
* the ``"auto"`` screening policy applies the >= 100-task threshold
  (the ROADMAP-flagged regression fix: sub-100-task compiled
  evaluations are too cheap for the preview to pay off).
"""

import pytest

from repro.experiments.common import ExperimentProfile, build_optimizer
from repro.mapping import Mapping, MappingEvaluator
from repro.mapping.incremental import SCREENING_MIN_TASKS, resolve_screening
from repro.optim import (
    AnnealingConfig,
    OptimizedMappingSearch,
    SEUObjective,
    SimulatedAnnealingMapper,
)
from repro.taskgraph import RandomGraphConfig, mpeg2_decoder, random_task_graph
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S

from repro.arch import MPSoC


@pytest.fixture(scope="module")
def mpeg2():
    return mpeg2_decoder()


def _evaluator(mpeg2):
    return MappingEvaluator(
        mpeg2, MPSoC.paper_reference(4), deadline_s=MPEG2_DEADLINE_S
    )


def _annealer(evaluator, batch_size=0, **kwargs):
    return SimulatedAnnealingMapper(
        evaluator,
        SEUObjective(),
        config=AnnealingConfig(max_iterations=400),
        seed=7,
        deadline_penalty=True,
        require_all_cores=True,
        batch_size=batch_size,
        **kwargs,
    )


class TestAnnealerBatchMode:
    def test_batch_size_one_is_bit_identical(self, mpeg2):
        serial_evaluator = _evaluator(mpeg2)
        batch_evaluator = _evaluator(mpeg2)
        initial = Mapping.round_robin(mpeg2, 4)
        serial = _annealer(serial_evaluator).run(initial, (2, 2, 3, 2))
        batched = _annealer(batch_evaluator, batch_size=1).run(
            initial, (2, 2, 3, 2)
        )
        assert batched == serial
        assert batched.mapping == serial.mapping
        assert batch_evaluator.evaluations == serial_evaluator.evaluations
        assert batch_evaluator.cache_info == serial_evaluator.cache_info

    def test_larger_batches_deterministic_and_feasible(self, mpeg2):
        initial = Mapping.round_robin(mpeg2, 4)
        runs = [
            _annealer(_evaluator(mpeg2), batch_size=16).run(initial, (2, 2, 3, 2))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert runs[0].meets_deadline
        assert runs[0].expected_seus > 0

    def test_batch_mode_survives_restarts(self, mpeg2):
        evaluator = _evaluator(mpeg2)
        mapper = SimulatedAnnealingMapper(
            evaluator,
            SEUObjective(),
            config=AnnealingConfig(max_iterations=200, restarts=3),
            seed=3,
            require_all_cores=True,
            batch_size=8,
        )
        point = mapper.run(Mapping.round_robin(mpeg2, 4), (2, 2, 3, 2))
        assert point.expected_seus > 0
        assert len(mapper.restart_evaluations) == 3

    def test_screening_and_batching_are_exclusive(self, mpeg2):
        with pytest.raises(ValueError, match="mutually exclusive"):
            _annealer(_evaluator(mpeg2), batch_size=4, screening=True)

    def test_negative_batch_size_rejected(self, mpeg2):
        with pytest.raises(ValueError, match="non-negative"):
            _annealer(_evaluator(mpeg2), batch_size=-1)


class TestWalkBatchMode:
    def _search(self, evaluator, batch_size=0, **kwargs):
        return OptimizedMappingSearch(
            evaluator,
            max_iterations=300,
            seed=11,
            batch_size=batch_size,
            **kwargs,
        )

    def test_batch_size_one_is_bit_identical(self, mpeg2):
        initial = Mapping.round_robin(mpeg2, 4)
        serial_evaluator = _evaluator(mpeg2)
        batch_evaluator = _evaluator(mpeg2)
        serial = self._search(serial_evaluator).run(initial)
        batched = self._search(batch_evaluator, batch_size=1).run(initial)
        assert batched.best == serial.best
        assert batched.iterations == serial.iterations
        assert batched.improvements == serial.improvements
        assert batched.feasible == serial.feasible
        assert batch_evaluator.evaluations == serial_evaluator.evaluations

    def test_larger_batches_deterministic(self, mpeg2):
        initial = Mapping.round_robin(mpeg2, 4)
        first = self._search(_evaluator(mpeg2), batch_size=8).run(initial)
        second = self._search(_evaluator(mpeg2), batch_size=8).run(initial)
        assert first.best == second.best
        assert first.iterations == second.iterations == 300

    def test_history_matches_serial_at_batch_one(self, mpeg2):
        initial = Mapping.round_robin(mpeg2, 4)
        serial = self._search(_evaluator(mpeg2), record_history=True).run(initial)
        batched = self._search(
            _evaluator(mpeg2), batch_size=1, record_history=True
        ).run(initial)
        assert batched.history == serial.history

    def test_screening_and_batching_are_exclusive(self, mpeg2):
        with pytest.raises(ValueError, match="mutually exclusive"):
            self._search(_evaluator(mpeg2), batch_size=4, screen_moves=True)


class TestScreeningPolicy:
    def test_resolve_values(self):
        assert resolve_screening(False, 10) is False
        assert resolve_screening(True, 10) is True  # explicit opt-in wins
        assert resolve_screening("auto", SCREENING_MIN_TASKS - 1) is False
        assert resolve_screening("auto", SCREENING_MIN_TASKS) is True
        with pytest.raises(ValueError, match="screening"):
            resolve_screening("sometimes", 10)

    def test_auto_is_off_on_small_graphs(self, mpeg2):
        mapper = _annealer(_evaluator(mpeg2), screening="auto")
        assert mapper.screening is False
        search = OptimizedMappingSearch(
            _evaluator(mpeg2), max_iterations=10, screen_moves="auto"
        )
        assert search.screen_moves is False

    def test_auto_is_on_at_threshold(self):
        graph = random_task_graph(
            RandomGraphConfig(num_tasks=SCREENING_MIN_TASKS), seed=1
        )
        evaluator = MappingEvaluator(
            graph,
            MPSoC.paper_reference(4),
            deadline_s=RandomGraphConfig(
                num_tasks=SCREENING_MIN_TASKS
            ).deadline_s,
        )
        mapper = SimulatedAnnealingMapper(
            evaluator, SEUObjective(), seed=0, screening="auto"
        )
        assert mapper.screening is True

    def test_explicit_true_still_screens_small_graphs(self, mpeg2):
        # Opt-in via config is preserved: True means always.
        mapper = _annealer(_evaluator(mpeg2), screening=True)
        assert mapper.screening is True


class TestProfilePlumbing:
    def test_batch_eval_reaches_the_mappers(self, mpeg2):
        profile = ExperimentProfile.fast()
        batched_profile = ExperimentProfile(batch_eval=8, screen_moves="auto")
        optimizer = build_optimizer(mpeg2, 4, MPEG2_DEADLINE_S, batched_profile)
        assert optimizer.mapper.batch_size == 8
        assert optimizer.mapper.screen_moves == "auto"
        baseline = build_optimizer(
            mpeg2, 4, MPEG2_DEADLINE_S, batched_profile, objective=SEUObjective()
        )
        assert baseline.mapper.batch_size == 8
        default = build_optimizer(mpeg2, 4, MPEG2_DEADLINE_S, profile)
        assert default.mapper.batch_size == 0

    def test_batched_optimize_selects_a_design(self, mpeg2):
        profile = ExperimentProfile(
            search_iterations=150, stop_after_feasible=2, batch_eval=8
        )
        outcome = build_optimizer(mpeg2, 4, MPEG2_DEADLINE_S, profile).optimize()
        assert outcome.best is not None
        assert outcome.best.meets_deadline
