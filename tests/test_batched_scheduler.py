"""Batched scheduler parity: B mappings in one numpy pass, bit-for-bit.

The suite asserts the structural fact the vectorized path rests on
(mapping-independent pop order) and then exact — no tolerance —
equality of everything the batch result exposes against per-mapping
``ListScheduler.schedule`` runs, over randomized graphs, mappings,
scalings and both comm models, including degenerate batches of size 0
and 1.  Runs in CI both plain and with ``REPRO_VALIDATE_SCHEDULES=1``
armed (the materialized schedules then pass the from_arrays row
checks).
"""

import random

import pytest

from repro.arch import MPSoC
from repro.mapping import Mapping
from repro.sched import BatchedListScheduler, ListScheduler, numpy_available
from repro.taskgraph import (
    RandomGraphConfig,
    fork_join_graph,
    mpeg2_decoder,
    pipeline_graph,
    random_task_graph,
)

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable: vectorized path disabled"
)


def _random_mappings(graph, num_cores, count, seed):
    rng = random.Random(seed)
    names = graph.task_names()
    return [
        Mapping({name: rng.randrange(num_cores) for name in names}, num_cores)
        for _ in range(count)
    ]


def _frequencies(num_cores, seed):
    table = MPSoC.paper_reference(num_cores).scaling_table
    rng = random.Random(seed)
    return [
        table.frequency_hz(rng.choice((1, 2, 3))) for _ in range(num_cores)
    ]


def _assert_rows_match(batched_result, row, schedule):
    materialized = batched_result.schedule(row)
    assert materialized.to_rows() == schedule.to_rows()
    assert materialized.makespan_s() == schedule.makespan_s()
    assert batched_result.makespan_s(row) == schedule.makespan_s()
    assert batched_result.makespan_cycles(row) == schedule.makespan_cycles()
    for core in range(schedule.num_cores):
        assert float(batched_result.busy_s[row][core]) == schedule.busy_s(core)
        assert int(batched_result.busy_cycles[row][core]) == schedule.busy_cycles(
            core
        )
    assert batched_result.activities(row) == schedule.activities()


class TestStaticOrder:
    def test_pop_order_is_mapping_independent(self):
        """Serial schedules of different mappings share one pop order."""
        graph = mpeg2_decoder()
        scheduler = ListScheduler(graph, [2e8] * 4)
        batched = BatchedListScheduler(graph, [2e8] * 4)
        compiled = graph.compiled()
        for mapping in _random_mappings(graph, 4, 5, seed=1):
            schedule = scheduler.schedule(mapping)
            # Reconstruct the serial pop order: ascending finish per
            # core cannot recover it, but the entry list sorted back by
            # the schedule's internal order can — instead compare via
            # the batched order directly: every task's batched window
            # must equal the serial one.
            result = batched.run_mappings([mapping])
            for entry in schedule:
                task = compiled.index[entry.name]
                assert float(result.starts[0][task]) == entry.start_s
                assert float(result.finishes[0][task]) == entry.finish_s
        assert len(batched.order) == graph.num_tasks

    def test_order_matches_priorities(self):
        graph = pipeline_graph(6)
        batched = BatchedListScheduler(graph, [1e8] * 3)
        # A pipeline has a unique topological order; the pop order
        # must be exactly that.
        compiled = graph.compiled()
        assert list(batched.order) == list(compiled.topo_order)


class TestBatchParity:
    @pytest.mark.parametrize("comm_model", ["dedicated", "shared-bus"])
    def test_mpeg2_batch_matches_serial(self, comm_model):
        graph = mpeg2_decoder()
        frequencies = _frequencies(4, seed=7)
        serial = ListScheduler(graph, frequencies, comm_model=comm_model)
        batched = BatchedListScheduler(graph, frequencies, comm_model=comm_model)
        mappings = _random_mappings(graph, 4, 23, seed=11)
        result = batched.run_mappings(mappings)
        assert len(result) == len(mappings)
        for row, mapping in enumerate(mappings):
            _assert_rows_match(result, row, serial.schedule(mapping))

    @pytest.mark.parametrize("num_tasks,num_cores", [(12, 2), (30, 4), (60, 6)])
    @pytest.mark.parametrize("comm_model", ["dedicated", "shared-bus"])
    def test_random_graphs_match_serial(self, num_tasks, num_cores, comm_model):
        graph = random_task_graph(
            RandomGraphConfig(num_tasks=num_tasks), seed=num_tasks
        )
        frequencies = _frequencies(num_cores, seed=num_tasks)
        serial = ListScheduler(graph, frequencies, comm_model=comm_model)
        batched = BatchedListScheduler(
            graph, frequencies, comm_model=comm_model
        )
        mappings = _random_mappings(graph, num_cores, 9, seed=num_tasks + 1)
        result = batched.run_mappings(mappings)
        for row, mapping in enumerate(mappings):
            _assert_rows_match(result, row, serial.schedule(mapping))

    def test_fork_join_single_core(self):
        graph = fork_join_graph(4)
        serial = ListScheduler(graph, [1e8])
        batched = BatchedListScheduler(graph, [1e8])
        mapping = Mapping.all_on_core(graph, 1)
        result = batched.run_mappings([mapping])
        _assert_rows_match(result, 0, serial.schedule(mapping))

    def test_degenerate_batches(self):
        graph = mpeg2_decoder()
        batched = BatchedListScheduler(graph, [2e8] * 4)
        empty = batched.run_mappings([])
        assert len(empty) == 0
        single = batched.run_mappings([Mapping.round_robin(graph, 4)])
        assert len(single) == 1
        serial = ListScheduler(graph, [2e8] * 4)
        _assert_rows_match(single, 0, serial.schedule(Mapping.round_robin(graph, 4)))

    def test_schedules_helper_verifies(self):
        graph = mpeg2_decoder()
        batched = BatchedListScheduler(graph, [2e8] * 4)
        mappings = _random_mappings(graph, 4, 4, seed=3)
        for mapping, schedule in zip(mappings, batched.schedules(mappings)):
            schedule.verify(graph, mapping)


class TestValidation:
    def test_rejects_wrong_core_count(self):
        graph = mpeg2_decoder()
        batched = BatchedListScheduler(graph, [2e8] * 4)
        with pytest.raises(ValueError, match="scheduler has"):
            batched.run_mappings([Mapping.round_robin(graph, 3)])

    def test_rejects_wrong_coverage(self):
        graph = mpeg2_decoder()
        batched = BatchedListScheduler(graph, [2e8] * 4)
        other = pipeline_graph(6)
        with pytest.raises(ValueError, match="misses tasks"):
            batched.run_mappings([Mapping.round_robin(other, 4)])

    def test_rejects_short_rows(self):
        graph = mpeg2_decoder()
        batched = BatchedListScheduler(graph, [2e8] * 4)
        with pytest.raises(ValueError, match="assign all"):
            batched.run([[0, 1]])

    def test_rejects_out_of_range_cores(self):
        graph = mpeg2_decoder()
        batched = BatchedListScheduler(graph, [2e8] * 4)
        with pytest.raises(ValueError, match="core indices"):
            batched.run([[9] * graph.num_tasks])

    def test_rejects_bad_frequencies(self):
        graph = mpeg2_decoder()
        with pytest.raises(ValueError, match="positive"):
            BatchedListScheduler(graph, [2e8, -1.0])
        with pytest.raises(ValueError, match="comm model"):
            BatchedListScheduler(graph, [2e8], comm_model="wormhole")

    def test_graph_mutation_renews_plan(self):
        graph = pipeline_graph(4)
        batched = BatchedListScheduler(graph, [1e8] * 2)
        before = batched.order
        graph.add_task("tail", cycles=1000)
        graph.add_edge("t4", "tail", comm_cycles=10)
        mapping = Mapping(
            {name: 0 for name in graph.task_names()}, 2
        )
        result = batched.run_mappings([mapping])
        assert len(batched.order) == len(before) + 1
        serial = ListScheduler(graph, [1e8] * 2)
        _assert_rows_match(result, 0, serial.schedule(mapping))
