"""Intra-cell checkpoints: per-scaling resume, byte-identical reports.

The acceptance contract: a ``full``-style cell killed mid-scaling-sweep
and resumed recomputes only the scalings after the last durable
checkpoint, and the final report is **byte-identical** to an
uninterrupted run — the same determinism bar the cell-level resume
already meets, pushed inside the cell.

The kill is simulated with a ``BaseException`` raised from inside the
checkpoint append: it flies past every ``except Exception`` guard in
the cell runner (exactly like SIGKILL never reaches them) and leaves
the store with completed cells, a partial checkpoint file and a
manifest still marked running.  The CI ``e2e-store`` leg repeats the
experiment with a real ``SIGKILL``-ed subprocess.
"""

import pytest

from repro.experiments import ExperimentProfile, run_table3
from repro.experiments.runner import render_report
from repro.store import RECORDS_NAME
from repro.store.checkpoint import (
    CellCheckpoint,
    checkpoint_path,
    checkpoint_scope,
    clear_checkpoints,
    current_checkpoint,
    discard_cell_checkpoint,
)
from repro.taskgraph import RandomGraphConfig, random_task_graph

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def tiny_profile():
    return ExperimentProfile(
        name="tiny",
        search_iterations=150,
        sa_iterations=300,
        stop_after_feasible=2,
        seed=0,
    )


@pytest.fixture(scope="module")
def tiny_app():
    config = RandomGraphConfig(num_tasks=12)
    return random_task_graph(config, seed=3), config.deadline_s


# ---------------------------------------------------------------------------
# The checkpoint file itself.
# ---------------------------------------------------------------------------


class TestCellCheckpoint:
    def open(self, tmp_path, fingerprint="f" * 16, cell="000:a"):
        return CellCheckpoint(
            tmp_path / "cell-000.jsonl", fingerprint=fingerprint, cell_key=cell
        )

    def test_record_restore_roundtrip(self, tmp_path):
        checkpoint = self.open(tmp_path)
        checkpoint.record(-1, ("baseline", 3))
        checkpoint.record(0, ("scaling-0", 7))
        fresh = self.open(tmp_path)
        assert set(fresh.positions()) == {-1, 0}
        assert fresh.restore(-1) == ("baseline", 3)
        assert fresh.restore(0) == ("scaling-0", 7)
        assert fresh.restore(1) is None

    def test_fingerprint_mismatch_invalidates_everything(self, tmp_path):
        self.open(tmp_path).record(0, ("value", 1))
        other = self.open(tmp_path, fingerprint="0" * 16)
        assert set(other.positions()) == set()
        assert other.restore(0) is None

    def test_cell_key_mismatch_invalidates_everything(self, tmp_path):
        self.open(tmp_path).record(0, ("value", 1))
        other = self.open(tmp_path, cell="001:b")
        assert set(other.positions()) == set()

    def test_torn_tail_keeps_earlier_records(self, tmp_path):
        checkpoint = self.open(tmp_path)
        checkpoint.record(0, ("kept", 1))
        checkpoint.record(1, ("also kept", 2))
        with checkpoint.path.open("a", encoding="utf-8") as handle:
            handle.write('{"position": 2, "payl')  # interrupted append
        fresh = self.open(tmp_path)
        assert set(fresh.positions()) == {0, 1}
        assert fresh.restore(0) == ("kept", 1)

    def test_sweeps_are_isolated(self, tmp_path):
        """One cell, several optimizations: sweep n restores only sweep n.

        ``run_all`` cells execute whole experiments (``table2`` runs
        several optimizations back to back); without the sweep key,
        invocation 2 would restore invocation 1's positions.
        """
        checkpoint = self.open(tmp_path)
        assert (checkpoint.next_sweep(), checkpoint.next_sweep()) == (0, 1)
        checkpoint.record(0, ("first sweep", 1), 0)
        checkpoint.record(0, ("second sweep", 2), 1)
        fresh = self.open(tmp_path)
        assert fresh.restore(0, 0) == ("first sweep", 1)
        assert fresh.restore(0, 1) == ("second sweep", 2)
        assert fresh.restore(0, 2) is None
        assert set(fresh.positions(0)) == {0}
        assert set(fresh.positions(1)) == {0}
        # The counter restarts with each object (one per cell
        # execution, resume included), keeping invocations aligned.
        assert fresh.next_sweep() == 0

    def test_latest_record_wins_per_position(self, tmp_path):
        checkpoint = self.open(tmp_path)
        checkpoint.record(0, ("first", 1))
        checkpoint.record(0, ("second", 2))
        assert self.open(tmp_path).restore(0) == ("second", 2)

    def test_discard_removes_the_file(self, tmp_path):
        checkpoint = self.open(tmp_path)
        checkpoint.record(0, ("value", 1))
        assert checkpoint.path.exists()
        checkpoint.discard()
        assert not checkpoint.path.exists()
        assert set(self.open(tmp_path).positions()) == set()

    def test_scope_is_thread_local(self, tmp_path):
        import threading

        checkpoint = self.open(tmp_path)
        seen = {}

        def worker():
            seen["worker"] = current_checkpoint()

        with checkpoint_scope(checkpoint):
            assert current_checkpoint() is checkpoint
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert current_checkpoint() is None
        assert seen["worker"] is None  # scopes never leak across threads

    def test_clear_checkpoints_empties_the_grid_directory(self, tmp_path):
        grid = tmp_path / "grid"
        for index in (0, 3):
            path = checkpoint_path(grid, index)
            CellCheckpoint(
                path, fingerprint="f" * 16, cell_key=f"{index:03d}:a"
            ).record(0, ("value", 1))
        assert checkpoint_path(grid, 0).exists()
        clear_checkpoints(grid)
        assert not checkpoint_path(grid, 0).exists()
        assert not checkpoint_path(grid, 3).exists()

    def test_discard_cell_checkpoint_targets_one_cell(self, tmp_path):
        grid = tmp_path / "grid"
        for index in (0, 1):
            CellCheckpoint(
                checkpoint_path(grid, index),
                fingerprint="f" * 16,
                cell_key=f"{index:03d}:a",
            ).record(0, ("value", 1))
        discard_cell_checkpoint(grid, 0)
        assert not checkpoint_path(grid, 0).exists()
        assert checkpoint_path(grid, 1).exists()


# ---------------------------------------------------------------------------
# Mid-cell kill -> resume, end to end through run_cells + the store.
# ---------------------------------------------------------------------------


class _MidCellKill(BaseException):
    """Flies past ``except Exception`` guards, like SIGKILL would."""


def _arm_bomb(monkeypatch, after_records):
    """Kill the process-in-miniature after N durable checkpoint appends."""
    counter = {"appends": 0}
    original = CellCheckpoint.record

    def exploding_record(self, position, value, sweep=0):
        original(self, position, value, sweep)
        counter["appends"] += 1
        if counter["appends"] >= after_records:
            raise _MidCellKill()

    monkeypatch.setattr(CellCheckpoint, "record", exploding_record)
    return counter


class TestMidCellResume:
    CORE_COUNTS = (2, 3)

    def _reference(self, tiny_profile, tiny_app):
        graph, deadline_s = tiny_app
        result = run_table3(
            tiny_profile,
            core_counts=self.CORE_COUNTS,
            applications=[("tiny", graph, deadline_s)],
        )
        return render_report("table3", result, tiny_profile)

    def _run_stored(self, profile, tiny_app):
        graph, deadline_s = tiny_app
        result = run_table3(
            profile,
            core_counts=self.CORE_COUNTS,
            applications=[("tiny", graph, deadline_s)],
        )
        return render_report("table3", result, profile)

    def test_kill_mid_cell_resumes_at_last_scaling_byte_identical(
        self, tmp_path, tiny_profile, tiny_app, monkeypatch
    ):
        reference = self._reference(tiny_profile, tiny_app)
        stored = tiny_profile.with_store(str(tmp_path))

        counter = _arm_bomb(monkeypatch, after_records=2)
        with pytest.raises(_MidCellKill):
            self._run_stored(stored, tiny_app)
        monkeypatch.undo()
        assert counter["appends"] == 2

        # The kill left a partial checkpoint (baseline + 1 scaling) for
        # the first cell, and no completed cell records.
        partial = checkpoint_path(tmp_path / "table3", 0)
        assert partial.exists()
        assert len(partial.read_text().splitlines()) == 2
        records = tmp_path / "table3" / RECORDS_NAME
        assert not records.exists() or records.read_text() == ""

        # Count restores during the resume: the recorded scalings must
        # be served from the checkpoint, not recomputed.
        restores = {"hits": 0}
        original_restore = CellCheckpoint.restore

        def counting_restore(self, position, sweep=0):
            value = original_restore(self, position, sweep)
            if value is not None:
                restores["hits"] += 1
            return value

        monkeypatch.setattr(CellCheckpoint, "restore", counting_restore)
        resumed = tiny_profile.with_store(str(tmp_path), resume=True)
        assert self._run_stored(resumed, tiny_app) == reference
        monkeypatch.undo()
        assert restores["hits"] == 2  # baseline + the one durable scaling

        # Completion discarded the checkpoint; the grid is complete.
        assert not partial.exists()
        assert len(records.read_text().splitlines()) == len(self.CORE_COUNTS)

    def test_resume_under_dag_plan_is_byte_identical_too(
        self, tmp_path, tiny_profile, tiny_app, monkeypatch
    ):
        """Kill under the serial plan, resume under ``dag`` — same bytes."""
        reference = self._reference(tiny_profile, tiny_app)
        stored = tiny_profile.with_store(str(tmp_path))

        _arm_bomb(monkeypatch, after_records=3)
        with pytest.raises(_MidCellKill):
            self._run_stored(stored, tiny_app)
        monkeypatch.undo()
        assert checkpoint_path(tmp_path / "table3", 0).exists()

        resumed = tiny_profile.with_store(
            str(tmp_path), resume=True
        ).with_exec_plan("dag:serial")
        assert self._run_stored(resumed, tiny_app) == reference

    def test_fresh_run_ignores_other_fingerprints_checkpoints(
        self, tmp_path, tiny_profile, tiny_app, monkeypatch
    ):
        """A profile change invalidates checkpoints instead of reusing them."""
        reference = self._reference(tiny_profile, tiny_app)
        stored = tiny_profile.with_store(str(tmp_path))

        _arm_bomb(monkeypatch, after_records=2)
        with pytest.raises(_MidCellKill):
            self._run_stored(stored, tiny_app)
        monkeypatch.undo()

        # Poison the checkpoint with a different fingerprint: resume
        # must treat it as absent and still reproduce reference bytes.
        partial = checkpoint_path(tmp_path / "table3", 0)
        poisoned = partial.read_text().replace(
            '"fingerprint": "', '"fingerprint": "dead'
        )
        partial.write_text(poisoned, encoding="utf-8")
        resumed = tiny_profile.with_store(str(tmp_path), resume=True)
        assert self._run_stored(resumed, tiny_app) == reference

    def test_fresh_open_clears_stale_checkpoints(
        self, tmp_path, tiny_profile, tiny_app, monkeypatch
    ):
        stored = tiny_profile.with_store(str(tmp_path))
        _arm_bomb(monkeypatch, after_records=2)
        with pytest.raises(_MidCellKill):
            self._run_stored(stored, tiny_app)
        monkeypatch.undo()
        assert checkpoint_path(tmp_path / "table3", 0).exists()

        # A *fresh* (non-resume) open restarts the grid from scratch:
        # stale intra-cell progress must go with the stale records.
        self._run_stored(stored, tiny_app)
        assert not checkpoint_path(tmp_path / "table3", 0).exists()
