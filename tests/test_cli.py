"""Tests for the ``repro-seu`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_subcommand(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.id == "fig3"
        assert args.profile == "fast"

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize"])
        assert args.app == "mpeg2"
        assert args.cores == 4
        assert args.levels == 3

    def test_inject_defaults(self):
        args = build_parser().parse_args(["inject"])
        assert args.cores == 4
        assert args.runs == 20

    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_optimize_mpeg2(self, capsys):
        code = main(
            ["optimize", "--app", "mpeg2", "--cores", "4", "--iterations", "150"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "design:" in captured.out
        assert "core 1" in captured.out

    def test_optimize_random(self, capsys):
        code = main(
            [
                "optimize",
                "--app",
                "random",
                "--tasks",
                "10",
                "--cores",
                "2",
                "--iterations",
                "100",
            ]
        )
        assert code == 0
        assert "random-10" in capsys.readouterr().out

    def test_inject(self, capsys):
        code = main(["inject", "--runs", "3", "--scaling", "2,2,3,2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "expected SEUs" in captured.out
        assert "injected SEUs" in captured.out

    def test_experiment_fig3(self, capsys):
        # fig3 is the one experiment cheap enough for a CLI smoke test.
        code = main(["experiment", "fig3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "shape checks" in captured.out
        assert "[PASS]" in captured.out


class TestParallelFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.backend == "serial"
        assert args.experiment_backend == "serial"
        assert args.restart_backend == "serial"
        assert args.max_workers is None
        assert args.restarts is None

    def test_profile_plumbing(self):
        from repro.cli import _profile_from

        args = build_parser().parse_args(
            [
                "experiment",
                "table3",
                "--backend",
                "thread",
                "--experiment-backend",
                "process",
                "--restart-backend",
                "auto",
                "--max-workers",
                "3",
                "--restarts",
                "2",
            ]
        )
        # The per-cut flags still plumb through, but are deprecated in
        # favour of --exec-plan.
        with pytest.warns(DeprecationWarning, match="--exec-plan dag"):
            profile = _profile_from(args)
        assert profile.exec_backend == "thread"
        assert profile.experiment_backend == "process"
        assert profile.restart_backend == "auto"
        assert profile.exec_max_workers == 3
        assert profile.sa_restarts == 2

    def test_deprecated_flags_warn_by_name(self):
        from repro.cli import _profile_from

        args = build_parser().parse_args(
            ["experiment", "fig3", "--restart-backend", "thread"]
        )
        with pytest.warns(DeprecationWarning, match="--restart-backend"):
            _profile_from(args)

    def test_serial_flags_leave_profile_defaults(self):
        from repro.cli import _profile_from
        from repro.experiments import ExperimentProfile

        args = build_parser().parse_args(["experiment", "fig3"])
        assert _profile_from(args) == ExperimentProfile.fast()


class TestBatchEvalFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.batch_eval == 0
        assert args.screen_moves == "off"

    def test_profile_plumbing(self):
        from repro.cli import _profile_from

        args = build_parser().parse_args(
            ["experiment", "table3", "--batch-eval", "8"]
        )
        assert _profile_from(args).batch_eval == 8
        args = build_parser().parse_args(
            ["experiment", "table3", "--screen-moves", "auto"]
        )
        assert _profile_from(args).screen_moves == "auto"
        args = build_parser().parse_args(
            ["experiment", "table3", "--screen-moves", "on"]
        )
        assert _profile_from(args).screen_moves is True

    def test_conflicting_flags_fail_fast(self):
        from repro.cli import _profile_from

        args = build_parser().parse_args(
            [
                "experiment",
                "table3",
                "--batch-eval",
                "8",
                "--screen-moves",
                "auto",
            ]
        )
        with pytest.raises(SystemExit, match="mutually exclusive"):
            _profile_from(args)

    def test_negative_batch_eval_fails_fast(self):
        from repro.cli import _profile_from

        args = build_parser().parse_args(
            ["experiment", "table3", "--batch-eval", "-2"]
        )
        with pytest.raises(SystemExit, match="non-negative"):
            _profile_from(args)


class TestRunsSubcommand:
    def _populate(self, tmp_path):
        code = main(
            [
                "experiment",
                "fig3",
                "--profile",
                "smoke",
                "--store-dir",
                str(tmp_path),
            ]
        )
        assert code == 0

    def test_table_output(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["runs", "--store-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].split() == [
            "Run", "Status", "Done", "Failed", "Profile", "Seed", "Fingerprint",
        ]
        assert "fig3" in out and "complete" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["runs", "--store-dir", str(tmp_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document[0]["label"] == "fig3"
        assert document[0]["state"] == "complete"
        assert document[0]["cells"]["failed"] == 0

    def test_missing_store_dir_errors(self, tmp_path, capsys):
        assert main(["runs", "--store-dir", str(tmp_path / "nope")]) == 1
        assert "no such store directory" in capsys.readouterr().err

    def test_unknown_run_filter_errors(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["runs", "--store-dir", str(tmp_path), "--run", "zz"]) == 1
        assert "no run 'zz'" in capsys.readouterr().err


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve", "--store-dir", "/tmp/s"])
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.max_concurrency == 2
        assert args.queue_size == 64
        assert args.transport == "thread"
        assert args.exec_plan == "dag"
        assert args.func.__name__ == "_cmd_serve"

    def test_store_dir_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--store-dir",
                "/tmp/s",
                "--host",
                "0.0.0.0",
                "--port",
                "0",
                "--max-concurrency",
                "4",
                "--transport",
                "serial",
                "--exec-plan",
                "dag:thread",
            ]
        )
        assert args.host == "0.0.0.0"
        assert args.port == 0
        assert args.max_concurrency == 4
        assert args.transport == "serial"
        assert args.exec_plan == "dag:thread"
