"""CLI coverage for the bundled workload applications."""

import pytest

from repro.cli import main


@pytest.mark.parametrize("app", ["jpeg", "fft8", "cruise-control"])
def test_optimize_bundled_workloads(app, capsys):
    code = main(
        ["optimize", "--app", app, "--cores", "2", "--iterations", "100"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "design:" in captured.out
    assert "deadline met" in captured.out
