"""Tests for the comm-model pass-through in evaluator and simulator."""

import pytest

from repro.arch import MPSoC
from repro.mapping import Mapping, MappingEvaluator
from repro.sim import MPSoCSimulator
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S


class TestEvaluatorCommModel:
    def test_dedicated_is_default(self, mpeg2, platform4):
        evaluator = MappingEvaluator(mpeg2, platform4)
        assert evaluator.comm_model == "dedicated"

    def test_bus_changes_makespan(self, mpeg2, platform4, rr_mapping4):
        dedicated = MappingEvaluator(mpeg2, platform4)
        bus = MappingEvaluator(mpeg2, platform4, comm_model="shared-bus")
        tm_dedicated = dedicated.evaluate(rr_mapping4, (1, 1, 1, 1)).makespan_s
        tm_bus = bus.evaluate(rr_mapping4, (1, 1, 1, 1)).makespan_s
        assert tm_bus != tm_dedicated

    def test_bus_rejects_unknown_model(self, mpeg2, platform4, rr_mapping4):
        evaluator = MappingEvaluator(mpeg2, platform4, comm_model="bogus")
        with pytest.raises(ValueError):
            evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))

    def test_gamma_follows_bus_makespan(self, mpeg2, platform4, rr_mapping4):
        # Full-window exposure: a longer bus-contended window means
        # more expected SEUs for the same mapping.
        dedicated = MappingEvaluator(mpeg2, platform4)
        bus = MappingEvaluator(mpeg2, platform4, comm_model="shared-bus")
        d = dedicated.evaluate(rr_mapping4, (1, 1, 1, 1))
        b = bus.evaluate(rr_mapping4, (1, 1, 1, 1))
        assert (b.expected_seus > d.expected_seus) == (b.makespan_s > d.makespan_s)


class TestSimulatorCommModel:
    def test_simulator_matches_evaluator_per_model(self, mpeg2, platform4, rr_mapping4):
        for model in ("dedicated", "shared-bus"):
            evaluator = MappingEvaluator(mpeg2, platform4, comm_model=model)
            point = evaluator.evaluate(rr_mapping4, (2, 2, 2, 2))
            simulated = MPSoCSimulator(
                mpeg2, platform4, scaling=(2, 2, 2, 2), comm_model=model
            ).run(rr_mapping4)
            assert simulated.makespan_s == pytest.approx(point.makespan_s)

    def test_localized_mapping_model_invariant(self, mpeg2, platform4):
        mapping = Mapping.all_on_core(mpeg2, 4, 0)
        results = []
        for model in ("dedicated", "shared-bus"):
            simulator = MPSoCSimulator(
                mpeg2, platform4, scaling=(1, 1, 1, 1), comm_model=model
            )
            results.append(simulator.run(mapping).makespan_s)
        assert results[0] == pytest.approx(results[1])
