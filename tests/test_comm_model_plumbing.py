"""Tests for the comm-model pass-through in evaluator and simulator."""

import pytest

from repro.mapping import Mapping, MappingEvaluator
from repro.sched import ListScheduler
from repro.sim import MPSoCSimulator


class TestForPlatformCommModel:
    """``ListScheduler.for_platform`` must thread the comm parameters."""

    def test_default_stays_dedicated(self, mpeg2, platform4):
        scheduler = ListScheduler.for_platform(mpeg2, platform4)
        assert scheduler.comm_model == "dedicated"

    def test_shared_bus_reaches_scheduler(self, mpeg2, platform4, rr_mapping4):
        dedicated = ListScheduler.for_platform(mpeg2, platform4)
        bus = ListScheduler.for_platform(mpeg2, platform4, comm_model="shared-bus")
        assert bus.comm_model == "shared-bus"
        assert bus.makespan_s(rr_mapping4) != dedicated.makespan_s(rr_mapping4)

    def test_bus_frequency_reaches_scheduler(self, mpeg2, platform4, rr_mapping4):
        fast_bus = ListScheduler.for_platform(
            mpeg2, platform4, comm_model="shared-bus"
        )
        slow_bus = ListScheduler.for_platform(
            mpeg2, platform4, comm_model="shared-bus", bus_frequency_hz=1e6
        )
        assert slow_bus.makespan_s(rr_mapping4) > fast_bus.makespan_s(rr_mapping4)

    def test_matches_direct_construction(self, mpeg2, platform4, rr_mapping4):
        scaling = (2, 1, 2, 1)
        via_platform = ListScheduler.for_platform(
            mpeg2, platform4, scaling=scaling, comm_model="shared-bus"
        )
        table = platform4.scaling_table
        direct = ListScheduler(
            mpeg2,
            [table.frequency_hz(s) for s in scaling],
            comm_model="shared-bus",
        )
        assert tuple(via_platform.schedule(rr_mapping4)) == tuple(
            direct.schedule(rr_mapping4)
        )

    def test_rejects_unknown_model(self, mpeg2, platform4):
        with pytest.raises(ValueError):
            ListScheduler.for_platform(mpeg2, platform4, comm_model="bogus")


class TestEvaluatorCommModel:
    def test_dedicated_is_default(self, mpeg2, platform4):
        evaluator = MappingEvaluator(mpeg2, platform4)
        assert evaluator.comm_model == "dedicated"

    def test_bus_changes_makespan(self, mpeg2, platform4, rr_mapping4):
        dedicated = MappingEvaluator(mpeg2, platform4)
        bus = MappingEvaluator(mpeg2, platform4, comm_model="shared-bus")
        tm_dedicated = dedicated.evaluate(rr_mapping4, (1, 1, 1, 1)).makespan_s
        tm_bus = bus.evaluate(rr_mapping4, (1, 1, 1, 1)).makespan_s
        assert tm_bus != tm_dedicated

    def test_bus_rejects_unknown_model(self, mpeg2, platform4, rr_mapping4):
        evaluator = MappingEvaluator(mpeg2, platform4, comm_model="bogus")
        with pytest.raises(ValueError):
            evaluator.evaluate(rr_mapping4, (1, 1, 1, 1))

    def test_gamma_follows_bus_makespan(self, mpeg2, platform4, rr_mapping4):
        # Full-window exposure: a longer bus-contended window means
        # more expected SEUs for the same mapping.
        dedicated = MappingEvaluator(mpeg2, platform4)
        bus = MappingEvaluator(mpeg2, platform4, comm_model="shared-bus")
        d = dedicated.evaluate(rr_mapping4, (1, 1, 1, 1))
        b = bus.evaluate(rr_mapping4, (1, 1, 1, 1))
        assert (b.expected_seus > d.expected_seus) == (b.makespan_s > d.makespan_s)


class TestSimulatorCommModel:
    def test_simulator_matches_evaluator_per_model(self, mpeg2, platform4, rr_mapping4):
        for model in ("dedicated", "shared-bus"):
            evaluator = MappingEvaluator(mpeg2, platform4, comm_model=model)
            point = evaluator.evaluate(rr_mapping4, (2, 2, 2, 2))
            simulated = MPSoCSimulator(
                mpeg2, platform4, scaling=(2, 2, 2, 2), comm_model=model
            ).run(rr_mapping4)
            assert simulated.makespan_s == pytest.approx(point.makespan_s)

    def test_localized_mapping_model_invariant(self, mpeg2, platform4):
        mapping = Mapping.all_on_core(mpeg2, 4, 0)
        results = []
        for model in ("dedicated", "shared-bus"):
            simulator = MPSoCSimulator(
                mpeg2, platform4, scaling=(1, 1, 1, 1), comm_model=model
            )
            results.append(simulator.run(mapping).makespan_s)
        assert results[0] == pytest.approx(results[1])
