"""Property-based parity: compiled evaluation core vs seed implementations.

The compiled stack (``CompiledTaskGraph`` + array-based
``ListScheduler.schedule`` + the evaluator's bitmask register path)
must be *bit-for-bit* equivalent to the seed implementations, which
are kept alive as ``ListScheduler.schedule_reference`` and
``MappingEvaluator.evaluate_reference``.  These tests sweep random
graphs, mappings, scalings and both communication models and assert
exact equality — no tolerances.
"""

import random

import pytest

from repro.arch import MPSoC
from repro.mapping import Mapping, MappingEvaluator
from repro.sched import ListScheduler
from repro.taskgraph import (
    RandomGraphConfig,
    fork_join_graph,
    layered_graph,
    mpeg2_decoder,
    pipeline_graph,
    random_task_graph,
)
from repro.taskgraph.examples import fig8_example
from repro.taskgraph.mpeg2 import MPEG2_DEADLINE_S

POINT_FIELDS = (
    "scaling",
    "power_mw",
    "register_bits_per_core",
    "register_bits_total",
    "execution_cycles_per_core",
    "makespan_s",
    "makespan_cycles",
    "expected_seus",
    "activities",
    "meets_deadline",
)


def _random_case(rng, trial):
    """One random (graph, mapping, frequencies/platform) case."""
    kind = trial % 5
    if kind == 0:
        graph = mpeg2_decoder()
    elif kind == 1:
        graph = fig8_example()
    elif kind == 2:
        graph = pipeline_graph(rng.randrange(3, 9))
    elif kind == 3:
        graph = fork_join_graph(rng.randrange(2, 6))
    else:
        graph = random_task_graph(
            RandomGraphConfig(num_tasks=rng.randrange(5, 35)), seed=trial
        )
    num_cores = rng.randrange(1, 6)
    mapping = Mapping(
        {name: rng.randrange(num_cores) for name in graph.task_names()}, num_cores
    )
    return graph, num_cores, mapping


class TestCompiledGraphStructure:
    def test_arrays_mirror_graph(self, mpeg2):
        compiled = mpeg2.compiled()
        assert compiled.names == mpeg2.task_names()
        assert compiled.num_tasks == mpeg2.num_tasks
        levels = mpeg2.bottom_levels()
        for i, name in enumerate(compiled.names):
            assert compiled.cycles[i] == mpeg2.task(name).cycles
            assert compiled.bottom_levels[i] == levels[name]
            preds = tuple(
                compiled.names[compiled.pred_idx[e]]
                for e in range(compiled.pred_ptr[i], compiled.pred_ptr[i + 1])
            )
            assert preds == mpeg2.predecessors(name)
            succs = tuple(
                compiled.names[compiled.succ_idx[e]]
                for e in range(compiled.succ_ptr[i], compiled.succ_ptr[i + 1])
            )
            assert succs == mpeg2.successors(name)
        assert [compiled.names[i] for i in compiled.topo_order] == list(
            mpeg2.topological_order()
        )
        assert compiled.critical_path_cycles == mpeg2.critical_path_cycles()
        assert compiled.total_cycles == mpeg2.total_cycles()

    def test_register_masks_match_register_map(self, mpeg2):
        compiled = mpeg2.compiled()
        register_map = mpeg2.register_map()
        rng = random.Random(3)
        names = list(mpeg2.task_names())
        for _ in range(50):
            subset = rng.sample(names, rng.randrange(1, len(names) + 1))
            indices = [compiled.index[name] for name in subset]
            assert compiled.union_bits(indices) == register_map.union_bits(subset)

    def test_cached_and_invalidated_on_mutation(self, mpeg2):
        first = mpeg2.compiled()
        assert mpeg2.compiled() is first  # cached
        mpeg2.add_task("extra", 100)
        second = mpeg2.compiled()
        assert second is not first
        assert second.num_tasks == first.num_tasks + 1
        mpeg2.add_edge("t11", "extra", 5)
        third = mpeg2.compiled()
        assert third is not second

    def test_signature_is_canonical(self, mpeg2):
        compiled = mpeg2.compiled()
        names = list(mpeg2.task_names())
        forward = Mapping({name: i % 3 for i, name in enumerate(names)}, 3)
        backward = Mapping(
            {name: i % 3 for i, name in reversed(list(enumerate(names)))}, 3
        )
        assert compiled.signature(forward) == compiled.signature(backward)

    def test_signature_rejects_incomplete_mapping(self, mpeg2):
        compiled = mpeg2.compiled()
        with pytest.raises(ValueError, match="misses"):
            compiled.signature(Mapping({"t1": 0}, 4))


class TestSchedulerParity:
    @pytest.mark.parametrize("comm_model", ["dedicated", "shared-bus"])
    def test_random_cases_bit_for_bit(self, comm_model):
        rng = random.Random(1234)
        for trial in range(120):
            graph, num_cores, mapping = _random_case(rng, trial)
            frequencies = [
                rng.choice([1.0e8, 1.5e8, 2.0e8]) for _ in range(num_cores)
            ]
            scheduler = ListScheduler(graph, frequencies, comm_model=comm_model)
            fast = scheduler.schedule(mapping)
            reference = scheduler.schedule_reference(mapping)
            assert tuple(fast) == tuple(reference)
            assert fast.makespan_s() == reference.makespan_s()
            assert fast.activities() == reference.activities()
            for core in range(num_cores):
                assert fast.busy_cycles(core) == reference.busy_cycles(core)
                assert fast.busy_s(core) == reference.busy_s(core)

    def test_schedule_verifies_against_graph(self, mpeg2):
        scheduler = ListScheduler(mpeg2, [2e8] * 4)
        mapping = Mapping.round_robin(mpeg2, 4)
        scheduler.schedule(mapping).verify(mpeg2, mapping)

    def test_mismatched_mapping_raises_like_reference(self, mpeg2, fig8):
        scheduler = ListScheduler(mpeg2, [2e8] * 4)
        wrong_cover = Mapping({"t1": 0}, 4)
        with pytest.raises(ValueError, match="misses"):
            scheduler.schedule(wrong_cover)
        wrong_cores = Mapping.round_robin(mpeg2, 3)
        with pytest.raises(ValueError, match="cores"):
            scheduler.schedule(wrong_cores)

    def test_for_platform_uses_platform_frequencies(self, mpeg2, platform4):
        scheduler = ListScheduler.for_platform(mpeg2, platform4, scaling=(1, 2, 3, 1))
        table = platform4.scaling_table
        assert scheduler.frequencies_hz == tuple(
            table.frequency_hz(s) for s in (1, 2, 3, 1)
        )


class TestEvaluatorParity:
    @pytest.mark.parametrize("comm_model", ["dedicated", "shared-bus"])
    def test_random_cases_bit_for_bit(self, comm_model):
        rng = random.Random(99)
        for trial in range(60):
            graph, num_cores, mapping = _random_case(rng, trial)
            if num_cores < 2:
                num_cores = 2
                mapping = Mapping(
                    {name: rng.randrange(num_cores) for name in graph.task_names()},
                    num_cores,
                )
            platform = MPSoC.paper_reference(num_cores)
            evaluator = MappingEvaluator(
                graph,
                platform,
                deadline_s=MPEG2_DEADLINE_S,
                comm_model=comm_model,
            )
            scaling = tuple(rng.randrange(1, 4) for _ in range(num_cores))
            fast = evaluator.evaluate(mapping, scaling)
            reference = evaluator.evaluate_reference(mapping, scaling)
            for field in POINT_FIELDS:
                assert getattr(fast, field) == getattr(reference, field), field

    def test_graph_mutation_invalidates_evaluator_memos(self):
        # Regression: the per-scaling scheduler memo and the LRU cache
        # snapshot graph structure; a mutation must not let evaluate()
        # serve results for the old graph.
        graph = mpeg2_decoder()
        platform = MPSoC.paper_reference(4)
        evaluator = MappingEvaluator(graph, platform, deadline_s=MPEG2_DEADLINE_S)
        mapping = Mapping.round_robin(graph, 4)
        before = evaluator.evaluate(mapping, (1, 1, 1, 1))
        graph.add_edge("t1", "t3", 400_000)
        after = evaluator.evaluate(mapping, (1, 1, 1, 1))
        reference = evaluator.evaluate_reference(mapping, (1, 1, 1, 1))
        assert after.makespan_s == reference.makespan_s
        assert after.expected_seus == reference.expected_seus
        assert after.makespan_s != before.makespan_s

    def test_graph_mutation_refreshes_standalone_scheduler(self):
        graph = mpeg2_decoder()
        scheduler = ListScheduler(graph, [2e8] * 4)
        mapping = Mapping.round_robin(graph, 4)
        scheduler.schedule(mapping)
        graph.add_edge("t1", "t3", 400_000)
        assert tuple(scheduler.schedule(mapping)) == tuple(
            scheduler.schedule_reference(mapping)
        )

    def test_layered_graph_with_shared_registers(self):
        graph = layered_graph(4, 3, seed=5)
        platform = MPSoC.paper_reference(3)
        evaluator = MappingEvaluator(graph, platform)
        mapping = Mapping.round_robin(graph, 3)
        fast = evaluator.evaluate(mapping, (1, 2, 3))
        reference = evaluator.evaluate_reference(mapping, (1, 2, 3))
        for field in POINT_FIELDS:
            assert getattr(fast, field) == getattr(reference, field), field
